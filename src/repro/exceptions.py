"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming from this package with a single ``except`` clause
while still letting programming errors (``TypeError`` from bad call
signatures, etc.) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """A user-supplied parameter is outside its legal range.

    Raised eagerly at construction time (budgets, probabilities, domain
    sizes) so that mechanisms never run with silently-invalid parameters.
    """


class BudgetError(ValidationError):
    """A privacy-budget specification is malformed.

    Examples: non-positive budgets, level partitions that do not cover the
    item domain, or duplicate item ids across levels.
    """


class InfeasibleError(ReproError):
    """An optimization problem has no feasible point.

    Carries the offending constraint description when available so the
    caller can report *which* pair of privacy levels is impossible to
    satisfy simultaneously.
    """

    def __init__(self, message: str, *, constraint: str | None = None) -> None:
        super().__init__(message)
        self.constraint = constraint


class SolverError(ReproError):
    """The numerical solver failed to converge to a feasible solution."""

    def __init__(self, message: str, *, diagnostics: dict | None = None) -> None:
        super().__init__(message)
        self.diagnostics = dict(diagnostics or {})


class PrivacyViolationError(ReproError):
    """An audit detected that a mechanism violates its claimed notion.

    Raised by the :mod:`repro.audit` package when the measured or derived
    probability ratio for some pair of inputs exceeds the bound implied by
    the privacy notion (plus a numerical tolerance).
    """

    def __init__(
        self,
        message: str,
        *,
        pair: tuple | None = None,
        ratio: float | None = None,
        bound: float | None = None,
    ) -> None:
        super().__init__(message)
        self.pair = pair
        self.ratio = ratio
        self.bound = bound


class DatasetError(ReproError):
    """A dataset file or generator specification is invalid."""


class WireFormatError(ReproError):
    """A serialized pipeline frame cannot be decoded.

    Raised by :mod:`repro.pipeline.collect.wire` on wrong magic, an
    unsupported format version, a truncated frame, or a checksum
    mismatch.  The message always says *which* of those it was, and for
    version errors names both the found and the supported version, so a
    collector log pinpoints producer/consumer skew immediately.
    """


class ServiceError(ReproError):
    """Base class for errors in the exactly-once collection service.

    Everything :mod:`repro.pipeline.service` raises derives from this,
    so an operator embedding the service can fence off service failures
    from library-level validation errors with one ``except``.
    """


class AuthenticationError(ServiceError):
    """A session handshake failed: wrong round key, malformed proof, or
    a handshake frame out of protocol order.  The service refuses the
    session before any record frame is examined."""


class MovedError(ServiceError):
    """The producer's records belong to a different shard.

    A shard refusing a mis-routed handshake includes a ``MOVED``
    redirect naming the owning shard; the routing-aware client catches
    this and reconnects there.  Carries the shard fleet's routing-table
    epoch and the owning shard's identity so a client holding a stale
    table knows both *where* to go and *how stale* it is.
    """

    def __init__(
        self, message: str, *, epoch: int, shard: str, host: str, port: int
    ) -> None:
        super().__init__(message)
        self.epoch = int(epoch)
        self.shard = shard
        self.host = host
        self.port = int(port)


class ControlError(ServiceError):
    """A control-plane request failed: the peer refused the op, the
    reply MAC did not verify, or the reply was out of protocol.  The
    message carries the peer's detail when one was authenticated."""


class QuotaExceededError(ServiceError):
    """A connection exceeded its byte/frame quota or the service's
    session capacity; the offending connection is shed, already-merged
    state is untouched."""


class LedgerError(ServiceError):
    """The idempotency ledger refused an operation.

    Raised on equivocation (a producer re-using a sequence number for
    different frame bytes) and on unrecoverable ledger/spill
    disagreement during restart recovery.
    """


class EstimationError(ReproError):
    """Frequency estimation cannot proceed.

    For example the mechanism parameters have ``a_i == b_i`` for some item,
    which makes the unbiased estimator of Theorem 3 undefined.
    """
