"""Monte-Carlo privacy audits.

The analytic audits trust the mechanism's *parameters*; these audits
trust only its *behaviour* — they run the mechanism many times, estimate
the channel, and compare likelihood ratios against the claimed bound
with statistical slack.  They catch the class of bugs where a mechanism
samples from a different distribution than its parameters advertise.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int, check_rng
from ..exceptions import ValidationError
from ..mechanisms.base import CategoricalMechanism, UnaryMechanism

__all__ = ["empirical_channel", "empirical_max_ratio"]


def empirical_channel(
    mechanism, inputs, n_samples: int = 20_000, rng=None
) -> np.ndarray:
    """Estimate ``Pr(output | input)`` by repeated perturbation.

    For a :class:`CategoricalMechanism` the output alphabet is the item
    domain; for a :class:`UnaryMechanism` outputs are bit vectors hashed
    to integers (only workable for small ``m``).  Returns a
    row-stochastic matrix with one row per requested input.
    """
    rng = check_rng(rng)
    n_samples = check_positive_int(n_samples, "n_samples")
    inputs = list(inputs)
    if not inputs:
        raise ValidationError("inputs must be non-empty")

    if isinstance(mechanism, CategoricalMechanism):
        n_outputs = mechanism.m
        rows = []
        for x in inputs:
            outputs = mechanism.perturb_many(np.full(n_samples, int(x)), rng)
            rows.append(np.bincount(outputs, minlength=n_outputs) / n_samples)
        return np.asarray(rows)

    if isinstance(mechanism, UnaryMechanism):
        if mechanism.m > 16:
            raise ValidationError(
                f"empirical unary audit limited to m <= 16, got {mechanism.m}"
            )
        n_outputs = 2**mechanism.m
        weights = (1 << np.arange(mechanism.m)).astype(np.int64)
        rows = []
        for x in inputs:
            reports = mechanism.perturb_many(np.full(n_samples, int(x)), rng)
            codes = reports.astype(np.int64) @ weights
            rows.append(np.bincount(codes, minlength=n_outputs) / n_samples)
        return np.asarray(rows)

    raise ValidationError(
        f"unsupported mechanism type {type(mechanism).__name__} for "
        "empirical channel estimation"
    )


def empirical_max_ratio(
    channel_estimate: np.ndarray,
    row_x: int,
    row_y: int,
    *,
    min_probability: float = 1e-3,
) -> float:
    """Largest estimated ``Pr(out|x) / Pr(out|x')`` over common outputs.

    Outputs whose estimated probability under either input falls below
    ``min_probability`` are skipped — their ratio estimates are dominated
    by sampling noise, not by the mechanism.  Callers should compare the
    result against ``e^{budget} * (1 + slack)`` with a slack sized to the
    sample count (the tests use a few percent at 10^5 samples).
    """
    matrix = np.asarray(channel_estimate, dtype=float)
    if matrix.ndim != 2:
        raise ValidationError(f"channel must be 2-D, got shape {matrix.shape}")
    for row in (row_x, row_y):
        if not 0 <= row < matrix.shape[0]:
            raise ValidationError(f"row {row} outside [0, {matrix.shape[0] - 1}]")
    p, q = matrix[row_x], matrix[row_y]
    mask = (p >= min_probability) & (q >= min_probability)
    if not np.any(mask):
        raise ValidationError(
            "no output has enough empirical mass under both inputs; "
            "increase n_samples or lower min_probability"
        )
    return float(np.max(p[mask] / q[mask]))
