"""Exhaustive output-distribution audits for small domains.

For a unary mechanism over ``m`` bits the output alphabet is
``{0,1}^m``.  When ``m`` is small (<= 16 by default) we can materialize
the full channel matrix and check *every* (input pair, output) ratio —
no closed forms, just Definition 2 applied literally.  The same
machinery evaluates the IDUE-PS item-set channel via Lemma 2's mixture
form, giving a direct numerical verification of Theorem 4.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from .._validation import check_positive_int
from ..core.budgets import BudgetSpec
from ..exceptions import PrivacyViolationError, ValidationError
from ..mechanisms.base import UnaryMechanism
from ..mechanisms.idue_ps import IDUEPS, itemset_budget

__all__ = [
    "enumerate_outputs",
    "unary_channel",
    "itemset_channel_row",
    "verify_unary_exhaustive",
    "verify_idue_ps_exhaustive",
]

_MAX_EXHAUSTIVE_BITS = 16


def enumerate_outputs(m: int) -> np.ndarray:
    """All ``2^m`` bit vectors as a ``(2^m, m)`` 0/1 matrix."""
    m = check_positive_int(m, "m")
    if m > _MAX_EXHAUSTIVE_BITS:
        raise ValidationError(
            f"exhaustive enumeration limited to m <= {_MAX_EXHAUSTIVE_BITS}, got {m}"
        )
    codes = np.arange(2**m, dtype=np.int64)
    return ((codes[:, None] >> np.arange(m)) & 1).astype(np.int8)


def unary_channel(mechanism: UnaryMechanism) -> np.ndarray:
    """Full channel ``P[x, y] = Pr(M(v_x) = y)`` for a unary mechanism.

    Rows are the ``m`` one-hot inputs; columns the ``2^m`` outputs.
    """
    outputs = enumerate_outputs(mechanism.m).astype(float)  # (2^m, m)
    a, b = mechanism.a, mechanism.b
    # log Pr(y | x = one-hot(i)): bit i uses (a_i, 1-a_i), others (b_k, 1-b_k).
    log_b1 = np.log(b)
    log_b0 = np.log(1.0 - b)
    base = outputs @ log_b1 + (1.0 - outputs) @ log_b0  # all-bits-b log prob
    correction_one = np.log(a) - np.log(b)  # if y[i]=1
    correction_zero = np.log(1.0 - a) - np.log(1.0 - b)  # if y[i]=0
    rows = []
    for i in range(mechanism.m):
        adjust = np.where(outputs[:, i] == 1.0, correction_one[i], correction_zero[i])
        rows.append(np.exp(base + adjust))
    return np.asarray(rows)


def itemset_channel_row(
    mechanism: IDUEPS, itemset, one_hot_channel: np.ndarray
) -> np.ndarray:
    """``Pr(y | x)`` for one item-set under IDUE-PS (Lemma 2's mixture).

    Algorithm 3 first samples one element of the padded set, then runs
    the unary perturbation on the sampled one-hot input, so the item-set
    channel row is the sampling-probability mixture of one-hot rows:

        Pr(y|x) = eta_x * mean_{i in x} Pr(y|v_i)
                + (1 − eta_x) * mean_{dummies d} Pr(y|v_d)
    """
    items = np.asarray(itemset, dtype=np.int64)
    if items.size and (items.min() < 0 or items.max() >= mechanism.m):
        raise ValidationError(f"item ids must lie in [0, {mechanism.m - 1}]")
    eta = mechanism.sampler.eta(items.size)
    dummy_rows = one_hot_channel[mechanism.m :]  # rows of the ell dummies
    dummy_part = dummy_rows.mean(axis=0)
    if items.size == 0:
        return dummy_part
    real_part = one_hot_channel[items].mean(axis=0)
    return eta * real_part + (1.0 - eta) * dummy_part


def verify_unary_exhaustive(
    mechanism: UnaryMechanism,
    notion,
    *,
    rtol: float = 1e-9,
) -> float:
    """Check Definition 2 on the full channel of a unary mechanism.

    Returns the worst log-margin (``pair budget − max_y ln ratio``); a
    negative value raises :class:`PrivacyViolationError`.  Cost is
    ``O(m^2 2^m)`` — small domains only.
    """
    channel = unary_channel(mechanism)
    worst_margin = float("inf")
    for i in range(mechanism.m):
        for j in range(mechanism.m):
            if i == j:
                continue
            budget = notion.pair_budget(i, j)
            if not np.isfinite(budget):
                continue
            log_ratio = float(np.max(np.log(channel[i]) - np.log(channel[j])))
            margin = budget - log_ratio
            worst_margin = min(worst_margin, margin)
            if log_ratio > budget + abs(budget) * rtol + 1e-12:
                raise PrivacyViolationError(
                    f"unary channel violates pair ({i}, {j}): "
                    f"max log-ratio {log_ratio:.6g} > budget {budget:.6g}",
                    pair=(i, j),
                    ratio=float(np.exp(log_ratio)),
                    bound=float(np.exp(budget)),
                )
    return worst_margin


def verify_idue_ps_exhaustive(
    mechanism: IDUEPS,
    spec: BudgetSpec,
    *,
    max_set_size: int | None = None,
    rtol: float = 1e-9,
) -> float:
    """Numerically verify Theorem 4 on every pair of item-sets.

    Enumerates all subsets of the real domain up to ``max_set_size``
    (default: the whole power set), computes each set's channel row and
    Eq. (17) budget, and checks

        Pr(y|x) / Pr(y|x') <= e^{min(eps_x, eps_x')}   for all x, x', y.

    Returns the worst log-margin.  Exponential cost — use only on toy
    domains (the Theorem 4 test uses m <= 5).
    """
    if spec.m != mechanism.m:
        raise ValidationError(
            f"spec covers {spec.m} items but mechanism covers {mechanism.m}"
        )
    if mechanism.extended_m > _MAX_EXHAUSTIVE_BITS:
        raise ValidationError(
            f"extended domain {mechanism.extended_m} too large for exhaustive "
            f"audit (max {_MAX_EXHAUSTIVE_BITS})"
        )
    limit = spec.m if max_set_size is None else min(max_set_size, spec.m)
    one_hot = unary_channel(mechanism.unary)
    dummy_eps = float(
        getattr(mechanism, "extended_spec", spec.with_dummies(mechanism.ell))
        .item_epsilons[mechanism.m]
    )

    subsets: list[tuple[int, ...]] = []
    for size in range(1, limit + 1):
        subsets.extend(combinations(range(spec.m), size))
    rows = {
        s: np.log(itemset_channel_row(mechanism, s, one_hot)) for s in subsets
    }
    budgets = {
        s: itemset_budget(s, spec, mechanism.ell, dummy_eps) for s in subsets
    }

    worst_margin = float("inf")
    for x in subsets:
        for x_prime in subsets:
            if x == x_prime:
                continue
            budget = min(budgets[x], budgets[x_prime])
            log_ratio = float(np.max(rows[x] - rows[x_prime]))
            margin = budget - log_ratio
            worst_margin = min(worst_margin, margin)
            if log_ratio > budget + abs(budget) * rtol + 1e-12:
                raise PrivacyViolationError(
                    f"IDUE-PS violates MinID-LDP for sets {x} vs {x_prime}: "
                    f"max log-ratio {log_ratio:.6g} > budget {budget:.6g}",
                    pair=(x, x_prime),
                    ratio=float(np.exp(log_ratio)),
                    bound=float(np.exp(budget)),
                )
    return worst_margin
