"""Analytic pairwise audit of unary mechanisms (constraint 7).

For a unary mechanism the worst-case ratio between inputs ``v_i`` and
``v_j`` over all outputs has the closed form
``a_i (1 − b_j) / (b_i (1 − a_j))`` (Section V-B), so checking the
privacy notion reduces to comparing that expression against
``e^{pair budget}`` for every pair.  Items sharing parameters and budget
are grouped so the check costs ``O(g^2)`` in the number of distinct
(parameter, budget) groups, not ``O(m^2)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.notions import IDLDP, LDP
from ..exceptions import PrivacyViolationError, ValidationError
from ..mechanisms.base import UnaryMechanism

__all__ = ["AuditReport", "audit_unary_pairwise"]


@dataclass(frozen=True)
class AuditReport:
    """Outcome of a pairwise audit.

    Attributes
    ----------
    passed:
        True when every pair's worst-case ratio is within its bound.
    worst_pair:
        Item pair achieving the largest ratio/bound slack usage.
    worst_ratio:
        Its worst-case output ratio.
    worst_bound:
        The bound ``e^{pair budget}`` for that pair.
    margin:
        ``ln(bound) − ln(ratio)`` at the worst pair; >= 0 when passed.
    n_pairs_checked:
        Number of (grouped) ordered pairs examined.
    """

    passed: bool
    worst_pair: tuple[int, int]
    worst_ratio: float
    worst_bound: float
    margin: float
    n_pairs_checked: int

    def raise_if_failed(self) -> None:
        """Raise :class:`PrivacyViolationError` when the audit failed."""
        if not self.passed:
            raise PrivacyViolationError(
                f"pair {self.worst_pair}: ratio {self.worst_ratio:.6g} exceeds "
                f"bound {self.worst_bound:.6g}",
                pair=self.worst_pair,
                ratio=self.worst_ratio,
                bound=self.worst_bound,
            )


def _representative_items(mechanism: UnaryMechanism, notion) -> np.ndarray:
    """One representative item per distinct (a, b, budget) group.

    Two items with identical parameters *and* identical pair budgets
    against every group behave identically in the audit, so checking one
    representative of each group suffices.  Grouping keys on (a, b,
    level) for ID-LDP and on (a, b) for plain LDP.
    """
    if isinstance(notion, IDLDP):
        levels = notion.spec.item_level
    else:
        levels = np.zeros(mechanism.m, dtype=np.int64)
    keys = {}
    representatives = []
    for item in range(mechanism.m):
        key = (float(mechanism.a[item]), float(mechanism.b[item]), int(levels[item]))
        if key not in keys:
            keys[key] = item
            representatives.append(item)
    return np.asarray(representatives, dtype=np.int64)


def _group_has_pair(mechanism: UnaryMechanism, notion, item: int) -> bool:
    """Whether the item's group contains >= 2 items (a within-group pair)."""
    if isinstance(notion, IDLDP):
        level = notion.spec.level_of(item)
        same_level = notion.spec.item_level == level
        a_match = mechanism.a == mechanism.a[item]
        b_match = mechanism.b == mechanism.b[item]
        return int(np.sum(same_level & a_match & b_match)) >= 2
    a_match = mechanism.a == mechanism.a[item]
    b_match = mechanism.b == mechanism.b[item]
    return int(np.sum(a_match & b_match)) >= 2


def audit_unary_pairwise(
    mechanism: UnaryMechanism,
    notion: IDLDP | LDP,
    *,
    rtol: float = 1e-9,
) -> AuditReport:
    """Audit a unary mechanism against an (ID-)LDP notion analytically.

    Checks ``a_i (1 − b_j) / (b_i (1 − a_j)) <= e^{pair budget} * (1+rtol)``
    for every ordered pair of representative items, skipping pairs the
    notion leaves unconstrained (infinite budgets from incomplete policy
    graphs, and same-item "pairs" in singleton groups).
    """
    if not isinstance(mechanism, UnaryMechanism):
        raise ValidationError(
            f"mechanism must be a UnaryMechanism, got {type(mechanism).__name__}"
        )
    if isinstance(notion, IDLDP) and notion.spec.m != mechanism.m:
        raise ValidationError(
            f"notion covers {notion.spec.m} items but mechanism covers "
            f"{mechanism.m}"
        )

    representatives = _representative_items(mechanism, notion)
    worst = (True, (0, 0), 1.0, float("inf"), float("inf"))
    n_checked = 0
    for i in representatives:
        for j in representatives:
            if i == j and not _group_has_pair(mechanism, notion, int(i)):
                continue
            budget = notion.pair_budget(int(i), int(j))
            if not np.isfinite(budget):
                continue
            ratio = (
                mechanism.a[i]
                * (1.0 - mechanism.b[j])
                / (mechanism.b[i] * (1.0 - mechanism.a[j]))
            )
            bound = float(np.exp(budget))
            n_checked += 1
            margin = float(np.log(bound) - np.log(ratio))
            if margin < worst[4]:
                passed = ratio <= bound * (1.0 + rtol)
                worst = (passed, (int(i), int(j)), float(ratio), bound, margin)
    if n_checked == 0:
        raise ValidationError("audit found no constrained pair to check")
    passed, pair, ratio, bound, margin = worst
    return AuditReport(
        passed=passed,
        worst_pair=pair,
        worst_ratio=ratio,
        worst_bound=bound,
        margin=margin,
        n_pairs_checked=n_checked,
    )
