"""Privacy audits: verify that mechanisms meet their claimed notions.

Three verification strengths, trading scope for cost:

* :mod:`.pairwise` — analytic check of the closed-form worst-case ratio
  (constraint 7) for unary mechanisms; exact and fast at any domain size.
* :mod:`.exhaustive` — enumerate the full output distribution of a small
  domain and check *every* (input pair, output) ratio, including the
  item-set channel of IDUE-PS (Theorem 4's statement verbatim).
* :mod:`.empirical` — Monte-Carlo estimation of the channel for any
  mechanism, with statistical slack; catches implementation bugs the
  analytic paths would share.
"""

from .empirical import empirical_channel, empirical_max_ratio
from .exhaustive import (
    enumerate_outputs,
    itemset_channel_row,
    unary_channel,
    verify_idue_ps_exhaustive,
    verify_unary_exhaustive,
)
from .pairwise import AuditReport, audit_unary_pairwise

__all__ = [
    "AuditReport",
    "audit_unary_pairwise",
    "enumerate_outputs",
    "unary_channel",
    "itemset_channel_row",
    "verify_unary_exhaustive",
    "verify_idue_ps_exhaustive",
    "empirical_channel",
    "empirical_max_ratio",
]
