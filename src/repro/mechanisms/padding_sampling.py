"""The Padding-and-Sampling protocol (Algorithm 2, Section VI-A).

Each user holds an item-set ``x`` (a subset of the item domain ``I``).
The protocol first *pads* the set up to a fixed length ``ell`` with
dummy items drawn from a disjoint dummy domain ``S`` (``|S| = ell``), or
*truncates* it down to ``ell`` by dropping random items, then *samples*
exactly one element of the padded set for release.

Real items keep their ids ``0..m-1``; dummy item ``j`` (0-based) is
represented as id ``m + j`` in the extended domain ``I' = I ∪ S`` of size
``m + ell``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .._validation import as_int_array, check_positive_int, check_rng
from ..exceptions import ValidationError

__all__ = ["PaddingSampler"]


class PaddingSampler:
    """Pads/truncates an item-set to length *ell* and samples one element.

    Parameters
    ----------
    m:
        Size of the real item domain.
    ell:
        Target padded length, also the size of the dummy domain ``S``.

    Notes
    -----
    The marginal sampling distribution (which is all the downstream
    mechanism and estimator see) is:

    * ``|x| >= ell``: each real item in ``x`` sampled w.p. ``1/|x|``
      (truncating to ``ell`` then sampling uniformly from the ``ell``
      survivors is uniform over the original set by symmetry);
    * ``|x| < ell``: each real item w.p. ``1/ell``, each specific dummy
      w.p. ``(ell - |x|) / ell**2``.

    :meth:`sample` implements the protocol literally per Algorithm 2;
    :meth:`sample_many` uses the equivalent marginal distribution,
    vectorized over a ragged batch.
    """

    def __init__(self, m: int, ell: int) -> None:
        self.m = check_positive_int(m, "m")
        self.ell = check_positive_int(ell, "ell")

    # ------------------------------------------------------------------
    @property
    def extended_m(self) -> int:
        """Size of the extended domain ``I ∪ S`` = ``m + ell``."""
        return self.m + self.ell

    def _validate_set(self, itemset) -> np.ndarray:
        items = as_int_array(itemset, "itemset")
        if items.size and (items.min() < 0 or items.max() >= self.m):
            raise ValidationError(
                f"item-set entries must lie in [0, {self.m - 1}]"
            )
        if np.unique(items).size != items.size:
            raise ValidationError("item-set contains duplicate items")
        return items

    def sample(self, itemset: Sequence[int], rng=None) -> int:
        """Run Algorithm 2 on one item-set; returns an extended-domain id.

        Ids ``>= m`` denote dummy items.  The empty set is legal: the
        padded set is then all dummies.
        """
        rng = check_rng(rng)
        items = self._validate_set(itemset)
        size = items.size
        if size > self.ell:
            # Truncate: drop (size - ell) random items, then sample one.
            padded = rng.choice(items, size=self.ell, replace=False)
        elif size < self.ell:
            # Pad: add (ell - size) distinct dummies chosen from S.
            dummies = self.m + rng.choice(self.ell, size=self.ell - size, replace=False)
            padded = np.concatenate([items, dummies])
        else:
            padded = items
        return int(padded[rng.integers(padded.size)])

    def sample_many(self, flat_items, offsets, rng=None) -> np.ndarray:
        """Vectorized sampling over a ragged batch (CSR layout).

        Parameters
        ----------
        flat_items:
            Concatenation of all users' item-sets.
        offsets:
            Length ``n+1`` prefix array; user ``u`` owns
            ``flat_items[offsets[u]:offsets[u+1]]``.

        Returns
        -------
        Length-``n`` array of sampled extended-domain ids.

        Uses the marginal distribution stated in the class docstring,
        which is exactly what Algorithm 2 induces, so aggregate counts
        are identically distributed with the literal protocol.
        """
        rng = check_rng(rng)
        flat = as_int_array(flat_items, "flat_items")
        offs = as_int_array(offsets, "offsets")
        if offs.size < 1 or offs[0] != 0 or offs[-1] != flat.size:
            raise ValidationError(
                "offsets must start at 0 and end at len(flat_items)"
            )
        if np.any(np.diff(offs) < 0):
            raise ValidationError("offsets must be non-decreasing")
        if flat.size and (flat.min() < 0 or flat.max() >= self.m):
            raise ValidationError(f"item ids must lie in [0, {self.m - 1}]")

        n = offs.size - 1
        sizes = np.diff(offs)
        # Probability the sampled element is a *real* item of the user's
        # set: eta = |x| / max(|x|, ell)  (Lemma 2's eta_x).
        eta = sizes / np.maximum(sizes, self.ell)
        pick_real = rng.random(n) < eta
        # Real branch: uniform over the user's own items.
        within = (rng.random(n) * np.maximum(sizes, 1)).astype(np.int64)
        within = np.minimum(within, np.maximum(sizes - 1, 0))
        # Users with empty sets never take the real branch, but their
        # (discarded) gather index must still be in bounds — clamp it.
        gather = np.minimum(offs[:-1] + within, max(flat.size - 1, 0))
        real_choice = flat[gather] if flat.size else np.zeros(n, np.int64)
        # Dummy branch: uniform over the ell dummies (each specific dummy
        # has marginal (ell-|x|)/ell^2 = (1-eta) * 1/ell).
        dummy_choice = self.m + rng.integers(self.ell, size=n)
        sampled = np.where(pick_real & (sizes > 0), real_choice, dummy_choice)
        return sampled.astype(np.int64)

    def eta(self, set_size: int) -> float:
        """``eta_x = |x| / max(|x|, ell)`` from Lemma 2."""
        if set_size < 0:
            raise ValidationError(f"set_size must be >= 0, got {set_size}")
        if set_size == 0:
            return 0.0
        return float(set_size / max(set_size, self.ell))

    def real_item_sampling_probability(self, set_size: int) -> float:
        """Probability a *specific* item of a size-``k`` set is sampled.

        ``1 / max(k, ell)`` — the quantity whose reciprocal ``ell``
        approximates in the frequency estimator; the mismatch for
        ``k > ell`` is precisely the truncation bias of Fig 5.
        """
        if set_size < 1:
            raise ValidationError(f"set_size must be >= 1, got {set_size}")
        return float(1.0 / max(set_size, self.ell))

    def __repr__(self) -> str:
        return f"PaddingSampler(m={self.m}, ell={self.ell})"
