"""IDUE-PS: IDUE with Padding-and-Sampling for item-set input (Section VI).

Algorithm 3 composes the :class:`~repro.mechanisms.padding_sampling.PaddingSampler`
with a unary-encoding perturbation over the *extended* domain
``I' = I ∪ S`` of size ``m + ell``.  Theorem 4 shows that if the per-item
parameters satisfy the single-item MinID-LDP constraints (18), the
composed mechanism satisfies MinID-LDP for item-set inputs with the
combined set budget of Eq. (17) — so the optimization problem stays the
single-item one (2t variables, t^2 constraints) regardless of the
exponential item-set domain.

The same wrapper also builds the RAPPOR-PS and OUE-PS baselines used in
Figures 4(b) and 5.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .._validation import as_int_array, check_budget, check_positive_int, check_rng
from ..core.budgets import BudgetSpec
from ..core.notions import MIN, RFunction
from ..core.policy import PolicyGraph
from ..exceptions import ValidationError
from .base import Mechanism, UnaryMechanism
from .idue import IDUE
from .padding_sampling import PaddingSampler
from .unary import OptimizedUnaryEncoding, SymmetricUnaryEncoding

__all__ = ["IDUEPS", "itemset_budget"]


def itemset_budget(
    itemset: Sequence[int],
    spec: BudgetSpec,
    ell: int,
    dummy_epsilon: float | None = None,
) -> float:
    """Combined privacy budget of an item-set (Eq. 17).

    ``eps_x = ln( eta_x * mean_{i in x} e^{eps_i} + (1 - eta_x) e^{eps*} )``
    with ``eta_x = |x| / max(|x|, ell)``.  The dummy budget ``eps*``
    defaults to ``min{E}`` as the paper recommends.
    """
    if not isinstance(spec, BudgetSpec):
        raise ValidationError(f"spec must be a BudgetSpec, got {spec!r}")
    ell = check_positive_int(ell, "ell")
    if dummy_epsilon is None:
        dummy_epsilon = spec.min_epsilon
    dummy_epsilon = check_budget(dummy_epsilon, "dummy_epsilon")
    items = as_int_array(itemset, "itemset")
    if items.size and (items.min() < 0 or items.max() >= spec.m):
        raise ValidationError(f"item ids must lie in [0, {spec.m - 1}]")
    size = items.size
    if size == 0:
        return dummy_epsilon  # a fully-padded report reveals only dummies
    eta = size / max(size, ell)
    mean_exp = float(np.mean(np.exp(spec.item_epsilons[items])))
    return float(np.log(eta * mean_exp + (1.0 - eta) * np.exp(dummy_epsilon)))


class IDUEPS(Mechanism):
    """Padding-and-Sampling composed with a unary perturbation (Algorithm 3).

    Parameters
    ----------
    unary:
        Unary mechanism over the extended domain of size ``m + ell``;
        bits ``m..m+ell-1`` are the dummy items.
    m:
        Real item-domain size.
    ell:
        Padding length (= dummy-domain size).

    Use the :meth:`optimized`, :meth:`rappor_ps` or :meth:`oue_ps`
    constructors rather than wiring the pieces manually.
    """

    name = "idue-ps"

    def __init__(self, unary: UnaryMechanism, m: int, ell: int) -> None:
        m = check_positive_int(m, "m")
        ell = check_positive_int(ell, "ell")
        if unary.m != m + ell:
            raise ValidationError(
                f"unary mechanism covers {unary.m} bits, expected m + ell = {m + ell}"
            )
        self.unary = unary
        self.sampler = PaddingSampler(m, ell)
        self._m = m
        self.ell = ell

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def optimized(
        cls,
        spec: BudgetSpec,
        ell: int,
        *,
        r: RFunction | str = MIN,
        model: str = "opt0",
        policy: PolicyGraph | None = None,
        dummy_epsilon: float | None = None,
    ) -> "IDUEPS":
        """Solve the single-item IDUE optimization and extend with dummies.

        Per Theorem 4 and the discussion after it, the optimization is
        the *single-item* one over the original spec (dummies contribute
        neither to the objective nor to new constraints because their
        budget is one of the existing levels); dummy bits then reuse the
        parameters of the dummy budget's level.
        """
        ell = check_positive_int(ell, "ell")
        base = IDUE.optimized(spec, r=r, model=model, policy=policy)
        extended_spec = spec.with_dummies(ell, dummy_epsilon)
        level_index = extended_spec.item_level  # dummy eps is an existing level
        a = base.level_a[level_index]
        b = base.level_b[level_index]
        mechanism = cls(UnaryMechanism(a, b), spec.m, ell)
        mechanism.spec = spec
        mechanism.extended_spec = extended_spec
        mechanism.base_idue = base
        return mechanism

    @classmethod
    def rappor_ps(cls, epsilon: float, m: int, ell: int) -> "IDUEPS":
        """Basic-RAPPOR perturbation over the extended domain (baseline)."""
        unary = SymmetricUnaryEncoding(epsilon, check_positive_int(m, "m") + ell)
        mechanism = cls(unary, m, ell)
        mechanism.name = "rappor-ps"
        return mechanism

    @classmethod
    def oue_ps(cls, epsilon: float, m: int, ell: int) -> "IDUEPS":
        """OUE perturbation over the extended domain (baseline)."""
        unary = OptimizedUnaryEncoding(epsilon, check_positive_int(m, "m") + ell)
        mechanism = cls(unary, m, ell)
        mechanism.name = "oue-ps"
        return mechanism

    # ------------------------------------------------------------------
    # Mechanism interface
    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Real item-domain size (excluding dummies)."""
        return self._m

    @property
    def extended_m(self) -> int:
        """Extended domain size ``m + ell``."""
        return self._m + self.ell

    @property
    def a(self) -> np.ndarray:
        """Per-bit ``Pr(y=1 | x=1)`` over the extended domain."""
        return self.unary.a

    @property
    def b(self) -> np.ndarray:
        """Per-bit ``Pr(y=1 | x=0)`` over the extended domain."""
        return self.unary.b

    def perturb(self, itemset: Sequence[int], rng=None) -> np.ndarray:
        """Algorithm 3 for one user: sample, encode, perturb.

        Returns the released ``(m + ell)``-bit vector.
        """
        rng = check_rng(rng)
        sampled = self.sampler.sample(itemset, rng)
        return self.unary.perturb(sampled, rng)

    def perturb_many(self, flat_items, offsets, rng=None, *, sampler=None) -> np.ndarray:
        """Vectorized Algorithm 3 over a ragged batch (CSR layout).

        Returns an ``n x (m + ell)`` 0/1 report matrix.  Intended for
        tests and small studies; large-scale simulation should go through
        :mod:`repro.simulation.fast`.  *sampler* selects the unary
        perturbation kernel (see
        :meth:`repro.mechanisms.base.UnaryMechanism.perturb_many`); the
        padding-and-sampling step itself is O(n) and stays on float64.
        """
        rng = check_rng(rng)
        sampled = self.sampler.sample_many(flat_items, offsets, rng)
        return self.unary.perturb_many(sampled, rng, sampler=sampler)

    def perturb_many_packed(
        self, flat_items, offsets, rng=None, *, sampler=None
    ) -> np.ndarray:
        """Algorithm 3 straight into the packed wire format.

        Returns ``n x ceil((m + ell) / 8)`` ``uint8``; with a ``"fast"``
        ``u64`` sampler the extended-domain report never exists
        unpacked.
        """
        rng = check_rng(rng)
        sampled = self.sampler.sample_many(flat_items, offsets, rng)
        return self.unary.perturb_many_packed(sampled, rng, sampler=sampler)

    # ------------------------------------------------------------------
    def itemset_budget(self, itemset: Sequence[int]) -> float:
        """Eq. (17) budget of one item-set under this mechanism's spec.

        Requires the mechanism to have been built by :meth:`optimized`
        (so it knows the underlying :class:`BudgetSpec`).
        """
        spec = getattr(self, "spec", None)
        if spec is None:
            raise ValidationError(
                "itemset_budget requires an IDUEPS built via IDUEPS.optimized"
            )
        dummy_eps = float(self.extended_spec.item_epsilons[self._m])
        return itemset_budget(itemset, spec, self.ell, dummy_eps)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(m={self._m}, ell={self.ell}, name={self.name!r})"
