"""Mechanism base classes.

A mechanism is a randomized map from a private input to a released
output.  The library distinguishes mechanisms by output type because the
server-side estimators differ:

* :class:`CategoricalMechanism` — outputs one category id; its behaviour
  is fully described by an ``m x m`` row-stochastic channel matrix.
* :class:`UnaryMechanism` — outputs an ``m``-bit vector, each bit flipped
  independently; fully described by per-bit Bernoulli parameters
  ``a[k] = Pr(y[k]=1 | x[k]=1)`` and ``b[k] = Pr(y[k]=1 | x[k]=0)``.

All randomness flows through an explicit ``numpy.random.Generator`` so
experiments are reproducible.
"""

from __future__ import annotations

import abc

import numpy as np

from .._validation import (
    as_int_array,
    check_positive_int,
    check_probability_vector,
    check_rng,
)
from ..exceptions import ValidationError

__all__ = ["Mechanism", "CategoricalMechanism", "UnaryMechanism"]


class Mechanism(abc.ABC):
    """Abstract base: a randomized map from inputs to released outputs."""

    #: Human-readable mechanism name used in reports and benchmarks.
    name: str = "mechanism"

    @property
    @abc.abstractmethod
    def m(self) -> int:
        """Size of the item domain the mechanism operates on."""

    @abc.abstractmethod
    def perturb(self, x, rng=None):
        """Perturb a single user's input and return the released output."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(m={self.m})"


class CategoricalMechanism(Mechanism):
    """A mechanism whose output is a single category id in ``0..m-1``.

    Subclasses must provide :meth:`channel_matrix`; :meth:`perturb` and
    :meth:`perturb_many` then sample from the appropriate row.
    """

    @abc.abstractmethod
    def channel_matrix(self) -> np.ndarray:
        """Row-stochastic ``m x m`` matrix ``P[x, y] = Pr(output=y | input=x)``."""

    def perturb(self, x: int, rng=None) -> int:
        """Release a perturbed category for the true category *x*."""
        rng = check_rng(rng)
        if not 0 <= int(x) < self.m:
            raise ValidationError(f"input {x} outside domain [0, {self.m - 1}]")
        row = self.channel_matrix()[int(x)]
        return int(rng.choice(self.m, p=row))

    def perturb_many(self, xs, rng=None) -> np.ndarray:
        """Vectorized perturbation of a batch of inputs."""
        rng = check_rng(rng)
        inputs = as_int_array(xs, "xs")
        if inputs.size and (inputs.min() < 0 or inputs.max() >= self.m):
            raise ValidationError(f"inputs fall outside domain [0, {self.m - 1}]")
        matrix = self.channel_matrix()
        cdf = np.cumsum(matrix, axis=1)
        u = rng.random(inputs.size)
        # Inverse-CDF sampling per row; searchsorted on each user's row.
        rows = cdf[inputs]
        return np.minimum(
            (u[:, None] > rows).sum(axis=1), self.m - 1
        ).astype(np.int64)


class UnaryMechanism(Mechanism):
    """Unary-encoding mechanism with per-bit flip parameters.

    Parameters
    ----------
    a:
        Length-``m`` vector; ``a[k] = Pr(y[k] = 1 | x[k] = 1)``.
    b:
        Length-``m`` vector; ``b[k] = Pr(y[k] = 1 | x[k] = 0)``.

    The paper requires ``a[k] > b[k]`` for every bit (Section V-B) so the
    estimator of Theorem 3 exists and utility is non-trivial; the
    constructor enforces it.
    """

    name = "unary"

    def __init__(self, a, b) -> None:
        a_arr = check_probability_vector(a, "a", open_interval=True)
        b_arr = check_probability_vector(b, "b", open_interval=True)
        if a_arr.shape != b_arr.shape:
            raise ValidationError(
                f"a and b must have equal length, got {a_arr.size} and {b_arr.size}"
            )
        if not np.all(a_arr > b_arr):
            worst = int(np.argmin(a_arr - b_arr))
            raise ValidationError(
                f"require a[k] > b[k] for all bits; violated at bit {worst} "
                f"(a={a_arr[worst]:g}, b={b_arr[worst]:g})"
            )
        self._a = a_arr.copy()
        self._b = b_arr.copy()
        self._a.flags.writeable = False
        self._b.flags.writeable = False

    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        return int(self._a.size)

    @property
    def a(self) -> np.ndarray:
        """Per-bit ``Pr(y=1 | x=1)`` (read-only)."""
        return self._a

    @property
    def b(self) -> np.ndarray:
        """Per-bit ``Pr(y=1 | x=0)`` (read-only)."""
        return self._b

    @property
    def alpha(self) -> np.ndarray:
        """``alpha[k] = a[k] / b[k]`` (Eq. 14), the bit-1 likelihood ratio."""
        return self._a / self._b

    @property
    def beta(self) -> np.ndarray:
        """``beta[k] = (1-a[k]) / (1-b[k])`` (Eq. 14), the bit-0 ratio."""
        return (1.0 - self._a) / (1.0 - self._b)

    # ------------------------------------------------------------------
    def encode(self, x: int) -> np.ndarray:
        """One-hot encode item *x* into an ``m``-bit vector (Eq. 6)."""
        if not 0 <= int(x) < self.m:
            raise ValidationError(f"input {x} outside domain [0, {self.m - 1}]")
        bits = np.zeros(self.m, dtype=np.int8)
        bits[int(x)] = 1
        return bits

    def perturb_bits(self, bits, rng=None) -> np.ndarray:
        """Flip each bit of an encoded vector independently (Algorithm 1)."""
        rng = check_rng(rng)
        vector = np.asarray(bits)
        if vector.shape != (self.m,):
            raise ValidationError(
                f"bits must have shape ({self.m},), got {vector.shape}"
            )
        ones = vector.astype(bool)
        prob_one = np.where(ones, self._a, self._b)
        return (rng.random(self.m) < prob_one).astype(np.int8)

    def perturb(self, x: int, rng=None) -> np.ndarray:
        """Encode and perturb one user's single-item input."""
        return self.perturb_bits(self.encode(x), rng)

    def perturb_many(self, xs, rng=None) -> np.ndarray:
        """Vectorized perturbation of a batch of single-item inputs.

        Returns an ``n x m`` 0/1 matrix of released reports.  Memory is
        ``O(n m)``; paper-scale experiments should use
        :mod:`repro.simulation.fast` instead, which draws the aggregate
        counts from their exact distribution.
        """
        rng = check_rng(rng)
        inputs = as_int_array(xs, "xs")
        if inputs.size and (inputs.min() < 0 or inputs.max() >= self.m):
            raise ValidationError(f"inputs fall outside domain [0, {self.m - 1}]")
        n = inputs.size
        prob = np.broadcast_to(self._b, (n, self.m)).copy()
        prob[np.arange(n), inputs] = self._a[inputs]
        return (rng.random((n, self.m)) < prob).astype(np.int8)

    # ------------------------------------------------------------------
    def pair_ratio_bound(self, i: int, j: int) -> float:
        """Worst-case ``Pr(y|v_i) / Pr(y|v_j)`` over all outputs ``y``.

        Section V-B shows this equals ``alpha_i / beta_j =
        a_i (1-b_j) / (b_i (1-a_j))``, achieved at ``y[i]=1, y[j]=0``.
        The audits compare it against ``e^{r(eps_i, eps_j)}``.
        """
        for k in (i, j):
            if not 0 <= k < self.m:
                raise ValidationError(f"bit {k} outside [0, {self.m - 1}]")
        if i == j:
            return 1.0
        return float(self.alpha[i] / self.beta[j])

    def ldp_epsilon(self) -> float:
        """The tightest plain-LDP budget this mechanism satisfies.

        ``max_{i != j} ln(alpha_i / beta_j)``; for uniform parameters this
        reduces to the familiar ``ln(a(1-b) / (b(1-a)))`` of [Wang et al.
        2017].
        """
        if self.m == 1:
            return float(np.log(self.alpha[0] / self.beta[0]))
        log_alpha = np.log(self.alpha)
        log_beta = np.log(self.beta)
        order = np.argsort(log_alpha)
        top, second = order[-1], order[-2]
        # max over i != j of log_alpha[i] - log_beta[j]: the minimizing j
        # may coincide with the maximizing i, so consider the two smallest
        # betas against the two largest alphas.
        beta_order = np.argsort(log_beta)
        best = -np.inf
        for i in (top, second):
            for j in (beta_order[0], beta_order[1] if self.m > 1 else beta_order[0]):
                if i != j:
                    best = max(best, log_alpha[i] - log_beta[j])
        return float(best)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(m={self.m}, "
            f"a=[{self._a.min():.4g}..{self._a.max():.4g}], "
            f"b=[{self._b.min():.4g}..{self._b.max():.4g}])"
        )
