"""Mechanism base classes.

A mechanism is a randomized map from a private input to a released
output.  The library distinguishes mechanisms by output type because the
server-side estimators differ:

* :class:`CategoricalMechanism` — outputs one category id; its behaviour
  is fully described by an ``m x m`` row-stochastic channel matrix.
* :class:`UnaryMechanism` — outputs an ``m``-bit vector, each bit flipped
  independently; fully described by per-bit Bernoulli parameters
  ``a[k] = Pr(y[k]=1 | x[k]=1)`` and ``b[k] = Pr(y[k]=1 | x[k]=0)``.

All randomness flows through an explicit ``numpy.random.Generator`` so
experiments are reproducible.  The batch entry points additionally take
a :class:`~repro.kernels.SamplerConfig`: the default ``"bitexact"``
sampler consumes the generator in the historical float64 order (frozen
fixed-seed streams), while ``"fast"`` routes the Bernoulli draws
through the bit-sliced packed-word kernels of :mod:`repro.kernels`
under a distributional-equivalence contract.
"""

from __future__ import annotations

import abc

import numpy as np

from .._validation import (
    as_int_array,
    check_positive_int,
    check_probability_vector,
    check_rng,
)
from ..exceptions import ValidationError
from ..kernels import (
    packed_assign_bits,
    packed_width,
    resolve_sampler,
)

__all__ = ["Mechanism", "CategoricalMechanism", "UnaryMechanism"]


class Mechanism(abc.ABC):
    """Abstract base: a randomized map from inputs to released outputs."""

    #: Human-readable mechanism name used in reports and benchmarks.
    name: str = "mechanism"

    @property
    @abc.abstractmethod
    def m(self) -> int:
        """Size of the item domain the mechanism operates on."""

    @abc.abstractmethod
    def perturb(self, x, rng=None):
        """Perturb a single user's input and return the released output."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(m={self.m})"


class CategoricalMechanism(Mechanism):
    """A mechanism whose output is a single category id in ``0..m-1``.

    Subclasses must provide :meth:`channel_matrix`; :meth:`perturb` and
    :meth:`perturb_many` then sample from the appropriate row.
    """

    @abc.abstractmethod
    def channel_matrix(self) -> np.ndarray:
        """Row-stochastic ``m x m`` matrix ``P[x, y] = Pr(output=y | input=x)``."""

    def channel_cdf(self) -> np.ndarray:
        """Row-wise CDF of :meth:`channel_matrix`, cached on first use.

        Mechanism parameters are frozen at construction, so the channel —
        and its ``O(m^2)`` cumulative sum — is computed once and reused by
        every :meth:`perturb_many` call.  A subclass that does mutate its
        parameters must call :meth:`invalidate_channel_cache` afterwards.
        """
        cdf = getattr(self, "_channel_cdf", None)
        if cdf is None:
            matrix = np.asarray(self.channel_matrix())
            # One-time guard replacing rng.choice's per-call validation:
            # inverse-CDF sampling would otherwise silently pile missing
            # mass on the last category or draw from a non-monotone CDF.
            if matrix.size and matrix.min() < 0.0:
                raise ValidationError("channel_matrix entries must be non-negative")
            cdf = np.cumsum(matrix, axis=1)
            if cdf.size and not np.allclose(cdf[:, -1], 1.0, rtol=0.0, atol=1e-8):
                raise ValidationError(
                    "channel_matrix rows must sum to 1 to sample from them"
                )
            if cdf.size:
                # Pin every row's end to exactly 1.0: the flattened
                # sampler needs `cdf[x, -1] + x <= cdf[x+1, 0] + x + 1`
                # to hold without float slack.
                cdf /= cdf[:, -1:]
            cdf.flags.writeable = False
            self._channel_cdf = cdf
        return cdf

    def _flat_channel_cdf(self) -> np.ndarray:
        """Row CDFs offset by their row index and flattened, cached.

        Because every row ends at 1 (guarded in :meth:`channel_cdf`) and
        starts from a non-negative entry, ``flat[x * m + j] = cdf[x, j] +
        x`` is globally non-decreasing, so one ``searchsorted`` against
        ``x + u`` inverse-samples *every* user's row at once without the
        ``n x m`` row-gather a per-row comparison needs.
        """
        flat = getattr(self, "_flat_cdf", None)
        if flat is None:
            cdf = self.channel_cdf()
            flat = (cdf + np.arange(self.m)[:, None]).ravel()
            flat.flags.writeable = False
            self._flat_cdf = flat
        return flat

    def invalidate_channel_cache(self) -> None:
        """Drop the cached CDF (call after mutating channel parameters)."""
        self._channel_cdf = None
        self._flat_cdf = None

    def __getstate__(self):
        # The cached CDFs are O(m^2) derived state; recomputing them in
        # the receiving process beats shipping them in every shard payload.
        state = self.__dict__.copy()
        state.pop("_channel_cdf", None)
        state.pop("_flat_cdf", None)
        return state

    def perturb(self, x: int, rng=None) -> int:
        """Release a perturbed category for the true category *x*."""
        rng = check_rng(rng)
        if not 0 <= int(x) < self.m:
            raise ValidationError(f"input {x} outside domain [0, {self.m - 1}]")
        # Inverse-CDF draw from the cached row (no per-call O(m^2) matrix).
        row = self.channel_cdf()[int(x)]
        return int(min(np.searchsorted(row, rng.random(), side="right"), self.m - 1))

    def perturb_many(self, xs, rng=None, *, sampler=None) -> np.ndarray:
        """Vectorized perturbation of a batch of inputs.

        A ``"fast"`` *sampler* with a reduced-entropy dtype (``float32``
        or ``u64``) draws the inverse-CDF uniforms as float32
        (resolution 2^-24); the default ``"bitexact"`` sampler — and a
        fast config that explicitly keeps ``dtype="float64"`` —
        consumes the historical float64 stream.
        """
        rng = check_rng(rng)
        sampler = resolve_sampler(sampler)
        inputs = as_int_array(xs, "xs")
        if inputs.size and (inputs.min() < 0 or inputs.max() >= self.m):
            raise ValidationError(f"inputs fall outside domain [0, {self.m - 1}]")
        flat = self._flat_channel_cdf()
        u = rng.random(inputs.size, dtype=sampler.uniform_dtype)
        # One searchsorted over the flattened row-offset CDF inverts every
        # user's row at once — O(n log m) with no n x m temporaries.
        y = np.searchsorted(flat, inputs + u, side="right") - inputs * self.m
        escaped = (y < 0) | (y >= self.m)
        if np.any(escaped):
            # At large x, `x + u` can round to exactly x + 1 and cross the
            # row boundary (~x * 2^-53 per draw).  Re-sample just those
            # users with the exact per-row inverse CDF.
            rows = self.channel_cdf()[inputs[escaped]]
            y[escaped] = np.minimum(
                (u[escaped, None] > rows).sum(axis=1), self.m - 1
            )
        return y.astype(np.int64)


class UnaryMechanism(Mechanism):
    """Unary-encoding mechanism with per-bit flip parameters.

    Parameters
    ----------
    a:
        Length-``m`` vector; ``a[k] = Pr(y[k] = 1 | x[k] = 1)``.
    b:
        Length-``m`` vector; ``b[k] = Pr(y[k] = 1 | x[k] = 0)``.

    The paper requires ``a[k] > b[k]`` for every bit (Section V-B) so the
    estimator of Theorem 3 exists and utility is non-trivial; the
    constructor enforces it.
    """

    name = "unary"

    def __init__(self, a, b) -> None:
        a_arr = check_probability_vector(a, "a", open_interval=True)
        b_arr = check_probability_vector(b, "b", open_interval=True)
        if a_arr.shape != b_arr.shape:
            raise ValidationError(
                f"a and b must have equal length, got {a_arr.size} and {b_arr.size}"
            )
        if not np.all(a_arr > b_arr):
            worst = int(np.argmin(a_arr - b_arr))
            raise ValidationError(
                f"require a[k] > b[k] for all bits; violated at bit {worst} "
                f"(a={a_arr[worst]:g}, b={b_arr[worst]:g})"
            )
        self._a = a_arr.copy()
        self._b = b_arr.copy()
        self._a.flags.writeable = False
        self._b.flags.writeable = False

    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        return int(self._a.size)

    @property
    def a(self) -> np.ndarray:
        """Per-bit ``Pr(y=1 | x=1)`` (read-only)."""
        return self._a

    @property
    def b(self) -> np.ndarray:
        """Per-bit ``Pr(y=1 | x=0)`` (read-only)."""
        return self._b

    @property
    def alpha(self) -> np.ndarray:
        """``alpha[k] = a[k] / b[k]`` (Eq. 14), the bit-1 likelihood ratio."""
        return self._a / self._b

    @property
    def beta(self) -> np.ndarray:
        """``beta[k] = (1-a[k]) / (1-b[k])`` (Eq. 14), the bit-0 ratio."""
        return (1.0 - self._a) / (1.0 - self._b)

    # ------------------------------------------------------------------
    def encode(self, x: int) -> np.ndarray:
        """One-hot encode item *x* into an ``m``-bit vector (Eq. 6)."""
        if not 0 <= int(x) < self.m:
            raise ValidationError(f"input {x} outside domain [0, {self.m - 1}]")
        bits = np.zeros(self.m, dtype=np.int8)
        bits[int(x)] = 1
        return bits

    def perturb_bits(self, bits, rng=None) -> np.ndarray:
        """Flip each bit of an encoded vector independently (Algorithm 1)."""
        rng = check_rng(rng)
        vector = np.asarray(bits)
        if vector.shape != (self.m,):
            raise ValidationError(
                f"bits must have shape ({self.m},), got {vector.shape}"
            )
        ones = vector.astype(bool)
        prob_one = np.where(ones, self._a, self._b)
        return (rng.random(self.m) < prob_one).astype(np.int8)

    def perturb(self, x: int, rng=None) -> np.ndarray:
        """Encode and perturb one user's single-item input."""
        return self.perturb_bits(self.encode(x), rng)

    def perturb_many(self, xs, rng=None, *, sampler=None) -> np.ndarray:
        """Vectorized perturbation of a batch of single-item inputs.

        Returns an ``n x m`` 0/1 matrix of released reports.  All bits are
        first drawn from the zero-bit law ``b``, then each user's one hot
        bit is overwritten with an ``a``-draw — avoiding the ``n x m``
        probability-matrix copy a naive implementation needs.  The output
        (and one uniform draw per bit) is still ``O(n m)``; paper-scale
        runs should stream chunks through :mod:`repro.pipeline` or use
        :mod:`repro.simulation.fast`.

        The default *sampler* (``"bitexact"``) draws one float64 per bit
        in the historical order, so fixed-seed outputs are frozen.  A
        ``"fast"`` sampler switches to float32 draws (``dtype:
        "float32"``) or the packed bit-plane kernel (``dtype: "u64"``,
        unpacked here for API compatibility — prefer
        :meth:`perturb_many_packed` to keep the wire format).
        """
        rng = check_rng(rng)
        sampler = resolve_sampler(sampler)
        inputs = self._check_inputs(xs)
        n = inputs.size
        if sampler.is_packed:
            packed = self._perturb_many_packed(inputs, rng, sampler)
            return np.unpackbits(packed, axis=1, count=self.m).astype(np.int8)
        # uniform_dtype is float64 for bitexact (and fast configs that
        # keep it explicitly), so that branch consumes the frozen stream.
        dtype = sampler.uniform_dtype
        out = (
            rng.random((n, self.m), dtype=dtype)
            < self._b.astype(dtype, copy=False)
        ).astype(np.int8)
        hot = rng.random(n, dtype=dtype) < self._a[inputs].astype(dtype, copy=False)
        out[np.arange(n), inputs] = hot
        return out

    def perturb_many_packed(self, xs, rng=None, *, sampler=None) -> np.ndarray:
        """Perturb a batch straight into the ``np.packbits`` wire format.

        Returns an ``n x ceil(m / 8)`` ``uint8`` matrix (row-wise
        MSB-first packing, trailing pad bits zero) — what a transport
        ships and what
        :meth:`~repro.pipeline.accumulator.CountAccumulator.add_packed_reports`
        ingests.  With a ``"fast"`` ``u64`` sampler the packed words are
        produced directly by :func:`repro.kernels.packed_bernoulli`; no
        float64 array or unpacked 0/1 matrix ever exists.  Other
        samplers fall back to packing :meth:`perturb_many`'s output.
        """
        rng = check_rng(rng)
        sampler = resolve_sampler(sampler)
        inputs = self._check_inputs(xs)
        if sampler.is_packed:
            return self._perturb_many_packed(inputs, rng, sampler)
        return np.packbits(self.perturb_many(inputs, rng, sampler=sampler), axis=1)

    def _check_inputs(self, xs) -> np.ndarray:
        inputs = as_int_array(xs, "xs")
        if inputs.size and (inputs.min() < 0 or inputs.max() >= self.m):
            raise ValidationError(f"inputs fall outside domain [0, {self.m - 1}]")
        return inputs

    def _perturb_many_packed(self, inputs, rng, sampler) -> np.ndarray:
        """Packed-kernel body: b-law background, packed hot-bit overwrite.

        The background draw goes through the sampler's *compute*
        backend (``numpy`` | ``numba`` | ``threaded``, see
        :mod:`repro.kernels.backends`); this path is only reachable
        under the ``fast`` contract, so backends are free to consume
        the generator differently as long as the released law matches.
        """
        if inputs.size == 0:
            return np.empty((0, packed_width(self.m)), dtype=np.uint8)
        packed = sampler.compute_backend().packed_bernoulli(
            self._b, inputs.size, rng, precision=sampler.precision
        )
        hot = rng.random(inputs.size) < self._a[inputs]
        packed_assign_bits(packed, inputs, hot)
        return packed

    # ------------------------------------------------------------------
    def pair_ratio_bound(self, i: int, j: int) -> float:
        """Worst-case ``Pr(y|v_i) / Pr(y|v_j)`` over all outputs ``y``.

        Section V-B shows this equals ``alpha_i / beta_j =
        a_i (1-b_j) / (b_i (1-a_j))``, achieved at ``y[i]=1, y[j]=0``.
        The audits compare it against ``e^{r(eps_i, eps_j)}``.
        """
        for k in (i, j):
            if not 0 <= k < self.m:
                raise ValidationError(f"bit {k} outside [0, {self.m - 1}]")
        if i == j:
            return 1.0
        return float(self.alpha[i] / self.beta[j])

    def ldp_epsilon(self) -> float:
        """The tightest plain-LDP budget this mechanism satisfies.

        ``max_{i != j} ln(alpha_i / beta_j)``; for uniform parameters this
        reduces to the familiar ``ln(a(1-b) / (b(1-a)))`` of [Wang et al.
        2017].
        """
        if self.m == 1:
            return float(np.log(self.alpha[0] / self.beta[0]))
        log_alpha = np.log(self.alpha)
        log_beta = np.log(self.beta)
        order = np.argsort(log_alpha)
        top, second = order[-1], order[-2]
        # max over i != j of log_alpha[i] - log_beta[j]: the minimizing j
        # may coincide with the maximizing i, so consider the two smallest
        # betas against the two largest alphas.
        beta_order = np.argsort(log_beta)
        best = -np.inf
        for i in (top, second):
            for j in (beta_order[0], beta_order[1] if self.m > 1 else beta_order[0]):
                if i != j:
                    best = max(best, log_alpha[i] - log_beta[j])
        return float(best)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(m={self.m}, "
            f"a=[{self._a.min():.4g}..{self._a.max():.4g}], "
            f"b=[{self._b.min():.4g}..{self._b.max():.4g}])"
        )
