"""Input-Discriminative Unary Encoding — IDUE (Algorithm 1, Section V).

IDUE is a unary-encoding mechanism whose per-bit parameters ``(a_k, b_k)``
depend on the privacy *level* of item ``k``.  Every item in level ``i``
shares the level parameters ``(a_i, b_i)``; those are chosen by one of
the optimization models in :mod:`repro.optim` (opt0 / opt1 / opt2) to
minimize the worst-case total MSE subject to the ID-LDP constraints (7).
"""

from __future__ import annotations

import numpy as np

from .._validation import check_probability_vector
from ..core.budgets import BudgetSpec
from ..core.notions import MIN, IDLDP, RFunction
from ..core.policy import PolicyGraph
from ..exceptions import ValidationError
from .base import UnaryMechanism

__all__ = ["IDUE"]


class IDUE(UnaryMechanism):
    """The paper's IDUE mechanism for single-item input.

    Parameters
    ----------
    spec:
        Budget specification partitioning the domain into levels.
    level_a, level_b:
        Length-``t`` per-level Bernoulli parameters; broadcast to per-bit
        vectors via the spec's level assignment.

    Use :meth:`optimized` to have the library solve for the parameters.
    """

    name = "idue"

    def __init__(self, spec: BudgetSpec, level_a, level_b) -> None:
        if not isinstance(spec, BudgetSpec):
            raise ValidationError(f"spec must be a BudgetSpec, got {spec!r}")
        a_lvl = check_probability_vector(level_a, "level_a", open_interval=True)
        b_lvl = check_probability_vector(level_b, "level_b", open_interval=True)
        if a_lvl.shape != (spec.t,) or b_lvl.shape != (spec.t,):
            raise ValidationError(
                f"level parameters must have shape ({spec.t},), got "
                f"{a_lvl.shape} and {b_lvl.shape}"
            )
        super().__init__(spec.expand(a_lvl), spec.expand(b_lvl))
        self.spec = spec
        self.level_a = a_lvl.copy()
        self.level_b = b_lvl.copy()
        self.level_a.flags.writeable = False
        self.level_b.flags.writeable = False

    # ------------------------------------------------------------------
    @classmethod
    def optimized(
        cls,
        spec: BudgetSpec,
        *,
        r: RFunction | str = MIN,
        model: str = "opt0",
        policy: PolicyGraph | None = None,
    ) -> "IDUE":
        """Solve an optimization model and build the mechanism.

        Parameters
        ----------
        spec:
            The budget specification.
        r:
            Pair-budget function (default ``min`` = MinID-LDP).
        model:
            ``"opt0"`` (worst-case MSE, Eq. 10), ``"opt1"`` (RAPPOR
            structure, Eq. 12) or ``"opt2"`` (OUE structure, Eq. 13).
        policy:
            Optional incomplete policy graph over levels.
        """
        from ..optim import solve  # local import: optim depends only on core

        result = solve(spec, r=r, model=model, policy=policy)
        mechanism = cls(spec, result.a, result.b)
        mechanism.optimization = result
        return mechanism

    # ------------------------------------------------------------------
    def notion(self, r: RFunction | str = MIN, policy: PolicyGraph | None = None) -> IDLDP:
        """The ID-LDP notion object this mechanism is meant to satisfy."""
        return IDLDP(self.spec, r, policy=policy)

    def level_pair_ratio_bound(self, i: int, j: int) -> float:
        """Worst-case output ratio between items of levels *i* and *j*.

        This is the left-hand side of constraint (7) at level
        granularity: ``a_i (1-b_j) / (b_i (1-a_j))``.
        """
        for k in (i, j):
            if not 0 <= k < self.spec.t:
                raise ValidationError(f"level {k} outside [0, {self.spec.t - 1}]")
        return float(
            self.level_a[i]
            * (1.0 - self.level_b[j])
            / (self.level_b[i] * (1.0 - self.level_a[j]))
        )

    def satisfies(
        self,
        r: RFunction | str = MIN,
        *,
        policy: PolicyGraph | None = None,
        rtol: float = 1e-7,
    ) -> bool:
        """Check constraint (7) for every pair of levels.

        Within-level pairs are checked whenever the level contains at
        least two items; cross-level pairs are checked when the policy
        graph (complete by default) carries the edge.
        """
        notion = self.notion(r, policy)
        budget_matrix = notion.level_budget_matrix()
        sizes = self.spec.level_sizes
        for i in range(self.spec.t):
            for j in range(self.spec.t):
                if i == j and sizes[i] < 2:
                    continue  # a singleton level has no within-level pair
                bound = budget_matrix[i, j]
                if not np.isfinite(bound):
                    continue  # pair excluded by the policy graph
                ratio = self.level_pair_ratio_bound(i, j)
                if ratio > np.exp(bound) * (1.0 + rtol):
                    return False
        return True

    def __repr__(self) -> str:
        return (
            f"IDUE(m={self.m}, t={self.spec.t}, "
            f"a={np.round(self.level_a, 4).tolist()}, "
            f"b={np.round(self.level_b, 4).tolist()})"
        )
