"""Local perturbation mechanisms.

Two output families:

* **Categorical** mechanisms report one category (RR, GRR).
* **Unary-encoding** mechanisms report an ``m``-bit vector with per-bit
  Bernoulli flips (SUE / basic RAPPOR, OUE, and the paper's IDUE).

Item-set inputs are handled by composing a unary mechanism with the
Padding-and-Sampling protocol (:class:`PaddingSampler`,
:class:`IDUEPS`).
"""

from .base import CategoricalMechanism, Mechanism, UnaryMechanism
from .factory import make_single_item_mechanism, make_itemset_mechanism
from .histogram_encoding import (
    SummationHistogramEncoding,
    ThresholdingHistogramEncoding,
)
from .idue import IDUE
from .local_hashing import OptimizedLocalHashing
from .idue_ps import IDUEPS, itemset_budget
from .padding_sampling import PaddingSampler
from .randomized_response import BinaryRandomizedResponse, GeneralizedRandomizedResponse
from .unary import OptimizedUnaryEncoding, SymmetricUnaryEncoding, UnaryEncoding

__all__ = [
    "Mechanism",
    "CategoricalMechanism",
    "UnaryMechanism",
    "BinaryRandomizedResponse",
    "GeneralizedRandomizedResponse",
    "UnaryEncoding",
    "SymmetricUnaryEncoding",
    "OptimizedUnaryEncoding",
    "IDUE",
    "OptimizedLocalHashing",
    "SummationHistogramEncoding",
    "ThresholdingHistogramEncoding",
    "PaddingSampler",
    "IDUEPS",
    "itemset_budget",
    "make_single_item_mechanism",
    "make_itemset_mechanism",
]
