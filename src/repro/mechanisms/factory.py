"""Construct mechanisms from string names and an experiment configuration.

The experiment runner and CLI refer to mechanisms by the names the paper
uses ("rappor", "oue", "idue-opt0", "rappor-ps", ...).  This module maps
those names to constructed mechanism objects, applying the paper's
convention that LDP baselines must use ``eps = min{E}`` (Section I) while
IDUE variants consume the whole budget specification.
"""

from __future__ import annotations

from ..core.budgets import BudgetSpec
from ..core.notions import MIN, RFunction
from ..exceptions import ValidationError
from .idue import IDUE
from .idue_ps import IDUEPS
from .unary import OptimizedUnaryEncoding, SymmetricUnaryEncoding

__all__ = [
    "SINGLE_ITEM_MECHANISMS",
    "ITEMSET_MECHANISMS",
    "make_single_item_mechanism",
    "make_itemset_mechanism",
]

#: Names accepted by :func:`make_single_item_mechanism`.
SINGLE_ITEM_MECHANISMS = (
    "rappor",
    "oue",
    "idue-opt0",
    "idue-opt1",
    "idue-opt2",
)

#: Names accepted by :func:`make_itemset_mechanism`.
ITEMSET_MECHANISMS = (
    "rappor-ps",
    "oue-ps",
    "idue-ps-opt0",
    "idue-ps-opt1",
    "idue-ps-opt2",
)


def _split_idue_name(name: str, prefix: str) -> str:
    model = name[len(prefix):]
    if model not in ("opt0", "opt1", "opt2"):
        raise ValidationError(f"unknown optimization model in mechanism name {name!r}")
    return model


def make_single_item_mechanism(
    name: str, spec: BudgetSpec, *, r: RFunction | str = MIN
):
    """Build a single-item mechanism by paper name.

    LDP baselines ("rappor", "oue") are instantiated at ``min{E}`` — the
    only budget under which they satisfy the required protection for all
    inputs.  IDUE variants are optimized against the full spec.
    """
    key = name.lower()
    if key == "rappor":
        return SymmetricUnaryEncoding(spec.min_epsilon, spec.m)
    if key == "oue":
        return OptimizedUnaryEncoding(spec.min_epsilon, spec.m)
    if key.startswith("idue-"):
        model = _split_idue_name(key, "idue-")
        return IDUE.optimized(spec, r=r, model=model)
    raise ValidationError(
        f"unknown single-item mechanism {name!r}; expected one of "
        f"{SINGLE_ITEM_MECHANISMS}"
    )


def make_itemset_mechanism(
    name: str, spec: BudgetSpec, ell: int, *, r: RFunction | str = MIN
):
    """Build an item-set mechanism (PS-composed) by paper name."""
    key = name.lower()
    if key == "rappor-ps":
        return IDUEPS.rappor_ps(spec.min_epsilon, spec.m, ell)
    if key == "oue-ps":
        return IDUEPS.oue_ps(spec.min_epsilon, spec.m, ell)
    if key.startswith("idue-ps-"):
        model = _split_idue_name(key, "idue-ps-")
        return IDUEPS.optimized(spec, ell, r=r, model=model)
    raise ValidationError(
        f"unknown item-set mechanism {name!r}; expected one of {ITEMSET_MECHANISMS}"
    )
