"""Optimized Local Hashing (OLH) — an additional LDP baseline.

From Wang et al., "Locally Differentially Private Protocols for
Frequency Estimation" (USENIX Security 2017), the paper's reference [6].
OLH communicates O(log g) bits per user instead of UE's m bits: each
user hashes her item into ``g = round(e^eps) + 1`` buckets with a
per-user hash seed and runs GRR over the buckets.

Included because any production LDP library ships it and it contextual-
izes the UE-family results (OLH's variance matches OUE's asymptotically,
so the IDUE-vs-OUE comparisons transfer).  OLH itself is *not*
input-discriminative — it is listed as a uniform-budget baseline only.
"""

from __future__ import annotations

import numpy as np

from .._validation import (
    as_int_array,
    check_budget,
    check_positive_int,
    check_rng,
)
from ..exceptions import EstimationError, ValidationError
from ..kernels import resolve_sampler
from .base import Mechanism

__all__ = ["OptimizedLocalHashing"]

# splitmix64 finalizer constants for the vectorized per-(seed, item) hash.
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def _hash_buckets(seeds: np.ndarray, items: np.ndarray, g: int) -> np.ndarray:
    """Pairwise hash of (seed, item) into ``[0, g)`` (splitmix64 mix).

    Vectorized and deterministic; the per-user seed plays the role of
    picking a random member of the hash family.
    """
    with np.errstate(over="ignore"):
        z = seeds.astype(np.uint64) * _GOLDEN + items.astype(np.uint64) + np.uint64(1)
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        z = z ^ (z >> np.uint64(31))
    return (z % np.uint64(g)).astype(np.int64)


class OptimizedLocalHashing(Mechanism):
    """OLH: hash into ``g = round(e^eps) + 1`` buckets, then GRR.

    Parameters
    ----------
    epsilon:
        The (uniform) LDP budget.
    m:
        Item-domain size.
    g:
        Bucket count; defaults to the variance-optimal
        ``max(2, round(e^eps) + 1)``.
    """

    name = "olh"

    def __init__(self, epsilon: float, m: int, g: int | None = None) -> None:
        self.epsilon = check_budget(epsilon)
        self._m = check_positive_int(m, "m")
        if g is None:
            g = max(2, int(np.round(np.exp(self.epsilon))) + 1)
        self.g = check_positive_int(g, "g")
        if self.g < 2:
            raise ValidationError(f"g must be >= 2, got {self.g}")
        denom = np.exp(self.epsilon) + self.g - 1.0
        self.p = float(np.exp(self.epsilon) / denom)
        self.q = float(1.0 / denom)

    @property
    def m(self) -> int:
        return self._m

    # ------------------------------------------------------------------
    def perturb(self, x: int, rng=None) -> tuple[int, int]:
        """One user's report: ``(seed, perturbed bucket)``."""
        rng = check_rng(rng)
        seeds, buckets = self.perturb_many([int(x)], rng)
        return int(seeds[0]), int(buckets[0])

    def perturb_many(self, xs, rng=None, *, sampler=None) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized reports: ``(seeds, perturbed buckets)`` arrays.

        A reduced-entropy ``"fast"`` *sampler* draws the keep-coins as
        float32; seeds and bucket draws are integer-native either way.
        """
        rng = check_rng(rng)
        sampler = resolve_sampler(sampler)
        items = as_int_array(xs, "xs")
        if items.size and (items.min() < 0 or items.max() >= self._m):
            raise ValidationError(f"inputs fall outside domain [0, {self._m - 1}]")
        n = items.size
        seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
        true_buckets = _hash_buckets(seeds, items, self.g)
        dtype = sampler.uniform_dtype
        keep = rng.random(n, dtype=dtype) < dtype(self.p)
        others = rng.integers(self.g - 1, size=n)
        others = np.where(others >= true_buckets, others + 1, others)
        reported = np.where(keep, true_buckets, others)
        return seeds, reported.astype(np.int64)

    # ------------------------------------------------------------------
    def estimate_counts(self, seeds, reports, items=None) -> np.ndarray:
        """Unbiased per-item counts from ``(seed, bucket)`` reports.

        ``C_i = #{u : report_u == h_{seed_u}(i)}`` has expectation
        ``c*_i p + (n - c*_i)/g`` (a non-owner's report matches item i's
        bucket w.p. 1/g under the hash-family uniformity), calibrated by

            ``ĉ_i = (C_i − n/g) / (p − 1/g)``.

        Cost is O(n) per item; pass *items* to estimate a subset only.
        """
        seed_arr = as_int_array(seeds, "seeds")
        report_arr = as_int_array(reports, "reports")
        if seed_arr.size != report_arr.size:
            raise EstimationError("seeds and reports must have equal length")
        n = seed_arr.size
        if n == 0:
            raise EstimationError("no reports to estimate from")
        targets = (
            np.arange(self._m, dtype=np.int64)
            if items is None
            else as_int_array(items, "items")
        )
        denominator = self.p - 1.0 / self.g
        estimates = np.empty(targets.size)
        for k, item in enumerate(targets):
            matches = _hash_buckets(seed_arr, np.full(n, item, np.int64), self.g)
            support = float(np.sum(report_arr == matches))
            estimates[k] = (support - n / self.g) / denominator
        return estimates

    def variance_per_item(self, n: int) -> float:
        """Approximate Var[ĉ_i] = n · (1/g)(1 − 1/g) / (p − 1/g)^2.

        With the optimal g this equals OUE's ``4 e^eps / (e^eps − 1)^2``
        asymptotically — the reason OLH and OUE curves coincide in [6].
        """
        inv_g = 1.0 / self.g
        return float(n * inv_g * (1.0 - inv_g) / (self.p - inv_g) ** 2)

    def __repr__(self) -> str:
        return f"OptimizedLocalHashing(m={self._m}, g={self.g}, eps={self.epsilon:g})"
