"""Uniform-parameter unary-encoding mechanisms (Section III-C).

These are the LDP baselines the paper evaluates against:

* :class:`SymmetricUnaryEncoding` — basic RAPPOR:
  ``p = e^{eps/2} / (e^{eps/2} + 1)``, ``q = 1 - p``.
* :class:`OptimizedUnaryEncoding` — OUE [Wang et al. 2017]:
  ``p = 1/2``, ``q = 1 / (e^eps + 1)``.
* :class:`UnaryEncoding` — any uniform ``(p, q)`` pair, with the implied
  LDP budget ``ln(p(1-q) / ((1-p)q))``.

Both baselines instantiate every bit with the same ``(p, q)``; the
paper's IDUE (:mod:`repro.mechanisms.idue`) is the input-discriminative
generalization with per-level parameters.

Uniform parameters are also the fastest case for the ``"fast"`` packed
sampler (see :mod:`repro.kernels`): a single ``(p, q)`` pair means the
bit-plane kernel runs its one-bitop-per-plane uniform path, and dyadic
parameters (e.g. OUE's ``p = 1/2``) collapse to a single plane.
"""

from __future__ import annotations

import numpy as np

from .._validation import (
    check_budget,
    check_open_probability,
    check_positive_int,
)
from ..exceptions import ValidationError
from .base import UnaryMechanism

__all__ = ["UnaryEncoding", "SymmetricUnaryEncoding", "OptimizedUnaryEncoding"]


class UnaryEncoding(UnaryMechanism):
    """Unary encoding with one ``(p, q)`` pair shared by all bits.

    Parameters
    ----------
    p:
        ``Pr(y[k]=1 | x[k]=1)``; must exceed *q*.
    q:
        ``Pr(y[k]=1 | x[k]=0)``.
    m:
        Domain size.
    """

    name = "ue"

    def __init__(self, p: float, q: float, m: int) -> None:
        p = check_open_probability(p, "p")
        q = check_open_probability(q, "q")
        m = check_positive_int(m, "m")
        if p <= q:
            raise ValidationError(f"require p > q, got p={p:g}, q={q:g}")
        super().__init__(np.full(m, p), np.full(m, q))
        self.p = p
        self.q = q

    def epsilon(self) -> float:
        """The LDP budget of this UE instance: ``ln(p(1-q) / ((1-p)q))``."""
        return float(np.log(self.p * (1.0 - self.q) / ((1.0 - self.p) * self.q)))


class SymmetricUnaryEncoding(UnaryEncoding):
    """Basic RAPPOR: symmetric flip probabilities.

    ``p = e^{eps/2} / (e^{eps/2} + 1)`` and ``q = 1 - p`` split the budget
    evenly between the two bit values.
    """

    name = "rappor"

    def __init__(self, epsilon: float, m: int) -> None:
        epsilon = check_budget(epsilon)
        half = np.exp(epsilon / 2.0)
        p = float(half / (half + 1.0))
        super().__init__(p, 1.0 - p, m)
        self.target_epsilon = epsilon


class OptimizedUnaryEncoding(UnaryEncoding):
    """OUE [Wang et al. 2017]: ``p = 1/2``, ``q = 1/(e^eps + 1)``.

    Minimizes the approximate estimator variance among UE instances at a
    given eps, which is why the paper's opt2 model constrains ``a = 1/2``.
    """

    name = "oue"

    def __init__(self, epsilon: float, m: int) -> None:
        epsilon = check_budget(epsilon)
        q = float(1.0 / (np.exp(epsilon) + 1.0))
        super().__init__(0.5, q, m)
        self.target_epsilon = epsilon
