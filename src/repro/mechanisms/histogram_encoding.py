"""Histogram Encoding baselines: SHE and THE.

From Wang et al. (USENIX Security 2017), the paper's reference [6].
Histogram encoding perturbs the one-hot vector with *continuous* Laplace
noise of scale ``2/eps`` per bit (sensitivity of the one-hot encoding is
2, so the vector satisfies eps-LDP):

* **SHE** (Summation HE) — the server simply sums the noisy vectors;
  the estimator is already unbiased with Var = ``8 n / eps^2`` per item.
* **THE** (Thresholding HE) — each user (or the server, equivalently,
  since thresholding is post-processing) maps the noisy bit to 1 iff it
  exceeds a threshold ``theta``; the result is a UE-style binary report
  with ``p = Pr(1 + Lap > theta)`` and ``q = Pr(Lap > theta)``, and the
  usual UE calibration applies.  ``theta`` is chosen to minimize the
  noise term of Eq. 9; the optimum lies in (1/2, 1).

These round out the baseline zoo next to GRR / SUE / OUE / OLH; like
them, they are uniform-budget mechanisms (no input discrimination).
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from .._validation import (
    as_int_array,
    check_budget,
    check_positive_int,
    check_rng,
)
from ..exceptions import ValidationError
from .base import Mechanism
from .unary import UnaryEncoding

__all__ = ["SummationHistogramEncoding", "ThresholdingHistogramEncoding"]


class SummationHistogramEncoding(Mechanism):
    """SHE: one-hot encoding plus per-bit Laplace(2/eps) noise.

    Reports are length-``m`` *real* vectors; the server-side estimate of
    ``c*_i`` is the plain column sum (zero-mean noise), no calibration.
    """

    name = "she"

    def __init__(self, epsilon: float, m: int) -> None:
        self.epsilon = check_budget(epsilon)
        self._m = check_positive_int(m, "m")
        self.scale = 2.0 / self.epsilon  # Laplace scale b = sensitivity/eps

    @property
    def m(self) -> int:
        return self._m

    def perturb(self, x: int, rng=None) -> np.ndarray:
        """One noisy report (float vector of length m)."""
        rng = check_rng(rng)
        x = int(x)
        if not 0 <= x < self._m:
            raise ValidationError(f"input {x} outside domain [0, {self._m - 1}]")
        bits = np.zeros(self._m)
        bits[x] = 1.0
        return bits + rng.laplace(0.0, self.scale, size=self._m)

    def perturb_many(self, xs, rng=None, *, sampler=None) -> np.ndarray:
        """Vectorized reports: ``n x m`` float matrix.

        *sampler* is accepted for interface uniformity only: SHE's
        Laplace noise is inherently a float draw, so there is no packed
        fast path and the argument is ignored.
        """
        rng = check_rng(rng)
        items = as_int_array(xs, "xs")
        if items.size and (items.min() < 0 or items.max() >= self._m):
            raise ValidationError(f"inputs fall outside domain [0, {self._m - 1}]")
        n = items.size
        noise = rng.laplace(0.0, self.scale, size=(n, self._m))
        noise[np.arange(n), items] += 1.0
        return noise

    def estimate_counts(self, reports) -> np.ndarray:
        """Column sums — already unbiased for the true counts."""
        matrix = np.asarray(reports, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != self._m:
            raise ValidationError(
                f"reports must have shape (n, {self._m}), got {matrix.shape}"
            )
        return matrix.sum(axis=0)

    def variance_per_item(self, n: int) -> float:
        """Var[ĉ_i] = n · 2 b^2 = 8 n / eps^2 (Laplace variance per user)."""
        return float(n * 2.0 * self.scale**2)


def _the_probabilities(epsilon: float, theta: float) -> tuple[float, float]:
    """``(p, q)`` of THE at threshold *theta* (Laplace scale 2/eps).

    ``p = Pr(1 + Lap(b) > theta)`` and ``q = Pr(Lap(b) > theta)`` for
    ``theta`` in (1/2, 1), where the Laplace CDF tail at ``u > 0`` is
    ``0.5 e^{-u/b}``.
    """
    b = 2.0 / epsilon
    # theta - 1 <= 0, so Pr(L > theta - 1) = 1 - 0.5 e^{(theta-1)/b}.
    p = 1.0 - 0.5 * np.exp((theta - 1.0) / b)
    q = 0.5 * np.exp(-theta / b)
    return float(p), float(q)


class ThresholdingHistogramEncoding(UnaryEncoding):
    """THE: SHE followed by per-bit thresholding at ``theta``.

    Thresholding is post-processing of an eps-LDP release, so THE is
    eps-LDP regardless of ``theta``.  The binary reports behave exactly
    like unary encoding with the induced ``(p, q)``, which is how the
    class is implemented (inheriting the UE perturbation/estimation).

    ``theta`` defaults to the variance-minimizing value in (1/2, 1).
    """

    name = "the"

    def __init__(self, epsilon: float, m: int, theta: float | None = None) -> None:
        epsilon = check_budget(epsilon)
        if theta is None:
            theta = self.optimal_theta(epsilon)
        if not 0.5 < theta < 1.0:
            raise ValidationError(
                f"theta must lie in (1/2, 1) for p > q and a proper LDP "
                f"analysis, got {theta}"
            )
        p, q = _the_probabilities(epsilon, theta)
        super().__init__(p, q, m)
        self.target_epsilon = epsilon
        self.theta = float(theta)

    @staticmethod
    def optimal_theta(epsilon: float) -> float:
        """Minimize the Eq. 9 noise term ``q(1-q)/(p-q)^2`` over theta."""
        epsilon = check_budget(epsilon)

        def noise(theta: float) -> float:
            p, q = _the_probabilities(epsilon, theta)
            return q * (1.0 - q) / (p - q) ** 2

        result = optimize.minimize_scalar(
            noise, bounds=(0.5 + 1e-6, 1.0 - 1e-6), method="bounded"
        )
        return float(result.x)
