"""Randomized Response and Generalized Randomized Response (Section III-C).

These are the classical categorical baselines the paper reviews:

* :class:`BinaryRandomizedResponse` — Warner's 1965 coin-flip scheme for
  yes/no answers, truthful with probability ``p = e^eps / (e^eps + 1)``.
* :class:`GeneralizedRandomizedResponse` — the ``m``-ary extension with
  ``p = e^eps / (e^eps + m - 1)`` and ``q = 1 / (e^eps + m - 1)``; its
  utility collapses for large domains, which is the paper's motivation
  for unary encoding.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_budget, check_positive_int, check_rng
from ..exceptions import ValidationError
from ..kernels import resolve_sampler
from .base import CategoricalMechanism

__all__ = ["BinaryRandomizedResponse", "GeneralizedRandomizedResponse"]


class BinaryRandomizedResponse(CategoricalMechanism):
    """Warner's randomized response over a binary domain ``{0, 1}``.

    Reports the truth with probability ``p = e^eps / (e^eps + 1)`` and the
    opposite answer otherwise, which is exactly eps-LDP.
    """

    name = "rr"

    def __init__(self, epsilon: float) -> None:
        self.epsilon = check_budget(epsilon)
        self.p = float(np.exp(self.epsilon) / (np.exp(self.epsilon) + 1.0))

    @property
    def m(self) -> int:
        return 2

    def channel_matrix(self) -> np.ndarray:
        p = self.p
        return np.array([[p, 1.0 - p], [1.0 - p, p]])

    def perturb(self, x: int, rng=None) -> int:
        rng = check_rng(rng)
        if x not in (0, 1):
            raise ValidationError(f"binary RR input must be 0 or 1, got {x}")
        truthful = rng.random() < self.p
        return int(x) if truthful else 1 - int(x)

    def estimate_count_of_ones(self, reports, n: int | None = None) -> float:
        """Unbiased estimate of how many users hold value 1.

        Standard RR calibration: ``(c - n(1-p)) / (2p - 1)`` where ``c``
        is the number of 1-reports.
        """
        arr = np.asarray(reports)
        if n is None:
            n = arr.size
        ones = float(np.sum(arr == 1))
        return (ones - n * (1.0 - self.p)) / (2.0 * self.p - 1.0)


class GeneralizedRandomizedResponse(CategoricalMechanism):
    """GRR / direct encoding over ``m`` categories.

    Keeps the truth with ``p = e^eps / (e^eps + m - 1)`` and reports each
    other category with ``q = 1 / (e^eps + m - 1)``.
    """

    name = "grr"

    def __init__(self, epsilon: float, m: int) -> None:
        self.epsilon = check_budget(epsilon)
        self._m = check_positive_int(m, "m")
        if self._m < 2:
            raise ValidationError(f"GRR needs a domain of size >= 2, got {self._m}")
        denom = np.exp(self.epsilon) + self._m - 1.0
        self.p = float(np.exp(self.epsilon) / denom)
        self.q = float(1.0 / denom)

    @property
    def m(self) -> int:
        return self._m

    def channel_matrix(self) -> np.ndarray:
        matrix = np.full((self._m, self._m), self.q)
        np.fill_diagonal(matrix, self.p)
        return matrix

    def perturb(self, x: int, rng=None) -> int:
        rng = check_rng(rng)
        x = int(x)
        if not 0 <= x < self._m:
            raise ValidationError(f"input {x} outside domain [0, {self._m - 1}]")
        if rng.random() < self.p:
            return x
        # Uniform over the m-1 other categories.
        other = int(rng.integers(self._m - 1))
        return other if other < x else other + 1

    def perturb_many(self, xs, rng=None, *, sampler=None) -> np.ndarray:
        rng = check_rng(rng)
        sampler = resolve_sampler(sampler)
        inputs = np.asarray(xs, dtype=np.int64)
        if inputs.size and (inputs.min() < 0 or inputs.max() >= self._m):
            raise ValidationError(f"inputs fall outside domain [0, {self._m - 1}]")
        dtype = sampler.uniform_dtype  # float32 keep-coins under fast configs
        keep = rng.random(inputs.size, dtype=dtype) < dtype(self.p)
        others = rng.integers(self._m - 1, size=inputs.size)
        others = np.where(others >= inputs, others + 1, others)
        return np.where(keep, inputs, others).astype(np.int64)

    def estimate_counts(self, reports, n: int | None = None) -> np.ndarray:
        """Unbiased per-category count estimates (Eq. 3 with this p, q)."""
        arr = np.asarray(reports, dtype=np.int64)
        if n is None:
            n = arr.size
        observed = np.bincount(arr, minlength=self._m).astype(float)
        return (observed - n * self.q) / (self.p - self.q)

    def variance_per_item(self, n: int, true_count: float = 0.0) -> float:
        """Theoretical estimator variance for one category (Eq. 9 form)."""
        p, q = self.p, self.q
        return n * q * (1.0 - q) / (p - q) ** 2 + true_count * (1.0 - p - q) / (p - q)
