"""Optimally merging estimates from multiple collection rounds.

Theorem 2 lets a deployment split one budget specification across
several collection rounds (see :class:`repro.core.composition.
CompositionAccountant`).  Each round then yields an independent unbiased
estimate of the same true counts, and the minimum-variance unbiased
combination is the inverse-variance weighted mean.

The exact per-item variance (Eq. 9) depends on the unknown truth through
the small data term, so the weights use the dominant data-independent
noise term ``n b(1−b)/(a−b)^2`` — the same convention the paper's opt1
objective uses.  With equal-budget rounds this reduces to the plain
mean, and merging ``k`` such rounds divides the variance by ``k``.

:func:`combine_shares` is the decode step of the split-trust tier
(:mod:`repro.pipeline.service.shares`): it subtracts every share
keeper's accumulated blinding words from the blinded collector's word
sums mod 2^64, recovering the exact per-bit counts — bit-identical to a
direct unblinded tally, because mod-2^64 addition of uint64 words is
lossless and the blinding cancels exactly.  It refuses, loudly, any
combination whose residual is not a valid count vector (a missing or
corrupt keeper share leaves uniformly random words, which exceed ``n``
with overwhelming probability) — garbage is never decoded as counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import EstimationError, ValidationError
from .frequency import FrequencyEstimator

__all__ = ["RoundEstimate", "combine_shares", "merge_round_estimates"]


@dataclass(frozen=True)
class RoundEstimate:
    """One collection round's calibrated output and its noise profile.

    Attributes
    ----------
    estimates:
        Length-``m`` calibrated count estimates.
    noise_variance:
        Length-``m`` data-independent variance term
        ``n b(1−b)/(a−b)^2`` of the round's estimator.
    """

    estimates: np.ndarray
    noise_variance: np.ndarray

    def to_dict(self) -> dict:
        """JSON-compatible form for shipping a round between machines.

        A remote collector that has already calibrated its round sends
        this instead of raw counts: the receiver needs no knowledge of
        the remote mechanism to run :func:`merge_round_estimates`.
        """
        return {
            "type": "RoundEstimate",
            "version": 1,
            "estimates": np.asarray(self.estimates, dtype=float).tolist(),
            "noise_variance": np.asarray(self.noise_variance, dtype=float).tolist(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RoundEstimate":
        """Inverse of :meth:`to_dict`."""
        if not isinstance(payload, dict) or payload.get("type") != "RoundEstimate":
            raise ValidationError(f"not a serialized RoundEstimate: {payload!r}")
        if payload.get("version") != 1:
            raise ValidationError(
                f"unsupported RoundEstimate version {payload.get('version')!r}; "
                "this reader supports version 1"
            )
        if "estimates" not in payload or "noise_variance" not in payload:
            raise ValidationError(
                "serialized RoundEstimate is missing 'estimates' or "
                "'noise_variance'"
            )
        try:
            estimates = np.asarray(payload["estimates"], dtype=float)
            noise = np.asarray(payload["noise_variance"], dtype=float)
        except (ValueError, TypeError) as exc:
            # Ragged or non-numeric lists from a remote sender must be
            # refused like every other malformed payload, not crash the
            # receiving merger with a bare numpy error.
            raise ValidationError(
                f"serialized RoundEstimate holds non-numeric data: {exc}"
            ) from exc
        if estimates.ndim != 1 or estimates.shape != noise.shape:
            raise ValidationError(
                "estimates and noise_variance must be 1-D and the same "
                f"length, got {estimates.shape} and {noise.shape}"
            )
        return cls(estimates=estimates, noise_variance=noise)

    @classmethod
    def from_counts(cls, estimator: FrequencyEstimator, counts) -> "RoundEstimate":
        """Build from a round's aggregated counts and its estimator."""
        if not isinstance(estimator, FrequencyEstimator):
            raise ValidationError(
                f"estimator must be a FrequencyEstimator, got {estimator!r}"
            )
        estimates = estimator.estimate(counts)
        a, b = estimator.a, estimator.b
        noise = (
            estimator.ell**2
            * estimator.n
            * b
            * (1.0 - b)
            / (a - b) ** 2
        )
        return cls(estimates=np.asarray(estimates), noise_variance=noise)


def merge_round_estimates(rounds) -> tuple[np.ndarray, np.ndarray]:
    """Inverse-variance merge of several rounds' estimates.

    Parameters
    ----------
    rounds:
        Sequence of :class:`RoundEstimate` over the same item domain.

    Returns
    -------
    ``(merged_estimates, merged_variance)`` — the combined unbiased
    estimates and their (data-independent) variance
    ``1 / sum_k (1 / var_k)`` per item.
    """
    rounds = list(rounds)
    if not rounds:
        raise EstimationError("no rounds to merge")
    for r in rounds:
        if not isinstance(r, RoundEstimate):
            raise ValidationError(f"every round must be a RoundEstimate, got {r!r}")
    m = rounds[0].estimates.size
    for r in rounds:
        if r.estimates.size != m or r.noise_variance.size != m:
            raise ValidationError("all rounds must cover the same item domain")
        if np.any(r.noise_variance <= 0.0):
            raise EstimationError("round variances must be positive")

    weights = np.stack([1.0 / r.noise_variance for r in rounds])  # k x m
    estimates = np.stack([r.estimates for r in rounds])
    total_weight = weights.sum(axis=0)
    merged = (weights * estimates).sum(axis=0) / total_weight
    return merged, 1.0 / total_weight


def _as_share_words(words, m: int, name: str) -> np.ndarray:
    words = np.asarray(words)
    if words.ndim != 1 or words.shape[0] != m:
        raise ValidationError(
            f"{name} must be a 1-D length-{m} word vector, got shape {words.shape}"
        )
    if words.dtype != np.uint64:
        raise ValidationError(f"{name} must have dtype uint64, got {words.dtype}")
    return words


def combine_shares(blinded_words, share_words, *, n: int) -> np.ndarray:
    """Decode a split-trust tally: blinded sums minus every keeper's shares.

    Parameters
    ----------
    blinded_words:
        The blinded collector's accumulated uint64 word sums (length ``m``).
    share_words:
        Iterable of each share keeper's accumulated uint64 blinding word
        sums, all length ``m``.  May be empty, in which case the blinded
        words must already be plain counts (a degenerate zero-keeper
        deployment).
    n:
        Total number of reports the tally covers; every decoded count
        must land in ``[0, n]`` or the combination is refused.

    Returns
    -------
    Length-``m`` int64 count vector, bit-identical to the direct
    unblinded tally.
    """
    n = int(n)
    if n < 0:
        raise ValidationError(f"n must be non-negative, got {n}")
    blinded = np.asarray(blinded_words)
    if blinded.ndim != 1:
        raise ValidationError(
            f"blinded_words must be 1-D, got shape {blinded.shape}"
        )
    m = int(blinded.shape[0])
    blinded = _as_share_words(blinded, m, "blinded_words")
    shares = [
        _as_share_words(s, m, f"share_words[{i}]")
        for i, s in enumerate(share_words)
    ]

    # uint64 arithmetic wraps mod 2^64 by construction, which is exactly
    # the ring the producers blinded in; numpy emits overflow warnings we
    # deliberately silence because wraparound here is the algorithm.
    with np.errstate(over="ignore"):
        residual = blinded.copy()
        for s in shares:
            residual -= s

    if np.any(residual > np.uint64(n)):
        bad = int(np.argmax(residual > np.uint64(n)))
        raise EstimationError(
            "share combination does not reconcile: decoded word at index "
            f"{bad} is {int(residual[bad])}, outside [0, {n}] — a keeper "
            "share is missing, duplicated, or corrupt; refusing to decode"
        )
    return residual.astype(np.int64)
