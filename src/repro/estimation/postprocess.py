"""Post-processing of calibrated frequency estimates.

Unbiased LDP estimators routinely produce negative counts for rare items
and need not sum to the known total.  Post-processing repairs both
without touching the privacy guarantee (it operates only on released
data).  Two standard options are provided:

* :func:`clip_nonnegative` — truncate negatives at zero (introduces
  positive bias on rare items but never hurts top-k tasks);
* :func:`norm_sub` — the Norm-Sub projection [Wang et al. 2019]: shift
  all positive estimates down uniformly (zeroing negatives) until the
  total matches the target, the maximum-likelihood-flavoured repair.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError

__all__ = ["clip_nonnegative", "norm_sub", "normalize_to_total"]


def clip_nonnegative(estimates) -> np.ndarray:
    """Replace negative estimates with zero."""
    arr = np.asarray(estimates, dtype=float)
    if arr.ndim != 1:
        raise ValidationError(f"estimates must be 1-D, got shape {arr.shape}")
    return np.maximum(arr, 0.0)


def normalize_to_total(estimates, total: float) -> np.ndarray:
    """Rescale non-negative estimates so they sum to *total*.

    Requires a strictly positive current sum; an all-zero vector cannot
    be meaningfully rescaled and raises instead of silently returning
    garbage.
    """
    arr = clip_nonnegative(estimates)
    if total < 0:
        raise ValidationError(f"total must be >= 0, got {total}")
    current = arr.sum()
    if current <= 0.0:
        raise ValidationError("cannot normalize: all estimates are <= 0")
    return arr * (float(total) / current)


def norm_sub(estimates, total: float, *, max_iterations: int = 100) -> np.ndarray:
    """Norm-Sub: uniform shift + clipping so the result sums to *total*.

    Iteratively finds the shift ``delta`` such that
    ``sum(max(est - delta, 0)) = total``; all entries that fall below
    zero stay at zero.  Converges in at most ``m`` iterations because
    the active set only shrinks.
    """
    arr = np.asarray(estimates, dtype=float)
    if arr.ndim != 1:
        raise ValidationError(f"estimates must be 1-D, got shape {arr.shape}")
    if total < 0:
        raise ValidationError(f"total must be >= 0, got {total}")
    if total == 0:
        return np.zeros_like(arr)

    active = np.ones(arr.size, dtype=bool)
    for _ in range(max_iterations):
        n_active = int(active.sum())
        if n_active == 0:
            break
        delta = (arr[active].sum() - total) / n_active
        adjusted = np.where(active, arr - delta, 0.0)
        newly_negative = active & (adjusted < 0.0)
        if not np.any(newly_negative):
            return np.maximum(adjusted, 0.0)
        active &= ~newly_negative
    # Fallback: all mass concentrated on a few items; scale what is left.
    remaining = np.where(active, np.maximum(arr, 0.0), 0.0)
    if remaining.sum() <= 0.0:
        if arr.size == 0:
            raise ValidationError("cannot distribute a positive total over zero items")
        # Float cancellation can empty the active set (e.g. equal
        # estimates with a tiny positive total, where delta rounds to the
        # common value): place the total uniformly on the largest entries
        # instead of asking normalize_to_total to rescale zeros.
        winners = arr == arr.max()
        return np.where(winners, total / winners.sum(), 0.0)
    return normalize_to_total(remaining, total)
