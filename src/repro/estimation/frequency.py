"""The unbiased frequency estimator (Eq. 8 and its PS scaling).

Given per-bit aggregated counts ``c_i = sum_u y_u[i]`` from ``n`` users,
the calibrated estimate of the true count ``c*_i`` is

    ĉ_i = ell * (c_i − n b_i) / (a_i − b_i)

where ``ell = 1`` for single-item input (Theorem 3) and ``ell`` is the
padding length for IDUE-PS (Section VI-B, Fig 2).  The estimator is
unbiased whenever every user's sampled-item marginal is ``1/ell`` — i.e.
for single items always, and for item-sets when ``|x_u| <= ell``;
truncation (``|x_u| > ell``) introduces the downward bias the paper
discusses around Fig 5.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int, check_probability_vector
from ..exceptions import EstimationError, ValidationError

__all__ = ["FrequencyEstimator"]


class FrequencyEstimator:
    """Calibrates aggregated bit counts into unbiased item-count estimates.

    Parameters
    ----------
    a, b:
        Per-item Bernoulli parameters of the perturbation, restricted to
        the *real* item domain (dummy bits are ignored in aggregation —
        Fig 2's "Ignore the bits of dummy items").
    n:
        Number of reporting users.
    ell:
        Padding length; 1 for single-item pipelines.
    """

    def __init__(self, a, b, n: int, *, ell: int = 1) -> None:
        a_arr = check_probability_vector(a, "a", open_interval=True)
        b_arr = check_probability_vector(b, "b", open_interval=True)
        if a_arr.shape != b_arr.shape:
            raise ValidationError(
                f"a and b must have equal length, got {a_arr.size} and {b_arr.size}"
            )
        if np.any(a_arr == b_arr):
            bad = int(np.argmax(a_arr == b_arr))
            raise EstimationError(
                f"a[{bad}] == b[{bad}] == {a_arr[bad]:g}: estimator undefined "
                "(Theorem 3 requires a_i != b_i)"
            )
        self.a = a_arr.copy()
        self.b = b_arr.copy()
        self.a.flags.writeable = False
        self.b.flags.writeable = False
        self.n = check_positive_int(n, "n")
        self.ell = check_positive_int(ell, "ell")

    # ------------------------------------------------------------------
    @classmethod
    def for_mechanism(cls, mechanism, n: int) -> "FrequencyEstimator":
        """Build the matching estimator for a mechanism object.

        Accepts any unary mechanism (uses its ``a``/``b``) and IDUE-PS
        wrappers (slices the real-item bits and uses ``ell``).
        """
        ell = getattr(mechanism, "ell", 1)
        m_real = mechanism.m  # IDUEPS.m is the *real* domain by design
        a = np.asarray(mechanism.a[:m_real])
        b = np.asarray(mechanism.b[:m_real])
        return cls(a, b, n, ell=ell)

    @property
    def m(self) -> int:
        """Number of real items the estimator covers."""
        return int(self.a.size)

    # ------------------------------------------------------------------
    def estimate(self, counts) -> np.ndarray:
        """Calibrate aggregated bit counts into item-count estimates.

        Parameters
        ----------
        counts:
            Length >= ``m`` array of per-bit 1-counts; extra trailing
            entries (dummy bits from a PS pipeline) are ignored.
        """
        arr = np.asarray(counts, dtype=float)
        if arr.ndim != 1 or arr.size < self.m:
            raise EstimationError(
                f"counts must be 1-D with at least {self.m} entries, "
                f"got shape {arr.shape}"
            )
        if np.any(arr < 0) or np.any(arr[: self.m] > self.n):
            raise EstimationError("counts must lie in [0, n]")
        real = arr[: self.m]
        return self.ell * (real - self.n * self.b) / (self.a - self.b)

    def estimate_frequencies(self, counts) -> np.ndarray:
        """Item *frequencies* (estimates divided by ``n``)."""
        return self.estimate(counts) / self.n

    def expected_counts(self, true_counts) -> np.ndarray:
        """``E[c_i]`` for single-item input: ``c*_i a_i + (n − c*_i) b_i``.

        Used by tests to verify Theorem 3's unbiasedness algebraically.
        """
        c = np.asarray(true_counts, dtype=float)
        if c.shape != (self.m,):
            raise EstimationError(
                f"true_counts must have shape ({self.m},), got {c.shape}"
            )
        return c * self.a + (self.n - c) * self.b

    def __repr__(self) -> str:
        return f"FrequencyEstimator(m={self.m}, n={self.n}, ell={self.ell})"
