"""Data-driven padding-length selection for IDUE-PS.

Fig 5 shows the padding length ``ell`` driving a bias/variance trade-off
and the paper leaves "how to determine a good ell" as future work.  With
the exact PS error decomposition of :mod:`repro.estimation.variance`
the choice reduces to a one-dimensional search: for each candidate
``ell``, build the mechanism, evaluate the predicted total MSE
(variance + truncation bias²) on the dataset's set-size profile, and
keep the minimizer.

Using the *private* dataset itself to pick ``ell`` would leak; the
intended inputs are a public/auxiliary sample with a similar set-size
distribution, or a differentially private estimate of the size
histogram collected beforehand (as [7] suggests for its own ``ell``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_int_array, check_positive_int
from ..core.budgets import BudgetSpec
from ..core.notions import MIN, RFunction
from ..datasets.base import ItemsetDataset
from ..exceptions import ValidationError
from .variance import ps_estimator_mse

__all__ = ["PaddingChoice", "predict_total_mse", "select_padding_length"]


@dataclass(frozen=True)
class PaddingChoice:
    """Outcome of the padding-length search.

    Attributes
    ----------
    ell:
        The selected padding length.
    predicted_mse:
        Predicted total MSE at the selected length.
    curve:
        ``{candidate ell: predicted total MSE}`` for reporting.
    """

    ell: int
    predicted_mse: float
    curve: dict


def predict_total_mse(
    dataset: ItemsetDataset,
    ell: int,
    spec: BudgetSpec,
    *,
    model: str = "opt0",
    r: RFunction | str = MIN,
    target_n: int | None = None,
) -> float:
    """Predicted total MSE of IDUE-PS at padding length *ell*.

    Builds the optimized mechanism for (spec, ell) and evaluates the
    exact variance-plus-bias² expression on the dataset.

    When *target_n* differs from the calibration dataset's size the
    components are rescaled to the target population: the variance term
    is linear in n while the squared truncation bias is quadratic
    (counts scale linearly, so bias does too).  Getting this wrong
    shifts the selected ``ell`` — a small public sample underweights the
    bias relative to a large deployment.
    """
    from ..mechanisms.idue_ps import IDUEPS  # local import: avoids a cycle

    if not isinstance(dataset, ItemsetDataset):
        raise ValidationError(f"dataset must be an ItemsetDataset, got {dataset!r}")
    if dataset.m != spec.m:
        raise ValidationError(
            f"dataset domain {dataset.m} does not match spec domain {spec.m}"
        )
    ell = check_positive_int(ell, "ell")
    mechanism = IDUEPS.optimized(spec, ell, r=r, model=model)
    _, variance, bias = ps_estimator_mse(
        dataset, ell, mechanism.a[: spec.m], mechanism.b[: spec.m]
    )
    if target_n is None:
        scale = 1.0
    else:
        target_n = check_positive_int(target_n, "target_n")
        scale = target_n / dataset.n
    return float(np.sum(scale * variance + (scale * bias) ** 2))


def select_padding_length(
    dataset: ItemsetDataset,
    spec: BudgetSpec,
    *,
    candidates=None,
    model: str = "opt0",
    r: RFunction | str = MIN,
    target_n: int | None = None,
) -> PaddingChoice:
    """Pick the total-MSE-minimizing padding length.

    Parameters
    ----------
    dataset:
        A *public or privately pre-estimated* stand-in for the target
        population (see module docstring); only its set-size profile and
        item counts enter the prediction.
    spec:
        Budget specification of the item domain.
    candidates:
        Iterable of candidate lengths; defaults to ``1 .. ceil(90th
        percentile of set sizes)`` capped at 20, which brackets the Fig 5
        sweet spot for realistic size distributions.
    target_n:
        Size of the population the mechanism will actually collect from,
        when it differs from the calibration dataset's size (see
        :func:`predict_total_mse` for why this shifts the optimum).
    """
    if not isinstance(dataset, ItemsetDataset):
        raise ValidationError(f"dataset must be an ItemsetDataset, got {dataset!r}")
    if candidates is None:
        sizes = dataset.set_sizes
        if sizes.size == 0:
            raise ValidationError("dataset has no users")
        upper = int(min(20, max(1, np.ceil(np.percentile(sizes, 90)))))
        candidates = range(1, upper + 1)
    candidate_list = [int(c) for c in as_int_array(list(candidates), "candidates")]
    if not candidate_list:
        raise ValidationError("candidates must be non-empty")
    if any(c < 1 for c in candidate_list):
        raise ValidationError("candidate lengths must be >= 1")

    curve = {
        ell: predict_total_mse(
            dataset, ell, spec, model=model, r=r, target_n=target_n
        )
        for ell in sorted(set(candidate_list))
    }
    best = min(curve, key=lambda ell: (curve[ell], ell))
    return PaddingChoice(ell=best, predicted_mse=curve[best], curve=curve)
