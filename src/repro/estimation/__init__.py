"""Server-side frequency estimation (Sections V-C and VI-B).

* :class:`FrequencyEstimator` — the unbiased calibration
  ``ĉ_i = ell * (c_i − n b_i) / (a_i − b_i)`` covering both single-item
  (``ell = 1``) and Padding-and-Sampling (``ell > 1``) pipelines.
* :mod:`.variance` — closed-form estimator variance / MSE (Eq. 9) and
  its exact PS generalization used for the theoretical curves in Fig 3/5.
* :mod:`.aggregate` — streaming aggregation of bit-vector reports.
* :mod:`.postprocess` — non-negativity / normalization post-processing.
* :mod:`.topk` — heavy-hitter identification (the paper's future-work
  task) built on the estimators.
"""

from .aggregate import Aggregator, aggregate_reports
from .frequency import FrequencyEstimator
from .merge import RoundEstimate, merge_round_estimates
from .padding_selection import PaddingChoice, predict_total_mse, select_padding_length
from .postprocess import clip_nonnegative, norm_sub, normalize_to_total
from .topk import top_k_items, top_k_metrics
from .variance import (
    ps_estimator_mse,
    ps_expected_counts,
    ps_moment_sums,
    ue_estimator_variance,
    ue_total_mse,
)

__all__ = [
    "FrequencyEstimator",
    "Aggregator",
    "aggregate_reports",
    "ue_estimator_variance",
    "ue_total_mse",
    "ps_moment_sums",
    "ps_expected_counts",
    "ps_estimator_mse",
    "clip_nonnegative",
    "norm_sub",
    "normalize_to_total",
    "top_k_items",
    "top_k_metrics",
    "PaddingChoice",
    "predict_total_mse",
    "select_padding_length",
    "RoundEstimate",
    "merge_round_estimates",
]
