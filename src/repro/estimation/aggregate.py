"""Server-side aggregation of perturbed bit-vector reports.

The server's first step (Fig 2, "Summation") is summing each bit across
all users' reports.  :class:`Aggregator` supports streaming arrival;
:func:`aggregate_reports` is the one-shot matrix version.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int
from ..exceptions import ValidationError

__all__ = ["Aggregator", "aggregate_reports"]


def aggregate_reports(reports) -> np.ndarray:
    """Column-sum an ``n x m`` 0/1 report matrix into per-bit counts."""
    matrix = np.asarray(reports)
    if matrix.ndim != 2:
        raise ValidationError(f"reports must be 2-D, got shape {matrix.shape}")
    if matrix.size and not np.all((matrix == 0) | (matrix == 1)):
        raise ValidationError("reports must contain only 0/1 values")
    return matrix.sum(axis=0, dtype=np.int64)


class Aggregator:
    """Streaming per-bit count accumulator.

    Parameters
    ----------
    m:
        Report width (number of bits per user, including any dummy bits).
    """

    def __init__(self, m: int) -> None:
        self.m = check_positive_int(m, "m")
        self._counts = np.zeros(self.m, dtype=np.int64)
        self._n = 0

    @property
    def n(self) -> int:
        """Number of reports absorbed so far."""
        return self._n

    def counts(self) -> np.ndarray:
        """Copy of the per-bit counts accumulated so far."""
        return self._counts.copy()

    def add(self, report) -> None:
        """Absorb a single user's report (length-``m`` 0/1 vector)."""
        vector = np.asarray(report)
        if vector.shape != (self.m,):
            raise ValidationError(
                f"report must have shape ({self.m},), got {vector.shape}"
            )
        if not np.all((vector == 0) | (vector == 1)):
            raise ValidationError("report must contain only 0/1 values")
        self._counts += vector.astype(np.int64)
        self._n += 1

    def add_many(self, reports) -> None:
        """Absorb an ``k x m`` batch of reports."""
        matrix = np.asarray(reports)
        if matrix.ndim != 2 or matrix.shape[1] != self.m:
            raise ValidationError(
                f"reports must have shape (k, {self.m}), got {matrix.shape}"
            )
        if matrix.size and not np.all((matrix == 0) | (matrix == 1)):
            raise ValidationError("reports must contain only 0/1 values")
        self._counts += matrix.sum(axis=0, dtype=np.int64)
        self._n += matrix.shape[0]

    def merge(self, other: "Aggregator") -> None:
        """Merge another aggregator's state (distributed collection)."""
        if not isinstance(other, Aggregator) or other.m != self.m:
            raise ValidationError("can only merge aggregators with equal width")
        self._counts += other._counts
        self._n += other._n

    def __repr__(self) -> str:
        return f"Aggregator(m={self.m}, n={self._n})"
