"""Closed-form estimator variance and MSE (Eq. 9 and its PS extension).

Single-item input (Theorem 3's estimator):

    Var[ĉ_i] = n b_i (1 − b_i) / (a_i − b_i)^2
             + c*_i (1 − a_i − b_i) / (a_i − b_i)

For Padding-and-Sampling the report of user ``u`` sets bit ``i`` with
probability ``p_u = b_i + pi_u (a_i − b_i)`` where
``pi_u = 1/max(|x_u|, ell)`` if ``i ∈ x_u`` else ``pi_u`` covers only the
dummy branch (0 for real bits of non-owners).  Aggregated counts are a
sum of independent Bernoullis, so with the per-item moment sums

    s_i = sum_u pi_ui        q_i = sum_u pi_ui^2

the count variance is exactly

    Var[c_i] = sum_u p_u (1 − p_u)
             = n b(1−b) + (a−b)(1−2b) s_i − (a−b)^2 q_i

and the estimator's MSE adds the squared truncation bias
``(ell · s_i − c*_i)^2``.  These exact expressions generate the
"theoretical" curves for Figures 3 and 5.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int, check_probability_vector
from ..datasets.base import ItemsetDataset
from ..exceptions import ValidationError

__all__ = [
    "ue_estimator_variance",
    "ue_total_mse",
    "ps_moment_sums",
    "ps_expected_counts",
    "ps_estimator_mse",
]


def _check_ab(a, b, m: int | None = None) -> tuple[np.ndarray, np.ndarray]:
    a_arr = check_probability_vector(np.atleast_1d(a), "a", open_interval=True)
    b_arr = check_probability_vector(np.atleast_1d(b), "b", open_interval=True)
    if a_arr.shape != b_arr.shape:
        raise ValidationError("a and b must have equal length")
    if m is not None and a_arr.size not in (1, m):
        raise ValidationError(f"a/b must have length 1 or {m}, got {a_arr.size}")
    if np.any(a_arr <= b_arr):
        raise ValidationError("require a_i > b_i for all items")
    return a_arr, b_arr


def ue_estimator_variance(n: int, a, b, true_counts) -> np.ndarray:
    """Per-item Var[ĉ_i] for single-item unary encoding (Eq. 9)."""
    n = check_positive_int(n, "n")
    counts = np.asarray(true_counts, dtype=float)
    a_arr, b_arr = _check_ab(a, b, counts.size)
    if np.any(counts < 0) or np.any(counts > n):
        raise ValidationError("true_counts must lie in [0, n]")
    diff = a_arr - b_arr
    return n * b_arr * (1.0 - b_arr) / diff**2 + counts * (1.0 - a_arr - b_arr) / diff


def ue_total_mse(n: int, a, b, true_counts) -> float:
    """Total MSE = sum of per-item variances (the estimator is unbiased)."""
    return float(np.sum(ue_estimator_variance(n, a, b, true_counts)))


def ps_moment_sums(dataset: ItemsetDataset, ell: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-item sums of the sampling marginals and their squares.

    Returns ``(s, q)`` with ``s_i = sum_u pi_ui`` and
    ``q_i = sum_u pi_ui^2`` where ``pi_ui = 1/max(|x_u|, ell)`` for each
    item ``i`` in user ``u``'s set.  Both are computed in one vectorized
    pass over the flat CSR arrays.
    """
    if not isinstance(dataset, ItemsetDataset):
        raise ValidationError(f"dataset must be an ItemsetDataset, got {dataset!r}")
    ell = check_positive_int(ell, "ell")
    sizes = dataset.set_sizes
    denom = np.maximum(sizes, ell).astype(float)
    per_user_pi = 1.0 / denom  # length n
    pi_flat = np.repeat(per_user_pi, sizes)  # aligned with flat_items
    s = np.bincount(dataset.flat_items, weights=pi_flat, minlength=dataset.m)
    q = np.bincount(dataset.flat_items, weights=pi_flat**2, minlength=dataset.m)
    return s, q


def ps_expected_counts(dataset: ItemsetDataset, ell: int) -> np.ndarray:
    """``E[ĉ_i] = ell * s_i`` — the PS estimator's expectation.

    Equals ``c*_i`` exactly when every user's set has ``|x_u| <= ell``;
    smaller otherwise (truncation bias).
    """
    s, _ = ps_moment_sums(dataset, ell)
    return ell * s


def ps_estimator_mse(
    dataset: ItemsetDataset, ell: int, a, b
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact per-item (MSE, variance, bias) of the PS estimator.

    Parameters
    ----------
    dataset:
        The item-set dataset (provides set sizes and true counts).
    ell:
        Padding length.
    a, b:
        Perturbation parameters over the *real* item domain (scalar or
        length-``m``).

    Returns
    -------
    ``(mse, variance, bias)`` — three length-``m`` arrays with
    ``mse = variance + bias**2``.
    """
    ell = check_positive_int(ell, "ell")
    a_arr, b_arr = _check_ab(a, b, dataset.m)
    s, q = ps_moment_sums(dataset, ell)
    n = dataset.n
    diff = a_arr - b_arr
    count_variance = (
        n * b_arr * (1.0 - b_arr) + diff * (1.0 - 2.0 * b_arr) * s - diff**2 * q
    )
    variance = ell**2 * count_variance / diff**2
    bias = ell * s - dataset.true_counts().astype(float)
    return variance + bias**2, variance, bias
