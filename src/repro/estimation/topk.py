"""Heavy-hitter (top-k) identification on calibrated estimates.

The paper lists heavy-hitter estimation as future work (Section VIII);
this module provides the natural first step — rank the calibrated
frequency estimates and take the k largest — plus the standard quality
metrics used in the LDP heavy-hitter literature, so the Fig 5 "top 5
frequent items" evaluation and the extension benchmarks share one
implementation.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int
from ..exceptions import ValidationError

__all__ = ["top_k_items", "top_k_metrics"]


def top_k_items(estimates, k: int) -> np.ndarray:
    """Indices of the *k* largest estimates, in descending order.

    Ties are broken by item id (ascending) for determinism.
    """
    arr = np.asarray(estimates, dtype=float)
    if arr.ndim != 1:
        raise ValidationError(f"estimates must be 1-D, got shape {arr.shape}")
    k = check_positive_int(k, "k")
    if k > arr.size:
        raise ValidationError(f"k={k} exceeds the number of items {arr.size}")
    # Sort by (-estimate, item id): stable deterministic ranking.
    order = np.lexsort((np.arange(arr.size), -arr))
    return order[:k].astype(np.int64)


def top_k_metrics(estimates, true_counts, k: int) -> dict:
    """Quality of the estimated top-k against the true top-k.

    Returns a dict with:

    * ``precision`` — |estimated ∩ true| / k (equals recall here);
    * ``ncr`` — Normalized Cumulative Rank: rank-weighted credit where
      the true i-th item is worth ``k − i`` points, normalized so a
      perfect ranking scores 1 (the standard heavy-hitter metric);
    * ``true_top``, ``estimated_top`` — the two id arrays for reporting.
    """
    true_arr = np.asarray(true_counts, dtype=float)
    estimated = top_k_items(estimates, k)
    truth = top_k_items(true_arr, k)

    true_rank_credit = {int(item): k - rank for rank, item in enumerate(truth)}
    credit = sum(true_rank_credit.get(int(item), 0) for item in estimated)
    perfect = k * (k + 1) // 2
    overlap = len(set(estimated.tolist()) & set(truth.tolist()))
    return {
        "precision": overlap / k,
        "ncr": credit / perfect,
        "true_top": truth,
        "estimated_top": estimated,
    }
