"""Exact per-user simulation (the protocol as devices would run it).

These functions materialize the full ``n x m`` report matrix, so they
are meant for tests, small studies, and the empirical audits — not for
paper-scale benchmarks (use :mod:`repro.simulation.fast` there; the two
paths produce identically distributed aggregates).
"""

from __future__ import annotations

import numpy as np

from .._validation import check_rng
from ..datasets.base import ItemsetDataset
from ..exceptions import ValidationError
from ..mechanisms.base import UnaryMechanism
from ..mechanisms.idue_ps import IDUEPS

__all__ = ["simulate_single_item_reports", "simulate_itemset_reports"]


def simulate_single_item_reports(
    mechanism: UnaryMechanism, items, rng=None
) -> np.ndarray:
    """Perturb every user's single-item input; returns ``n x m`` reports."""
    if not isinstance(mechanism, UnaryMechanism):
        raise ValidationError(
            f"mechanism must be a UnaryMechanism, got {type(mechanism).__name__}"
        )
    rng = check_rng(rng)
    return mechanism.perturb_many(items, rng)


def simulate_itemset_reports(
    mechanism: IDUEPS, dataset: ItemsetDataset, rng=None
) -> np.ndarray:
    """Run Algorithm 3 for every user; returns ``n x (m + ell)`` reports."""
    if not isinstance(mechanism, IDUEPS):
        raise ValidationError(
            f"mechanism must be an IDUEPS, got {type(mechanism).__name__}"
        )
    if not isinstance(dataset, ItemsetDataset):
        raise ValidationError(f"dataset must be an ItemsetDataset, got {dataset!r}")
    if dataset.m != mechanism.m:
        raise ValidationError(
            f"dataset domain {dataset.m} does not match mechanism domain "
            f"{mechanism.m}"
        )
    rng = check_rng(rng)
    return mechanism.perturb_many(dataset.flat_items, dataset.offsets, rng)
