"""Fast aggregate-count simulation (exact distribution, O(n + m) work).

For unary-encoding mechanisms the per-bit reports are independent
Bernoullis, so the aggregated count of bit ``i`` is *exactly*

    c_i ~ Binomial(s_i, a_i) + Binomial(n − s_i, b_i)

where ``s_i`` is the number of users whose (possibly sampled) encoded
input has bit ``i`` set.  Simulating the binomials directly is therefore
not an approximation — it draws from the same distribution as the exact
per-user path, while avoiding the ``O(n m)`` report matrix.  This is what
makes the paper-scale figures (Kosarak's ``m = 41,270``, a million users)
tractable on a laptop.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_int_array, check_positive_int, check_rng
from ..datasets.base import ItemsetDataset
from ..exceptions import ValidationError
from ..mechanisms.base import UnaryMechanism
from ..mechanisms.idue_ps import IDUEPS

__all__ = [
    "simulate_counts_from_true",
    "simulate_single_item_counts",
    "simulate_itemset_counts",
]


def simulate_counts_from_true(true_ones, n: int, a, b, rng=None) -> np.ndarray:
    """Draw per-bit aggregated counts given exact one-bit multiplicities.

    Parameters
    ----------
    true_ones:
        Length-``m`` integer array ``s_i`` — number of users whose encoded
        vector has bit ``i`` set (for single-item input this is the true
        item histogram; for PS it is the sampled-item histogram).
    n:
        Total number of users.
    a, b:
        Per-bit Bernoulli parameters (length ``m`` or scalars).
    """
    n = check_positive_int(n, "n")
    s = as_int_array(true_ones, "true_ones")
    if np.any(s < 0) or np.any(s > n):
        raise ValidationError("true_ones must lie in [0, n]")
    a_arr = np.broadcast_to(np.asarray(a, dtype=float), s.shape)
    b_arr = np.broadcast_to(np.asarray(b, dtype=float), s.shape)
    rng = check_rng(rng)
    return rng.binomial(s, a_arr) + rng.binomial(n - s, b_arr)


def simulate_single_item_counts(
    mechanism: UnaryMechanism, true_counts, n: int, rng=None
) -> np.ndarray:
    """Aggregated counts for a single-item dataset given its histogram."""
    if not isinstance(mechanism, UnaryMechanism):
        raise ValidationError(
            f"mechanism must be a UnaryMechanism, got {type(mechanism).__name__}"
        )
    counts = as_int_array(true_counts, "true_counts")
    if counts.size != mechanism.m:
        raise ValidationError(
            f"true_counts must have length {mechanism.m}, got {counts.size}"
        )
    if int(counts.sum()) != int(n):
        raise ValidationError(
            f"true_counts sum to {int(counts.sum())} but n={n}; every user "
            "holds exactly one item in the single-item setting"
        )
    return simulate_counts_from_true(counts, n, mechanism.a, mechanism.b, rng)


def simulate_itemset_counts(
    mechanism: IDUEPS, dataset: ItemsetDataset, rng=None
) -> np.ndarray:
    """Aggregated counts for an item-set dataset under IDUE-PS.

    Runs the (vectorized) Padding-and-Sampling stage per user — that part
    is genuinely per-user state — then draws the perturbation aggregate
    from its binomial distribution over the extended domain.
    """
    if not isinstance(mechanism, IDUEPS):
        raise ValidationError(
            f"mechanism must be an IDUEPS, got {type(mechanism).__name__}"
        )
    if not isinstance(dataset, ItemsetDataset):
        raise ValidationError(f"dataset must be an ItemsetDataset, got {dataset!r}")
    if dataset.m != mechanism.m:
        raise ValidationError(
            f"dataset domain {dataset.m} does not match mechanism domain "
            f"{mechanism.m}"
        )
    rng = check_rng(rng)
    sampled = mechanism.sampler.sample_many(
        dataset.flat_items, dataset.offsets, rng
    )
    sampled_hist = np.bincount(sampled, minlength=mechanism.extended_m)
    return simulate_counts_from_true(
        sampled_hist, dataset.n, mechanism.a, mechanism.b, rng
    )
