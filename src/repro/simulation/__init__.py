"""Simulation engines for running mechanisms over whole datasets.

Two statistically equivalent paths:

* :mod:`.exact` — perturb every user's report bit-by-bit, exactly as the
  protocol executes on devices.  ``O(n * m)`` memory; used by tests and
  the empirical privacy audits.
* :mod:`.fast` — draw the aggregated per-bit counts directly from their
  exact sampling distribution ``c_i ~ Bin(s_i, a_i) + Bin(n − s_i, b_i)``
  (bits are independent across users, so the aggregate is binomial).
  ``O(n + m)`` work; used by paper-scale benchmarks.
"""

from .exact import simulate_itemset_reports, simulate_single_item_reports
from .fast import (
    simulate_itemset_counts,
    simulate_single_item_counts,
    simulate_counts_from_true,
)

__all__ = [
    "simulate_single_item_reports",
    "simulate_itemset_reports",
    "simulate_counts_from_true",
    "simulate_single_item_counts",
    "simulate_itemset_counts",
]
