"""Internal parameter-validation helpers shared across the library.

These functions raise :class:`repro.exceptions.ValidationError` with
messages that name the offending argument, so construction-time errors are
self-explanatory.  They intentionally return the validated (possibly
converted) value so call sites can write ``self.n = check_positive_int(n,
"n")`` in one line.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from .exceptions import ValidationError

__all__ = [
    "check_positive_int",
    "check_non_negative_int",
    "check_positive_float",
    "check_probability",
    "check_open_probability",
    "check_probability_vector",
    "check_budget",
    "check_budget_vector",
    "check_rng",
    "as_int_array",
]


def check_positive_int(value, name: str) -> int:
    """Validate that *value* is an integer >= 1 and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < 1:
        raise ValidationError(f"{name} must be >= 1, got {value}")
    return value


def check_non_negative_int(value, name: str) -> int:
    """Validate that *value* is an integer >= 0 and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value}")
    return value


def check_positive_float(value, name: str) -> float:
    """Validate that *value* is a finite float > 0 and return it."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a number, got {value!r}") from exc
    if not np.isfinite(value) or value <= 0.0:
        raise ValidationError(f"{name} must be a finite positive number, got {value}")
    return value


def check_probability(value, name: str) -> float:
    """Validate that *value* lies in the closed interval [0, 1]."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a number, got {value!r}") from exc
    if not np.isfinite(value) or value < 0.0 or value > 1.0:
        raise ValidationError(f"{name} must be a probability in [0, 1], got {value}")
    return value


def check_open_probability(value, name: str) -> float:
    """Validate that *value* lies strictly inside (0, 1)."""
    value = check_probability(value, name)
    if value == 0.0 or value == 1.0:
        raise ValidationError(f"{name} must lie strictly inside (0, 1), got {value}")
    return value


def check_probability_vector(values, name: str, *, open_interval: bool = False) -> np.ndarray:
    """Validate a 1-D array of probabilities and return it as ``float64``."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be a 1-D sequence, got shape {arr.shape}")
    if arr.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains non-finite entries")
    low_ok = np.all(arr > 0.0) if open_interval else np.all(arr >= 0.0)
    high_ok = np.all(arr < 1.0) if open_interval else np.all(arr <= 1.0)
    if not (low_ok and high_ok):
        interval = "(0, 1)" if open_interval else "[0, 1]"
        raise ValidationError(f"all entries of {name} must lie in {interval}")
    return arr


def check_budget(value, name: str = "epsilon") -> float:
    """Validate a privacy budget: a finite float > 0."""
    return check_positive_float(value, name)


def check_budget_vector(values, name: str = "budgets") -> np.ndarray:
    """Validate a non-empty 1-D array of positive finite budgets."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be a 1-D sequence, got shape {arr.shape}")
    if arr.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)) or not np.all(arr > 0.0):
        raise ValidationError(f"all entries of {name} must be finite and positive")
    return arr


def check_rng(rng) -> np.random.Generator:
    """Coerce *rng* (Generator | int seed | None) to a ``numpy`` Generator."""
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)) and not isinstance(rng, bool):
        return np.random.default_rng(int(rng))
    raise ValidationError(
        f"rng must be a numpy Generator, an integer seed, or None, got {rng!r}"
    )


def as_int_array(values: Iterable | Sequence, name: str) -> np.ndarray:
    """Convert *values* to a 1-D ``int64`` array, validating integrality."""
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be a 1-D sequence, got shape {arr.shape}")
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        as_float = np.asarray(arr, dtype=float)
        if not np.all(np.isfinite(as_float)) or not np.all(as_float == np.round(as_float)):
            raise ValidationError(f"{name} must contain integers")
        arr = as_float.astype(np.int64)
    return arr.astype(np.int64, copy=False)
