"""Information-theoretic channel measures.

Section IV-B distinguishes the paper's per-outcome prior-posterior
leakage (Eq. 5) from *mutual information*, which averages leakage over
all inputs and outputs (reference [23]).  This module provides both the
mutual information of a mechanism channel and the per-input KL
divergences it averages, so the two viewpoints can be compared
numerically (see ``tests/core/test_information.py``).
"""

from __future__ import annotations

import numpy as np

from .._validation import check_probability_vector
from ..exceptions import ValidationError

__all__ = ["channel_mutual_information", "per_input_kl_divergence"]


def _validate_channel(channel, prior) -> tuple[np.ndarray, np.ndarray]:
    matrix = np.asarray(channel, dtype=float)
    if matrix.ndim != 2:
        raise ValidationError(f"channel must be 2-D, got shape {matrix.shape}")
    prior_arr = check_probability_vector(prior, "prior")
    if prior_arr.size != matrix.shape[0]:
        raise ValidationError(
            f"prior length {prior_arr.size} != channel rows {matrix.shape[0]}"
        )
    if not np.isclose(prior_arr.sum(), 1.0, atol=1e-9):
        raise ValidationError(f"prior must sum to 1, got {prior_arr.sum():g}")
    if np.any(matrix < 0.0):
        raise ValidationError("channel probabilities must be non-negative")
    if not np.allclose(matrix.sum(axis=1), 1.0, atol=1e-8):
        raise ValidationError("channel rows must each sum to 1")
    return matrix, prior_arr


def per_input_kl_divergence(channel, prior) -> np.ndarray:
    """``D(P(y|x) || P(y))`` for each input x, in nats.

    The per-input information leakage whose prior-weighted average is
    the mutual information.  Zero for inputs whose conditional output
    law equals the marginal (perfect privacy for that input).
    """
    matrix, prior_arr = _validate_channel(channel, prior)
    marginal = prior_arr @ matrix
    divergences = np.zeros(matrix.shape[0])
    for x in range(matrix.shape[0]):
        row = matrix[x]
        support = row > 0.0
        if np.any(marginal[support] <= 0.0):
            raise ValidationError(
                f"input {x} reaches an output with zero marginal probability"
            )
        divergences[x] = float(
            np.sum(row[support] * np.log(row[support] / marginal[support]))
        )
    return divergences


def channel_mutual_information(channel, prior) -> float:
    """``I(X; Y)`` of the mechanism channel under *prior*, in nats.

    Equals the prior-weighted average of :func:`per_input_kl_divergence`
    and is upper-bounded by the worst-case Eq. 5 leakage exponent: under
    eps-LDP, ``I(X; Y) <= eps`` (each log-ratio term is within
    ``[-eps, eps]``) — a relation the tests verify on real channels.
    """
    matrix, prior_arr = _validate_channel(channel, prior)
    divergences = per_input_kl_divergence(matrix, prior_arr)
    return float(np.sum(prior_arr * divergences))
