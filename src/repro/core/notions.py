"""Privacy notions: LDP and Input-Discriminative LDP (Definitions 1-3).

The paper defines ID-LDP with a system-chosen function ``r`` mapping the
budgets of a pair of inputs to the pair's indistinguishability budget
(Definition 2).  :class:`RFunction` makes ``r`` a first-class value; the
``MIN`` instance yields MinID-LDP (Definition 3) and ``AVG`` yields the
AvgID-LDP variant sketched in Section IV-C.

The notion objects know how to produce the pairwise budget matrix that the
optimizers consume, and implement the Lemma 1 conversions between
MinID-LDP and plain LDP.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from .._validation import check_budget, check_budget_vector
from ..exceptions import ValidationError
from .budgets import BudgetSpec
from .policy import PolicyGraph

__all__ = [
    "RFunction",
    "MIN",
    "AVG",
    "MAX",
    "LDP",
    "IDLDP",
    "ldp_budget_implied_by_minid",
    "minid_budgets_implied_by_ldp",
]


@dataclass(frozen=True)
class RFunction:
    """The pair-budget function ``r(eps_x, eps_x')`` of Definition 2.

    Must be symmetric and positive on positive inputs; :meth:`__call__`
    enforces neither (for speed) but :meth:`pairwise_matrix` asserts
    symmetry as a cheap sanity check in debug builds.

    Attributes
    ----------
    name:
        Short identifier used in reports (``"min"``, ``"avg"``, ...).
    fn:
        Vectorized callable of two budget arrays.
    """

    name: str
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray]

    def __call__(self, eps_x, eps_y) -> np.ndarray | float:
        """Evaluate ``r`` element-wise on budgets (scalars or arrays)."""
        result = self.fn(np.asarray(eps_x, dtype=float), np.asarray(eps_y, dtype=float))
        if np.ndim(result) == 0:
            return float(result)
        return result

    def pairwise_matrix(self, epsilons) -> np.ndarray:
        """The ``t x t`` matrix ``R[i, j] = r(eps_i, eps_j)``.

        This is exactly the right-hand side of the privacy constraints (7)
        at level granularity; the optimizers in :mod:`repro.optim` take it
        as input.
        """
        eps = check_budget_vector(epsilons, "epsilons")
        matrix = np.asarray(self.fn(eps[:, None], eps[None, :]), dtype=float)
        if matrix.shape != (eps.size, eps.size):
            raise ValidationError(
                f"r-function {self.name!r} returned shape {matrix.shape}, "
                f"expected ({eps.size}, {eps.size})"
            )
        if not np.allclose(matrix, matrix.T):
            raise ValidationError(f"r-function {self.name!r} is not symmetric")
        if np.any(matrix <= 0.0) or not np.all(np.isfinite(matrix)):
            raise ValidationError(
                f"r-function {self.name!r} produced non-positive or non-finite budgets"
            )
        return matrix

    def __repr__(self) -> str:
        return f"RFunction({self.name!r})"


#: MinID-LDP (Definition 3): the pair budget is the *smaller* of the two.
MIN = RFunction("min", np.minimum)

#: AvgID-LDP (Section IV-C): the pair budget is the mean of the two.
AVG = RFunction("avg", lambda x, y: (x + y) / 2.0)

#: MaxID-LDP: the *looser* of the two budgets; included for completeness
#: and ablation (it is strictly weaker protection than MinID-LDP).
MAX = RFunction("max", np.maximum)

_BUILTIN_R = {"min": MIN, "avg": AVG, "max": MAX}


def resolve_r_function(r: "RFunction | str") -> RFunction:
    """Accept either an :class:`RFunction` or one of ``"min"|"avg"|"max"``."""
    if isinstance(r, RFunction):
        return r
    if isinstance(r, str):
        try:
            return _BUILTIN_R[r.lower()]
        except KeyError:
            raise ValidationError(
                f"unknown r-function {r!r}; expected one of {sorted(_BUILTIN_R)}"
            ) from None
    raise ValidationError(f"r must be an RFunction or a string, got {r!r}")


class LDP:
    """Plain ``eps``-LDP (Definition 1), for comparison baselines.

    Exposes the same ``pair_budget`` interface as :class:`IDLDP` so the
    audit code can treat both uniformly.
    """

    def __init__(self, epsilon: float) -> None:
        self.epsilon = check_budget(epsilon)

    def pair_budget(self, x: int, y: int) -> float:
        """Budget bounding the (x, y) pair: always ``epsilon``."""
        del x, y  # every pair gets the same bound under LDP
        return self.epsilon

    def pair_bound(self, x: int, y: int) -> float:
        """Multiplicative bound ``e^eps`` on the probability ratio."""
        return float(np.exp(self.pair_budget(x, y)))

    def __repr__(self) -> str:
        return f"LDP(epsilon={self.epsilon:g})"


class IDLDP:
    """``E``-ID-LDP over a :class:`BudgetSpec` (Definition 2).

    Parameters
    ----------
    spec:
        The budget specification ``E = {eps_x}``.
    r:
        Pair-budget function; ``MIN`` (default) yields MinID-LDP.
    policy:
        Optional incomplete policy graph over *levels* (Section IV-C
        "Additional Gain from Incomplete Privacy Policy Graph").  Pairs of
        levels without an edge carry no constraint at all; within-level
        pairs are always constrained.  ``None`` means the complete graph,
        as in the paper's main development.
    """

    def __init__(
        self,
        spec: BudgetSpec,
        r: RFunction | str = MIN,
        *,
        policy: PolicyGraph | None = None,
    ) -> None:
        if not isinstance(spec, BudgetSpec):
            raise ValidationError(f"spec must be a BudgetSpec, got {spec!r}")
        self.spec = spec
        self.r = resolve_r_function(r)
        if policy is not None and policy.n_nodes != spec.t:
            raise ValidationError(
                f"policy graph has {policy.n_nodes} nodes but spec has {spec.t} levels"
            )
        self.policy = policy

    # ------------------------------------------------------------------
    @property
    def is_min_id(self) -> bool:
        """True when this is the MinID-LDP instantiation."""
        return self.r.name == "min"

    def level_budget_matrix(self) -> np.ndarray:
        """``t x t`` matrix of pair budgets at level granularity.

        Entries for level pairs excluded by the policy graph are ``+inf``
        (no constraint).  The diagonal always carries the level's own
        budget: two distinct items of the same level must stay
        indistinguishable at that level's budget.
        """
        matrix = self.r.pairwise_matrix(self.spec.level_epsilons)
        if self.policy is not None:
            mask = ~self.policy.adjacency()
            np.fill_diagonal(mask, False)  # within-level pairs always constrained
            matrix = matrix.copy()
            matrix[mask] = np.inf
        return matrix

    def pair_budget(self, x: int, y: int) -> float:
        """Budget bounding the pair of *items* ``(x, y)``.

        Returns ``+inf`` when the policy graph carries no edge between the
        two items' levels (and the levels differ).
        """
        lx, ly = self.spec.level_of(x), self.spec.level_of(y)
        if self.policy is not None and lx != ly and not self.policy.has_edge(lx, ly):
            return float("inf")
        return float(
            self.r(self.spec.level_epsilons[lx], self.spec.level_epsilons[ly])
        )

    def pair_bound(self, x: int, y: int) -> float:
        """Multiplicative bound ``e^{r(eps_x, eps_y)}`` for the item pair."""
        return float(np.exp(self.pair_budget(x, y)))

    def ldp_equivalent(self) -> float:
        """The LDP budget implied by this notion (Lemma 1).

        Only meaningful for MinID-LDP on a complete policy graph; for
        other configurations a conservative ``max`` over all finite pair
        budgets plus the transitive ``2 min{E}`` bound is returned.
        """
        return ldp_budget_implied_by_minid(self.spec.level_epsilons)

    def __repr__(self) -> str:
        policy = "complete" if self.policy is None else repr(self.policy)
        return f"IDLDP(r={self.r.name!r}, spec={self.spec!r}, policy={policy})"


def ldp_budget_implied_by_minid(epsilons) -> float:
    """Lemma 1 (forward direction): ``E``-MinID-LDP implies ``eps``-LDP.

    ``eps = min{ max{E}, 2 min{E} }``: the chain through the most
    sensitive input ``x*`` bounds any pair by ``2 min{E}`` while the
    direct pair bound never exceeds ``max{E}``.
    """
    eps = check_budget_vector(epsilons, "epsilons")
    return float(min(eps.max(), 2.0 * eps.min()))


def minid_budgets_implied_by_ldp(epsilon: float, epsilons) -> bool:
    """Lemma 1 (reverse direction): does ``eps``-LDP imply ``E``-MinID-LDP?

    True iff ``eps <= min{E}``: a mechanism bounding every pair at
    ``e^eps`` automatically bounds every pair at the (larger or equal)
    ``e^{min(eps_x, eps_x')}``.
    """
    epsilon = check_budget(epsilon)
    eps = check_budget_vector(epsilons, "epsilons")
    return bool(epsilon <= eps.min() + 1e-12)
