"""Prior-posterior privacy leakage bounds (Table I and Eq. 5).

The paper compares notions through the lens of Local Information Privacy:
the ratio ``Pr(x) / Pr(x|y) = Pr(y) / Pr(y|x)`` measures how much an
adversary observing output ``y`` learns about input ``x``.  Table I lists
closed-form lower/upper bounds of that ratio for LDP, PLDP,
geo-indistinguishability, and MinID-LDP; this module implements each row
plus an *empirical* evaluator that computes the exact extreme ratios for
a concrete mechanism channel, used by the audits and the Table I bench.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_budget, check_budget_vector, check_probability_vector
from ..exceptions import ValidationError

__all__ = [
    "ldp_leakage_bounds",
    "pldp_leakage_bounds",
    "geo_indistinguishability_leakage_bounds",
    "minid_leakage_bounds",
    "empirical_leakage_bounds",
]


def ldp_leakage_bounds(epsilon: float) -> tuple[float, float]:
    """Table I, LDP row: ``(e^-eps, e^eps)``.

    Under eps-LDP every likelihood ratio is within ``e^{+/-eps}``, so the
    prior-posterior ratio (a prior-weighted mean of likelihood ratios
    against ``Pr(y|x)``) obeys the same bounds for any prior.
    """
    epsilon = check_budget(epsilon)
    return float(np.exp(-epsilon)), float(np.exp(epsilon))


def pldp_leakage_bounds(epsilon_u: float) -> tuple[float, float]:
    """Table I, PLDP row: identical in form to LDP but with the *user's*
    personal budget ``eps_u``."""
    epsilon_u = check_budget(epsilon_u, "epsilon_u")
    return float(np.exp(-epsilon_u)), float(np.exp(epsilon_u))


def geo_indistinguishability_leakage_bounds(
    epsilon: float, prior, distances
) -> tuple[float, float]:
    """Table I, Geo-Ind row for a fixed input ``x``.

    Parameters
    ----------
    epsilon:
        The geo-indistinguishability scale parameter.
    prior:
        Prior probabilities ``Pr(x')`` over the domain (length ``m``).
    distances:
        Distances ``d(x, x')`` from the fixed input to every ``x'``
        (length ``m``; the entry for ``x`` itself should be 0).

    Returns
    -------
    ``(sum_x' Pr(x') e^{-eps d(x,x')}, sum_x' Pr(x') e^{eps d(x,x')})``.
    """
    epsilon = check_budget(epsilon)
    prior_arr = check_probability_vector(prior, "prior")
    dist = np.asarray(distances, dtype=float)
    if dist.shape != prior_arr.shape:
        raise ValidationError(
            f"distances shape {dist.shape} does not match prior shape {prior_arr.shape}"
        )
    if np.any(dist < 0.0) or not np.all(np.isfinite(dist)):
        raise ValidationError("distances must be finite and non-negative")
    if not np.isclose(prior_arr.sum(), 1.0, atol=1e-9):
        raise ValidationError(f"prior must sum to 1, got {prior_arr.sum():g}")
    lower = float(np.sum(prior_arr * np.exp(-epsilon * dist)))
    upper = float(np.sum(prior_arr * np.exp(epsilon * dist)))
    return lower, upper


def minid_leakage_bounds(epsilon_x: float, epsilons) -> tuple[float, float]:
    """Table I, MinID-LDP row for an input with budget ``eps_x``.

    The effective exponent is ``min{eps_x, 2 min{E}}``: the direct pair
    constraint never exceeds ``eps_x`` and the Lemma 1 transitive bound
    caps everything at ``2 min{E}``.
    """
    epsilon_x = check_budget(epsilon_x, "epsilon_x")
    eps = check_budget_vector(epsilons, "epsilons")
    if not np.any(np.isclose(eps, epsilon_x)):
        raise ValidationError(
            f"epsilon_x={epsilon_x:g} is not one of the budgets in E"
        )
    exponent = min(epsilon_x, 2.0 * float(eps.min()))
    return float(np.exp(-exponent)), float(np.exp(exponent))


def empirical_leakage_bounds(
    channel: np.ndarray, prior, x: int
) -> tuple[float, float]:
    """Exact extreme prior-posterior ratios for a concrete mechanism.

    Parameters
    ----------
    channel:
        Row-stochastic matrix ``channel[x, y] = Pr(y | x)`` over a finite
        output alphabet.
    prior:
        Prior over inputs (length = number of rows).
    x:
        The input whose leakage is evaluated.

    Returns
    -------
    ``(min_y Pr(x)/Pr(x|y), max_y Pr(x)/Pr(x|y))`` taken over outputs
    ``y`` with ``Pr(y|x) > 0``.  These are the quantities that Table I
    bounds; the audits check ``empirical within theoretical``.
    """
    matrix = np.asarray(channel, dtype=float)
    if matrix.ndim != 2:
        raise ValidationError(f"channel must be 2-D, got shape {matrix.shape}")
    prior_arr = check_probability_vector(prior, "prior")
    if prior_arr.size != matrix.shape[0]:
        raise ValidationError(
            f"prior length {prior_arr.size} does not match channel rows "
            f"{matrix.shape[0]}"
        )
    if not np.isclose(prior_arr.sum(), 1.0, atol=1e-9):
        raise ValidationError(f"prior must sum to 1, got {prior_arr.sum():g}")
    if np.any(matrix < 0.0):
        raise ValidationError("channel probabilities must be non-negative")
    if not np.allclose(matrix.sum(axis=1), 1.0, atol=1e-8):
        raise ValidationError("channel rows must each sum to 1")
    if not 0 <= x < matrix.shape[0]:
        raise ValidationError(f"x={x} outside [0, {matrix.shape[0] - 1}]")

    p_y = prior_arr @ matrix  # Pr(y), length = number of outputs
    likelihood = matrix[x]  # Pr(y | x)
    support = likelihood > 0.0
    if not np.any(support):
        raise ValidationError(f"input {x} has empty output support")
    # Pr(x)/Pr(x|y) = Pr(y)/Pr(y|x) by Bayes (Eq. 5).
    ratios = p_y[support] / likelihood[support]
    return float(ratios.min()), float(ratios.max())
