"""Sequential composition accounting (Theorems 1 and 2).

Theorem 1 (LDP): running ``k`` mechanisms with budgets ``eps_1..eps_k`` on
the same input consumes ``sum eps_i`` of LDP budget.  Theorem 2 extends
this *per input*: if mechanism ``i`` satisfies ``E_i``-MinID-LDP then the
sequence satisfies ``(sum_i E_i)``-MinID-LDP, where budget sets add
element-wise.

:class:`CompositionAccountant` tracks a sequence of releases against a
target budget specification and answers "can I afford one more query?".
"""

from __future__ import annotations

import numpy as np

from .._validation import check_budget
from ..exceptions import BudgetError, ValidationError
from .budgets import BudgetSpec

__all__ = ["CompositionAccountant"]


class CompositionAccountant:
    """Tracks cumulative per-item budget consumption across releases.

    Parameters
    ----------
    total:
        The overall :class:`BudgetSpec` that may be consumed.  Each
        recorded release subtracts element-wise from the remaining
        per-item budgets.

    Notes
    -----
    The accountant works at *item* granularity (length-``m`` vectors), so
    it handles the general case where successive mechanisms use different
    level partitions of the same domain.
    """

    def __init__(self, total: BudgetSpec) -> None:
        if not isinstance(total, BudgetSpec):
            raise ValidationError(f"total must be a BudgetSpec, got {total!r}")
        self._total = total
        self._spent = np.zeros(total.m)
        self._releases: list[np.ndarray] = []

    # ------------------------------------------------------------------
    @property
    def total(self) -> BudgetSpec:
        """The overall budget specification."""
        return self._total

    @property
    def n_releases(self) -> int:
        """Number of releases recorded so far."""
        return len(self._releases)

    def spent(self) -> np.ndarray:
        """Per-item budget consumed so far (length-``m`` copy)."""
        return self._spent.copy()

    def remaining(self) -> np.ndarray:
        """Per-item budget still available (length-``m``, clipped at 0)."""
        return np.maximum(self._total.item_epsilons - self._spent, 0.0)

    def can_afford(self, release: BudgetSpec | float) -> bool:
        """Whether *release* fits in the remaining per-item budgets.

        A scalar is interpreted as a uniform (plain-LDP) release over the
        whole domain, matching Theorem 1.
        """
        return bool(np.all(self._release_vector(release) <= self.remaining() + 1e-12))

    def record(self, release: BudgetSpec | float) -> None:
        """Record a release, raising :class:`BudgetError` if unaffordable."""
        vector = self._release_vector(release)
        if not np.all(vector <= self.remaining() + 1e-12):
            worst = int(np.argmax(vector - self.remaining()))
            raise BudgetError(
                f"release exceeds remaining budget at item {worst}: "
                f"needs {vector[worst]:g}, has {self.remaining()[worst]:g}"
            )
        self._spent += vector
        self._releases.append(vector)

    def composed_spec(self) -> BudgetSpec:
        """The :class:`BudgetSpec` consumed by all recorded releases.

        By Theorem 2 this is the MinID-LDP guarantee of the *sequence* of
        mechanisms recorded so far.  Requires at least one release (a
        spec with all-zero budgets is not representable, by design).
        """
        if not self._releases:
            raise BudgetError("no releases recorded yet")
        return BudgetSpec(self._spent.copy())

    # ------------------------------------------------------------------
    def _release_vector(self, release: BudgetSpec | float) -> np.ndarray:
        if isinstance(release, BudgetSpec):
            if release.m != self._total.m:
                raise ValidationError(
                    f"release covers {release.m} items, accountant covers "
                    f"{self._total.m}"
                )
            return release.item_epsilons.copy()
        epsilon = check_budget(release, "release")
        return np.full(self._total.m, epsilon)

    def __repr__(self) -> str:
        return (
            f"CompositionAccountant(releases={self.n_releases}, "
            f"max_spent={self._spent.max() if self._spent.size else 0:g})"
        )
