"""Indistinguishability policy graphs (Fig. 1 and Section IV-C).

The paper's main development assumes every pair of inputs must be
protected — a *complete* policy graph.  Section IV-C observes that when
some pairs need no protection (a Blowfish-style secret policy), dropping
their constraints lets MinID-LDP gain more than the factor-2 bound of
Lemma 1.  :class:`PolicyGraph` represents such graphs over *privacy
levels* (the granularity at which the optimizers operate).

The implementation is a small adjacency-matrix wrapper so the core
library has no hard dependency on ``networkx``; :meth:`to_networkx` is
provided for interactive analysis when networkx is installed.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from .._validation import check_positive_int
from ..exceptions import ValidationError

__all__ = ["PolicyGraph"]


class PolicyGraph:
    """Undirected graph whose nodes are privacy-level indices.

    An edge ``(i, j)`` means "pairs of inputs drawn from levels i and j
    must be indistinguishable at budget ``r(eps_i, eps_j)``".  A missing
    edge means the pair carries no constraint at all.  Self-loops are
    implicit: items *within* one level are always mutually constrained.
    """

    def __init__(self, n_nodes: int, edges: Iterable[tuple[int, int]]) -> None:
        self._n = check_positive_int(n_nodes, "n_nodes")
        adj = np.zeros((self._n, self._n), dtype=bool)
        for i, j in edges:
            if not (0 <= i < self._n and 0 <= j < self._n):
                raise ValidationError(
                    f"edge ({i}, {j}) references a node outside [0, {self._n - 1}]"
                )
            if i == j:
                continue  # self-loops are implicit
            adj[i, j] = adj[j, i] = True
        np.fill_diagonal(adj, True)
        self._adj = adj
        self._adj.flags.writeable = False

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def complete(cls, n_nodes: int) -> "PolicyGraph":
        """The complete graph: every pair of levels is constrained."""
        n_nodes = check_positive_int(n_nodes, "n_nodes")
        return cls(n_nodes, [(i, j) for i in range(n_nodes) for j in range(i + 1, n_nodes)])

    @classmethod
    def star(cls, n_nodes: int, center: int = 0) -> "PolicyGraph":
        """A star: every level is constrained only against *center*.

        A natural incomplete policy — "nothing may be confused with the
        most sensitive category, but non-sensitive categories need not be
        mutually indistinguishable".
        """
        n_nodes = check_positive_int(n_nodes, "n_nodes")
        if not 0 <= center < n_nodes:
            raise ValidationError(f"center {center} outside [0, {n_nodes - 1}]")
        return cls(n_nodes, [(center, j) for j in range(n_nodes) if j != center])

    @classmethod
    def from_adjacency(cls, adjacency: np.ndarray) -> "PolicyGraph":
        """Build from a boolean adjacency matrix (symmetrized)."""
        adj = np.asarray(adjacency, dtype=bool)
        if adj.ndim != 2 or adj.shape[0] != adj.shape[1]:
            raise ValidationError(f"adjacency must be square, got shape {adj.shape}")
        n = adj.shape[0]
        edges = [(i, j) for i in range(n) for j in range(i + 1, n) if adj[i, j] or adj[j, i]]
        return cls(n, edges)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of privacy levels covered by this policy."""
        return self._n

    def adjacency(self) -> np.ndarray:
        """Read-only boolean adjacency matrix (diagonal True)."""
        return self._adj

    def has_edge(self, i: int, j: int) -> bool:
        """Whether the (i, j) level pair is constrained."""
        if not (0 <= i < self._n and 0 <= j < self._n):
            raise ValidationError(f"node pair ({i}, {j}) outside [0, {self._n - 1}]")
        return bool(self._adj[i, j])

    def edges(self) -> list[tuple[int, int]]:
        """Sorted list of proper edges ``(i < j)``, self-loops excluded."""
        return [
            (i, j)
            for i in range(self._n)
            for j in range(i + 1, self._n)
            if self._adj[i, j]
        ]

    def is_complete(self) -> bool:
        """True when every pair of levels is constrained."""
        return bool(np.all(self._adj))

    def neighbors(self, i: int) -> list[int]:
        """Levels constrained against level *i* (excluding *i* itself)."""
        if not 0 <= i < self._n:
            raise ValidationError(f"node {i} outside [0, {self._n - 1}]")
        return [int(j) for j in np.flatnonzero(self._adj[i]) if j != i]

    def transitive_pair_budget(self, i: int, j: int, epsilons, r_fn) -> float:
        """Tightest budget implied for (i, j) via any path in the graph.

        Under an incomplete policy the *direct* constraint on (i, j) may
        be absent, yet transitivity through constrained pairs still
        bounds the ratio: a path ``i - k - j`` yields
        ``r(eps_i, eps_k) + r(eps_k, eps_j)``.  This shortest-path (in
        budget-weighted terms) computation quantifies the "additional
        gain" discussion of Section IV-C.

        Returns ``+inf`` when i and j are in different components.
        """
        eps = np.asarray(epsilons, dtype=float)
        if eps.shape != (self._n,):
            raise ValidationError(
                f"epsilons must have shape ({self._n},), got {eps.shape}"
            )
        if i == j:
            return 0.0
        # Dijkstra over <= t nodes; t is small (number of privacy levels).
        dist = np.full(self._n, np.inf)
        dist[i] = 0.0
        visited = np.zeros(self._n, dtype=bool)
        for _ in range(self._n):
            candidates = np.where(visited, np.inf, dist)
            u = int(np.argmin(candidates))
            if not np.isfinite(candidates[u]):
                break
            if u == j:
                return float(dist[j])
            visited[u] = True
            for v in self.neighbors(u):
                weight = float(r_fn(eps[u], eps[v]))
                if dist[u] + weight < dist[v]:
                    dist[v] = dist[u] + weight
        return float(dist[j])

    def to_networkx(self):
        """Export to a ``networkx.Graph`` (requires networkx)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self._n))
        graph.add_edges_from(self.edges())
        return graph

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PolicyGraph):
            return NotImplemented
        return self._n == other._n and np.array_equal(self._adj, other._adj)

    def __hash__(self) -> int:
        return hash((self._n, self._adj.tobytes()))

    def __repr__(self) -> str:
        kind = "complete" if self.is_complete() else f"{len(self.edges())} edges"
        return f"PolicyGraph(n_nodes={self._n}, {kind})"
