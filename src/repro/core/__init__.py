"""Core privacy abstractions: budgets, notions, policy graphs, composition.

This package contains everything needed to *specify* an input-discriminative
privacy requirement (the paper's Section III and IV); the mechanisms that
*satisfy* such requirements live in :mod:`repro.mechanisms`.
"""

from .budgets import BudgetSpec, PrivacyLevel
from .composition import CompositionAccountant
from .information import channel_mutual_information, per_input_kl_divergence
from .leakage import (
    empirical_leakage_bounds,
    geo_indistinguishability_leakage_bounds,
    ldp_leakage_bounds,
    minid_leakage_bounds,
    pldp_leakage_bounds,
)
from .notions import (
    AVG,
    MAX,
    MIN,
    IDLDP,
    LDP,
    RFunction,
    ldp_budget_implied_by_minid,
    minid_budgets_implied_by_ldp,
)
from .policy import PolicyGraph

__all__ = [
    "BudgetSpec",
    "PrivacyLevel",
    "CompositionAccountant",
    "RFunction",
    "MIN",
    "AVG",
    "MAX",
    "LDP",
    "IDLDP",
    "ldp_budget_implied_by_minid",
    "minid_budgets_implied_by_ldp",
    "PolicyGraph",
    "ldp_leakage_bounds",
    "pldp_leakage_bounds",
    "geo_indistinguishability_leakage_bounds",
    "minid_leakage_bounds",
    "empirical_leakage_bounds",
    "channel_mutual_information",
    "per_input_kl_divergence",
]
