"""Privacy-budget specifications (the paper's ``E = {eps_x}``).

The paper partitions the item domain ``I = {1..m}`` into ``t`` privacy
levels ``I_1 .. I_t``; every item in level ``i`` shares the budget
``eps_i`` (Section III-A).  :class:`BudgetSpec` is the canonical container
for that structure and is consumed by the optimizers
(:mod:`repro.optim`), the mechanisms (:mod:`repro.mechanisms`) and the
audits (:mod:`repro.audit`).

Item ids are **0-based** throughout the library (the paper writes
``1..m``); conversion happens only at dataset-loading boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence

import numpy as np

from .._validation import (
    as_int_array,
    check_budget,
    check_budget_vector,
    check_positive_float,
    check_positive_int,
)
from ..exceptions import BudgetError

__all__ = ["PrivacyLevel", "BudgetSpec"]


@dataclass(frozen=True)
class PrivacyLevel:
    """One privacy level: a budget and the items that carry it.

    Attributes
    ----------
    epsilon:
        The privacy budget of every item in this level.  Smaller means
        more sensitive (stronger protection required).
    items:
        Sorted tuple of the 0-based item ids belonging to this level.
    """

    epsilon: float
    items: tuple[int, ...]

    @property
    def size(self) -> int:
        """Number of items in this level (``m_i`` in the paper)."""
        return len(self.items)


class BudgetSpec:
    """Partition of an item domain into privacy levels with budgets.

    Parameters
    ----------
    item_epsilons:
        Length-``m`` sequence giving the budget of each item.  Items with
        equal budgets are grouped into one level; levels are ordered by
        ascending budget so level 0 is always the most sensitive.

    Notes
    -----
    Alternative constructors cover the common cases:

    * :meth:`from_levels` — explicit ``(epsilon, items)`` groups;
    * :meth:`from_level_sizes` — contiguous blocks of given sizes;
    * :meth:`uniform` — a single level (plain LDP).
    """

    def __init__(self, item_epsilons: Sequence[float] | np.ndarray) -> None:
        eps = check_budget_vector(item_epsilons, "item_epsilons")
        self._item_epsilons = eps.copy()
        self._item_epsilons.flags.writeable = False

        # Group items by budget value; sort levels by ascending budget so
        # that "level 0" is deterministically the most sensitive one.
        unique = np.unique(eps)  # sorted ascending
        self._level_epsilons = unique
        self._level_epsilons.flags.writeable = False
        self._item_level = np.searchsorted(unique, eps).astype(np.int64)
        self._item_level.flags.writeable = False
        self._level_sizes = np.bincount(self._item_level, minlength=unique.size).astype(
            np.int64
        )
        self._level_sizes.flags.writeable = False

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, epsilon: float, m: int) -> "BudgetSpec":
        """A single-level spec: every one of *m* items has budget *epsilon*.

        This is the plain-LDP special case (``t = 1``); the IDUE optimizers
        collapse to RAPPOR / OUE probabilities on such a spec.
        """
        epsilon = check_budget(epsilon)
        m = check_positive_int(m, "m")
        return cls(np.full(m, epsilon))

    @classmethod
    def from_levels(cls, levels: Mapping[float, Sequence[int]], m: int) -> "BudgetSpec":
        """Build a spec from an explicit ``{epsilon: [item ids]}`` mapping.

        The item ids across all levels must form exactly ``{0, .., m-1}``.
        """
        m = check_positive_int(m, "m")
        item_eps = np.full(m, np.nan)
        for epsilon, items in levels.items():
            epsilon = check_budget(epsilon)
            ids = as_int_array(items, "items")
            if ids.size and (ids.min() < 0 or ids.max() >= m):
                raise BudgetError(
                    f"item ids for epsilon={epsilon} fall outside [0, {m - 1}]"
                )
            if np.any(np.isfinite(item_eps[ids])):
                raise BudgetError("an item id appears in more than one level")
            item_eps[ids] = epsilon
        if np.any(~np.isfinite(item_eps)):
            missing = int(np.flatnonzero(~np.isfinite(item_eps))[0])
            raise BudgetError(f"item {missing} is not assigned to any level")
        return cls(item_eps)

    @classmethod
    def from_level_sizes(
        cls, epsilons: Sequence[float], sizes: Sequence[int]
    ) -> "BudgetSpec":
        """Assign contiguous item blocks to levels.

        ``epsilons[k]`` applies to the next ``sizes[k]`` item ids, in
        order.  Handy for synthetic experiments where the id layout is
        arbitrary anyway.
        """
        eps = check_budget_vector(epsilons, "epsilons")
        size_arr = as_int_array(sizes, "sizes")
        if eps.size != size_arr.size:
            raise BudgetError(
                f"epsilons and sizes must have equal length, "
                f"got {eps.size} and {size_arr.size}"
            )
        if np.any(size_arr < 1):
            raise BudgetError("every level size must be >= 1")
        return cls(np.repeat(eps, size_arr))

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Domain size (number of items)."""
        return int(self._item_epsilons.size)

    @property
    def t(self) -> int:
        """Number of distinct privacy levels."""
        return int(self._level_epsilons.size)

    @property
    def item_epsilons(self) -> np.ndarray:
        """Length-``m`` read-only array: budget of each item."""
        return self._item_epsilons

    @property
    def level_epsilons(self) -> np.ndarray:
        """Length-``t`` read-only array of level budgets, ascending."""
        return self._level_epsilons

    @property
    def level_sizes(self) -> np.ndarray:
        """Length-``t`` read-only array: number of items per level."""
        return self._level_sizes

    @property
    def item_level(self) -> np.ndarray:
        """Length-``m`` read-only array: level index of each item."""
        return self._item_level

    @property
    def min_epsilon(self) -> float:
        """``min{E}`` — the budget plain LDP would have to use."""
        return float(self._level_epsilons[0])

    @property
    def max_epsilon(self) -> float:
        """``max{E}``."""
        return float(self._level_epsilons[-1])

    def levels(self) -> list[PrivacyLevel]:
        """Materialize the levels as :class:`PrivacyLevel` records."""
        return [
            PrivacyLevel(
                epsilon=float(self._level_epsilons[k]),
                items=tuple(int(i) for i in np.flatnonzero(self._item_level == k)),
            )
            for k in range(self.t)
        ]

    def level_of(self, item: int) -> int:
        """Level index of a single item id."""
        if not 0 <= item < self.m:
            raise BudgetError(f"item {item} outside domain [0, {self.m - 1}]")
        return int(self._item_level[item])

    def epsilon_of(self, item: int) -> float:
        """Budget of a single item id."""
        if not 0 <= item < self.m:
            raise BudgetError(f"item {item} outside domain [0, {self.m - 1}]")
        return float(self._item_epsilons[item])

    # ------------------------------------------------------------------
    # Derived specs
    # ------------------------------------------------------------------
    def expand(self, level_values: Sequence[float] | np.ndarray) -> np.ndarray:
        """Broadcast per-level values to a per-item array.

        This is how level-granular mechanism parameters ``(a_i, b_i)``
        become per-bit vectors for unary encoding.
        """
        values = np.asarray(level_values, dtype=float)
        if values.shape != (self.t,):
            raise BudgetError(
                f"level_values must have shape ({self.t},), got {values.shape}"
            )
        return values[self._item_level]

    def scaled(self, factor: float) -> "BudgetSpec":
        """Multiply every budget by *factor* (> 0).

        Used both for the privacy-parameter sweeps in the evaluation
        (levels ``{eps, 1.2 eps, 2 eps, 4 eps}`` swept over ``eps``) and
        for the PLDP combination the paper sketches, where each user
        scales the universal levels by a personal factor.
        """
        factor = check_positive_float(factor, "factor")
        # Re-grouping the scaled per-item budgets would merge two levels
        # whose budgets round to the same float after multiplication
        # (e.g. 0.05 and its next-ulp neighbour at factor 0.1), silently
        # changing ``t`` and the item→level map.  Scaling is a relabeling
        # of budgets, not a re-partition: keep the level structure as is.
        spec = object.__new__(BudgetSpec)
        spec._item_epsilons = check_budget_vector(
            self._item_epsilons * factor, "item_epsilons"
        )
        spec._item_epsilons.flags.writeable = False
        spec._level_epsilons = self._level_epsilons * factor
        spec._level_epsilons.flags.writeable = False
        spec._item_level = self._item_level
        spec._level_sizes = self._level_sizes
        return spec

    def restricted_to(self, items: Sequence[int]) -> "BudgetSpec":
        """Spec over a sub-domain, re-indexing items to ``0..len(items)-1``."""
        ids = as_int_array(items, "items")
        if ids.size == 0:
            raise BudgetError("items must be non-empty")
        if ids.min() < 0 or ids.max() >= self.m:
            raise BudgetError(f"item ids fall outside [0, {self.m - 1}]")
        return BudgetSpec(self._item_epsilons[ids])

    def with_dummies(self, n_dummies: int, dummy_epsilon: float | None = None) -> "BudgetSpec":
        """Extend the domain with *n_dummies* dummy items (for IDUE-PS).

        The paper selects ``eps* = min{E}`` for dummy items (Section VI-B);
        that is the default here.
        """
        n_dummies = check_positive_int(n_dummies, "n_dummies")
        if dummy_epsilon is None:
            dummy_epsilon = self.min_epsilon
        dummy_epsilon = check_budget(dummy_epsilon, "dummy_epsilon")
        if dummy_epsilon not in self._level_epsilons:
            raise BudgetError(
                "dummy_epsilon must be one of the existing level budgets "
                f"(Theorem 4 requires eps* in E); got {dummy_epsilon}"
            )
        return BudgetSpec(
            np.concatenate([self._item_epsilons, np.full(n_dummies, dummy_epsilon)])
        )

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BudgetSpec):
            return NotImplemented
        return np.array_equal(self._item_epsilons, other._item_epsilons)

    def __hash__(self) -> int:
        return hash(self._item_epsilons.tobytes())

    def __repr__(self) -> str:
        eps = ", ".join(f"{e:g}" for e in self._level_epsilons)
        sizes = ", ".join(str(int(s)) for s in self._level_sizes)
        return f"BudgetSpec(m={self.m}, t={self.t}, epsilons=[{eps}], sizes=[{sizes}])"
