"""Versioned, checksummed binary wire format for collection state.

Everything a distributed deployment ships between machines — packed
report chunks on their way to a collector, accumulator snapshots on
their way to a merger — travels as a *frame*:

``[ header 40 B ][ payload ][ payload CRC32 4 B ]``

with a fixed little-endian header::

    offset  size  field
    0       4     magic  = b"IDLP"
    4       2     format version (currently 1)
    6       2     kind: 1 = accumulator snapshot, 2 = packed chunk
    8       8     m         report width in bits
    16      8     n         users absorbed (snapshot) / rows (chunk)
    24      8     round_id  signed collection-round tag
    32      4     payload length in bytes
    36      4     CRC32 of header bytes [0, 36)

The first 8 bytes (magic + version) are layout-invariant across all
future versions, so any reader can always classify a frame before
parsing the rest.  Snapshot payloads are the ``m`` little-endian
``int64`` counts; chunk payloads are ``n`` rows of ``ceil(m / 8)``
``np.packbits`` bytes.  Headers are self-delimiting (the payload length
is inside the checksummed region), so frames concatenate freely into
spill files and socket streams with no outer framing.

Decoding is loud on every failure mode a transport can produce: wrong
magic, unsupported version (the message names found and supported
versions), truncation mid-header or mid-payload, and CRC mismatch on
either region — all as :class:`~repro.exceptions.WireFormatError`.
No pickle anywhere: frames are safe to accept from untrusted producers.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

import numpy as np

from ...exceptions import ValidationError, WireFormatError
from ...kernels import packed_width
from ..accumulator import CountAccumulator

__all__ = [
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "KIND_SNAPSHOT",
    "KIND_CHUNK",
    "HEADER_SIZE",
    "PackedChunk",
    "dump_snapshot",
    "dump_chunk",
    "dumps",
    "loads",
    "write_frame",
    "read_frame",
    "iter_frames",
]

WIRE_MAGIC = b"IDLP"
WIRE_VERSION = 1
KIND_SNAPSHOT = 1
KIND_CHUNK = 2

_HEADER = struct.Struct("<4sHHQQqI")
_CRC = struct.Struct("<I")
HEADER_SIZE = _HEADER.size + _CRC.size  # 40 bytes
_KIND_NAMES = {KIND_SNAPSHOT: "snapshot", KIND_CHUNK: "chunk"}


@dataclass(frozen=True)
class PackedChunk:
    """One wire-format chunk of packed unary reports.

    ``rows`` is the ``k x ceil(m / 8)`` ``uint8`` matrix exactly as
    :meth:`~repro.pipeline.accumulator.CountAccumulator.add_packed_reports`
    consumes it; ``m`` and ``round_id`` carry the producer's claimed
    width and round so the consumer can refuse mismatched state *before*
    touching the payload.
    """

    m: int
    round_id: int
    rows: np.ndarray

    @property
    def n(self) -> int:
        """Number of user reports (rows) in this chunk."""
        return int(self.rows.shape[0])


def _check_chunk_rows(rows, m: int) -> np.ndarray:
    rows = np.ascontiguousarray(rows)
    width = packed_width(m)
    if rows.ndim != 2 or rows.shape[1] != width:
        raise ValidationError(
            f"packed chunk rows must have shape (k, {width}) for m={m}, "
            f"got {rows.shape}"
        )
    if rows.dtype != np.uint8:
        raise ValidationError(f"packed chunk rows must be uint8, got {rows.dtype}")
    return rows


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def _frame(kind: int, m: int, n: int, round_id: int, payload: bytes) -> bytes:
    head = _HEADER.pack(WIRE_MAGIC, WIRE_VERSION, kind, m, n, round_id, len(payload))
    return b"".join(
        (
            head,
            _CRC.pack(zlib.crc32(head)),
            payload,
            _CRC.pack(zlib.crc32(payload)),
        )
    )


def dump_snapshot(accumulator: CountAccumulator) -> bytes:
    """Serialize one accumulator's full state as a snapshot frame."""
    if not isinstance(accumulator, CountAccumulator):
        raise ValidationError(
            f"expected a CountAccumulator, got {type(accumulator).__name__}"
        )
    payload = np.ascontiguousarray(accumulator.counts(), dtype="<i8").tobytes()
    return _frame(
        KIND_SNAPSHOT, accumulator.m, accumulator.n, accumulator.round_id, payload
    )


def dump_chunk(rows, m: int, *, round_id: int = 0) -> bytes:
    """Serialize a ``k x ceil(m/8)`` packed report matrix as a chunk frame."""
    rows = _check_chunk_rows(rows, m)
    return _frame(KIND_CHUNK, m, rows.shape[0], int(round_id), rows.tobytes())


def dumps(obj) -> bytes:
    """Serialize a :class:`CountAccumulator` or :class:`PackedChunk`."""
    if isinstance(obj, CountAccumulator):
        return dump_snapshot(obj)
    if isinstance(obj, PackedChunk):
        return dump_chunk(obj.rows, obj.m, round_id=obj.round_id)
    raise ValidationError(
        f"cannot serialize {type(obj).__name__}; expected CountAccumulator "
        "or PackedChunk"
    )


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def _parse_header(head: bytes) -> tuple[int, int, int, int, int]:
    """Validate a 40-byte header; returns ``(kind, m, n, round_id, length)``."""
    if len(head) < HEADER_SIZE:
        raise WireFormatError(
            f"truncated frame: header needs {HEADER_SIZE} bytes, got {len(head)}"
        )
    magic, version = head[:4], int.from_bytes(head[4:6], "little")
    if magic != WIRE_MAGIC:
        raise WireFormatError(
            f"bad magic {magic!r}: not a wire-format frame "
            f"(expected {WIRE_MAGIC!r})"
        )
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"unsupported wire-format version {version}; this reader "
            f"supports version {WIRE_VERSION}"
        )
    (stored_crc,) = _CRC.unpack_from(head, _HEADER.size)
    if stored_crc != zlib.crc32(head[: _HEADER.size]):
        raise WireFormatError("header checksum mismatch: frame header is corrupted")
    _, _, kind, m, n, round_id, length = _HEADER.unpack_from(head)
    if kind not in _KIND_NAMES:
        raise WireFormatError(f"unknown frame kind {kind}")
    return kind, m, n, round_id, length


def _decode(kind: int, m: int, n: int, round_id: int, payload: bytes):
    name = _KIND_NAMES[kind]
    if m <= 0:
        raise WireFormatError(f"{name} frame declares non-positive width m={m}")
    if kind == KIND_SNAPSHOT:
        if len(payload) != 8 * m:
            raise WireFormatError(
                f"snapshot payload must be {8 * m} bytes for m={m}, "
                f"got {len(payload)}"
            )
        counts = np.frombuffer(payload, dtype="<i8").astype(np.int64)
        try:
            return CountAccumulator.from_state(m, counts, n, round_id=round_id)
        except ValidationError as exc:
            raise WireFormatError(f"snapshot state is invalid: {exc}") from exc
    width = packed_width(m)
    if len(payload) != n * width:
        raise WireFormatError(
            f"chunk payload must be {n * width} bytes for n={n} rows of "
            f"width {width}, got {len(payload)}"
        )
    rows = np.frombuffer(payload, dtype=np.uint8).reshape(n, width)
    return PackedChunk(m=m, round_id=round_id, rows=rows)


def loads(data: bytes):
    """Decode exactly one frame from *data* (no trailing bytes allowed)."""
    data = bytes(data)
    kind, m, n, round_id, length = _parse_header(data[:HEADER_SIZE])
    expected = HEADER_SIZE + length + _CRC.size
    if len(data) < expected:
        raise WireFormatError(
            f"truncated frame: expected {expected} bytes, got {len(data)}"
        )
    if len(data) > expected:
        raise WireFormatError(
            f"{len(data) - expected} trailing bytes after a {expected}-byte "
            "frame; use iter_frames for concatenated streams"
        )
    payload = data[HEADER_SIZE : HEADER_SIZE + length]
    (stored_crc,) = _CRC.unpack_from(data, HEADER_SIZE + length)
    if stored_crc != zlib.crc32(payload):
        raise WireFormatError(
            "payload checksum mismatch: frame payload is corrupted"
        )
    return _decode(kind, m, n, round_id, payload)


# ----------------------------------------------------------------------
# Stream IO
# ----------------------------------------------------------------------
def write_frame(stream, obj) -> int:
    """Serialize *obj* onto a binary file object; returns bytes written."""
    frame = dumps(obj)
    stream.write(frame)
    return len(frame)


def read_frame(stream):
    """Read one frame from a binary file object.

    Returns the decoded object, or ``None`` at a clean end of stream
    (EOF exactly on a frame boundary).  EOF *inside* a frame raises
    :class:`WireFormatError` — a spill file cut off mid-write must never
    read as merely shorter.
    """
    head = stream.read(HEADER_SIZE)
    if not head:
        return None
    kind, m, n, round_id, length = _parse_header(head)
    rest = stream.read(length + _CRC.size)
    if len(rest) < length + _CRC.size:
        raise WireFormatError(
            f"truncated frame: payload needs {length + _CRC.size} bytes, "
            f"got {len(rest)}"
        )
    payload = rest[:length]
    (stored_crc,) = _CRC.unpack_from(rest, length)
    if stored_crc != zlib.crc32(payload):
        raise WireFormatError(
            "payload checksum mismatch: frame payload is corrupted"
        )
    return _decode(kind, m, n, round_id, payload)


def iter_frames(stream):
    """Yield decoded frames from a binary file object until clean EOF."""
    while (obj := read_frame(stream)) is not None:
        yield obj
