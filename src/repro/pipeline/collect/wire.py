"""Versioned, checksummed binary wire format for collection state.

Everything a distributed deployment ships between machines — packed
report chunks on their way to a collector, accumulator snapshots on
their way to a merger — travels as a *frame*:

``[ header 40 B ][ payload ][ payload CRC32 4 B ]``

with a fixed little-endian header::

    offset  size  field
    0       4     magic  = b"IDLP"
    4       2     format version (currently 1)
    6       2     kind: 1 = accumulator snapshot, 2 = packed chunk
    8       8     m         report width in bits
    16      8     n         users absorbed (snapshot) / rows (chunk)
    24      8     round_id  signed collection-round tag
    32      4     payload length in bytes
    36      4     CRC32 of header bytes [0, 36)

The first 8 bytes (magic + version) are layout-invariant across all
future versions, so any reader can always classify a frame before
parsing the rest.  Snapshot payloads are the ``m`` little-endian
``int64`` counts; chunk payloads are ``n`` rows of ``ceil(m / 8)``
``np.packbits`` bytes.  Headers are self-delimiting (the payload length
is inside the checksummed region), so frames concatenate freely into
spill files and socket streams with no outer framing.

Version 2 adds the *session* frames of the exactly-once collection
service (:mod:`repro.pipeline.service`): an HMAC handshake
(``SessionHello`` → ``SessionChallenge`` → ``SessionProof``), the
``Record`` envelope that wraps a core frame with a producer-assigned
sequence number, and the ``Ack`` status frame.  Session kinds are
version-gated: the core data frames (kinds 1-2) still encode as version
1 — every existing spill file and golden fixture stays byte-identical —
while kinds 3-7 encode as version 2, and a reader refuses a kind paired
with the wrong version.

Version 3 adds *round-scoped session binding* for the multi-round
service: a :class:`SessionChallenge` may carry a 16-byte *round token*
(the hosted round's registration epoch) after the server nonce, and the
producer's proof MAC must bind it — so a proof minted against one
hosted incarnation of a round can never be spent against another, even
one re-registered under the same ``round_id`` after a key rotation.
The gate is per *object*, not per kind: a challenge without a token
still encodes as version 2, byte-identical to every committed fixture;
only a token-carrying challenge encodes as version 3, and a reader
refuses a 32-byte challenge payload claiming version 2 (or vice versa).

Version 4 adds the *coordinator control plane* of the scale-out tier
(:mod:`repro.pipeline.service.coordinator`): a ``ControlRequest`` frame
carrying an operation name, a fresh nonce, a canonical-JSON body, and
an HMAC over all three, and a ``ControlReply`` echoing the nonce with a
status, JSON body, an optional binary attachment (e.g. a pulled
snapshot frame), and its own HMAC.  These are operator/coordinator
frames — route-table publication, drain/close/retire commands,
shard-state pulls — never producer frames, and they are version-gated
exactly like the session kinds: versions 1-3 encode byte-identically to
every committed golden fixture, and a reader refuses a control kind
paired with any version but 4.

Version 5 adds the *split-trust share frames* of the share-keeper tier
(:mod:`repro.pipeline.service.shares`): a ``BlindedCounts`` frame
carrying a chunk's per-bit count vector additively blinded mod 2^64
(what a blinded collector ingests — uniformly random words to anyone
without every keeper's state), and a ``BlindingShare`` frame carrying
one keeper's blinding words for the same chunk.  Both payloads are
``m`` little-endian ``uint64`` words with the covered row count in the
header's ``n`` field, decode as zero-copy numpy views, and double as
the parties' accumulated-state transfer form (``n`` then being the
total rows covered).  They are version-gated exactly like every prior
extension: versions 1-4 stay byte-identical to their golden fixtures,
and a reader refuses a share kind paired with any version but 5.

Decoding is loud on every failure mode a transport can produce: wrong
magic, unsupported version (the message names found and supported
versions), truncation mid-header or mid-payload, and CRC mismatch on
either region — all as :class:`~repro.exceptions.WireFormatError`.
No pickle anywhere: frames are safe to accept from untrusted producers.

Decoding is also *zero-copy* for the hot payloads: :func:`loads` and
:func:`decode_frame_at` accept any buffer (``bytes``, ``bytearray``,
``memoryview``, an ``mmap``) and hand chunk rows to numpy as a view
over the caller's buffer — no intermediate ``bytes`` materialization
anywhere on the chunk path.  The decoded ``PackedChunk.rows`` therefore
borrows the input buffer: it is read-only when the buffer is, and the
caller must keep the buffer alive (and release numpy references before
closing an mmap).  The remaining copies are structural — session
payloads become ``bytes`` (they carry strings and are tiny) and a
snapshot's counts become the accumulator's own writable state — and
each fires the module-level :data:`payload_copy_hook` (``hook(site,
nbytes)``) when one is installed, so tests can assert a path copies
exactly as much as it claims.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field

import numpy as np

from ...exceptions import ValidationError, WireFormatError
from ...kernels import packed_width
from ..accumulator import CountAccumulator

__all__ = [
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "WIRE_VERSION_SESSION",
    "WIRE_VERSION_MULTIROUND",
    "WIRE_VERSION_CONTROL",
    "WIRE_VERSION_SHARES",
    "KIND_SNAPSHOT",
    "KIND_CHUNK",
    "KIND_HELLO",
    "KIND_CHALLENGE",
    "KIND_PROOF",
    "KIND_RECORD",
    "KIND_ACK",
    "KIND_CONTROL_REQUEST",
    "KIND_CONTROL_REPLY",
    "KIND_BLINDED",
    "KIND_SHARE",
    "ACK_SESSION",
    "ACK_MERGED",
    "ACK_DUPLICATE",
    "ACK_REFUSED",
    "CONTROL_OK",
    "CONTROL_ERROR",
    "HEADER_SIZE",
    "SESSION_NONCE_SIZE",
    "SESSION_MAC_SIZE",
    "SESSION_TOKEN_SIZE",
    "PackedChunk",
    "BlindedCounts",
    "BlindingShare",
    "SessionHello",
    "SessionChallenge",
    "SessionProof",
    "Record",
    "Ack",
    "ControlRequest",
    "ControlReply",
    "encode_control_body",
    "decode_control_body",
    "dump_snapshot",
    "dump_chunk",
    "dump_blinded_counts",
    "dump_blinding_share",
    "dumps",
    "loads",
    "decode_frame_at",
    "write_frame",
    "read_frame",
    "iter_frames",
]

# Optional observability tap for the structural copies the decoder still
# makes: set to a callable ``hook(site: str, nbytes: int)`` and every
# payload copy reports itself ("session-payload" for session frames
# materializing bytes, "snapshot-counts" for an accumulator taking
# ownership of its counts).  The packed-chunk path has no sites at all —
# that absence is what the zero-copy tests pin down.  ``None`` (the
# default) disables the tap; reads go through the module attribute so
# tests can install/remove hooks without reloading.
payload_copy_hook = None


def _note_copy(site: str, nbytes: int) -> None:
    if payload_copy_hook is not None:
        payload_copy_hook(site, nbytes)

WIRE_MAGIC = b"IDLP"
WIRE_VERSION = 1
WIRE_VERSION_SESSION = 2
WIRE_VERSION_MULTIROUND = 3
WIRE_VERSION_CONTROL = 4
WIRE_VERSION_SHARES = 5
KIND_SNAPSHOT = 1
KIND_CHUNK = 2
KIND_HELLO = 3
KIND_CHALLENGE = 4
KIND_PROOF = 5
KIND_RECORD = 6
KIND_ACK = 7
KIND_CONTROL_REQUEST = 8
KIND_CONTROL_REPLY = 9
KIND_BLINDED = 10
KIND_SHARE = 11

# Ack statuses (the u16 leading the Ack payload).
ACK_SESSION = 1  # handshake accepted; records may flow
ACK_MERGED = 2  # record merged into the round and durably ledgered
ACK_DUPLICATE = 3  # record already ledgered; acked but NOT re-merged
ACK_REFUSED = 4  # auth failure, quota breach, conflict, or bad frame

# Control-reply statuses (the u16 leading the ControlReply payload).
CONTROL_OK = 1
CONTROL_ERROR = 2

SESSION_NONCE_SIZE = 16
SESSION_MAC_SIZE = 32  # HMAC-SHA256
SESSION_TOKEN_SIZE = 16  # round registration token (version-3 challenges)
CONTROL_OP_MAX_BYTES = 64  # operation names are short, fixed vocabulary

_HEADER = struct.Struct("<4sHHQQqI")
_CRC = struct.Struct("<I")
HEADER_SIZE = _HEADER.size + _CRC.size  # 40 bytes
_KIND_NAMES = {
    KIND_SNAPSHOT: "snapshot",
    KIND_CHUNK: "chunk",
    KIND_HELLO: "session-hello",
    KIND_CHALLENGE: "session-challenge",
    KIND_PROOF: "session-proof",
    KIND_RECORD: "record",
    KIND_ACK: "ack",
    KIND_CONTROL_REQUEST: "control-request",
    KIND_CONTROL_REPLY: "control-reply",
    KIND_BLINDED: "blinded-counts",
    KIND_SHARE: "blinding-share",
}
# Kind <-> version gating: core data frames stay version 1 (their bytes
# are pinned by golden fixtures); session frames require version 2,
# except a round-token-carrying challenge, which requires version 3;
# coordinator control frames require version 4; split-trust share
# frames require version 5.
_KIND_VERSIONS = {
    KIND_SNAPSHOT: (WIRE_VERSION,),
    KIND_CHUNK: (WIRE_VERSION,),
    KIND_HELLO: (WIRE_VERSION_SESSION,),
    KIND_CHALLENGE: (WIRE_VERSION_SESSION, WIRE_VERSION_MULTIROUND),
    KIND_PROOF: (WIRE_VERSION_SESSION,),
    KIND_RECORD: (WIRE_VERSION_SESSION,),
    KIND_ACK: (WIRE_VERSION_SESSION,),
    KIND_CONTROL_REQUEST: (WIRE_VERSION_CONTROL,),
    KIND_CONTROL_REPLY: (WIRE_VERSION_CONTROL,),
    KIND_BLINDED: (WIRE_VERSION_SHARES,),
    KIND_SHARE: (WIRE_VERSION_SHARES,),
}
SUPPORTED_VERSIONS = (
    WIRE_VERSION,
    WIRE_VERSION_SESSION,
    WIRE_VERSION_MULTIROUND,
    WIRE_VERSION_CONTROL,
    WIRE_VERSION_SHARES,
)


@dataclass(frozen=True)
class PackedChunk:
    """One wire-format chunk of packed unary reports.

    ``rows`` is the ``k x ceil(m / 8)`` ``uint8`` matrix exactly as
    :meth:`~repro.pipeline.accumulator.CountAccumulator.add_packed_reports`
    consumes it; ``m`` and ``round_id`` carry the producer's claimed
    width and round so the consumer can refuse mismatched state *before*
    touching the payload.
    """

    m: int
    round_id: int
    rows: np.ndarray

    @property
    def n(self) -> int:
        """Number of user reports (rows) in this chunk."""
        return int(self.rows.shape[0])


def _check_share_words(words, m: int, name: str) -> np.ndarray:
    words = np.ascontiguousarray(words)
    if words.ndim != 1 or words.shape[0] != m:
        raise ValidationError(
            f"{name} words must have shape ({m},) for m={m}, "
            f"got {words.shape}"
        )
    if words.dtype != np.uint64:
        raise ValidationError(
            f"{name} words must be uint64, got {words.dtype}"
        )
    return words


@dataclass(frozen=True)
class BlindedCounts:
    """A chunk's per-bit counts, additively blinded mod 2^64 (kind 10).

    ``words`` is the length-``m`` ``uint64`` vector ``counts + sum_j
    R_j (mod 2^64)`` where each ``R_j`` is one share keeper's blinding
    stream for this chunk — uniformly random to any party missing even
    one keeper's words.  ``n`` is the number of user reports the counts
    cover (header field; chunk rows never travel in this frame).  The
    same frame shape carries a blinded collector's *accumulated* state,
    ``n`` then being the round's total rows.
    """

    m: int
    round_id: int
    n: int
    words: np.ndarray


@dataclass(frozen=True)
class BlindingShare:
    """One share keeper's blinding words for one chunk (kind 11).

    ``words`` is the keeper's length-``m`` ``uint64`` blinding vector
    ``R_j`` for the chunk (or, as a state-transfer frame, the keeper's
    accumulated word sums mod 2^64); ``n`` is the rows the share covers.
    A keeper's whole job is summing these mod 2^64 — it never sees a
    report, a count, or a blinded count.
    """

    m: int
    round_id: int
    n: int
    words: np.ndarray


@dataclass(frozen=True)
class SessionHello:
    """Session opener: a producer's claimed identity and round geometry.

    ``nonce`` is the producer's fresh random contribution to the
    handshake transcript; the service answers with its own
    (:class:`SessionChallenge`), and both go under the HMAC so neither
    side can replay a recorded handshake.
    """

    m: int
    round_id: int
    producer_id: str
    nonce: bytes


@dataclass(frozen=True)
class SessionChallenge:
    """Service reply to a hello: the server-side handshake nonce.

    ``round_token`` is the hosted round's registration token (see
    :class:`repro.pipeline.service.RoundRegistry`).  Empty for a
    single-round service — the challenge then encodes as a version-2
    frame, byte-identical to the pre-multiround wire.  When present
    (16 bytes, version-3 frame) the producer must fold it into the
    proof MAC, scoping the session to this exact round incarnation.
    """

    m: int
    round_id: int
    nonce: bytes
    round_token: bytes = b""


@dataclass(frozen=True)
class SessionProof:
    """Producer's HMAC over the handshake transcript (see service.auth)."""

    m: int
    round_id: int
    mac: bytes


@dataclass(frozen=True)
class Record:
    """Exactly-once envelope: one core frame plus a producer sequence.

    ``frame`` is a complete serialized version-1 frame (chunk or
    snapshot); ``seq`` is the producer's durable, monotonically assigned
    sequence number.  The service's idempotency ledger keys on
    ``(producer_id, seq)`` with a digest of ``frame``, so a blind resend
    of an already-merged record is acknowledged but not re-merged, and
    the same ``seq`` with *different* bytes is refused as equivocation.
    """

    m: int
    round_id: int
    seq: int
    frame: bytes

    def decode(self):
        """Decode the enclosed core frame (chunk or snapshot).

        The full CRC check runs even though the envelope's own CRC
        already covered these bytes: the service spills record frames
        verbatim and re-reads them through the checksummed path at
        every recovery, so a record whose *inner* CRC is wrong must be
        refused at ingest — accepting it would poison restart replay.
        """
        return loads(self.frame)


@dataclass(frozen=True)
class Ack:
    """Per-frame service response: a status code plus a detail string."""

    m: int
    round_id: int
    seq: int
    status: int
    detail: str = ""


def encode_control_body(body: dict) -> bytes:
    """Canonical JSON encoding of a control body.

    Canonical (sorted keys, no whitespace) because the control MAC is
    computed over these exact bytes on both sides — two dict orderings
    must never yield two different MACs for the same body.
    """
    if not isinstance(body, dict):
        raise ValidationError(
            f"control body must be a dict, got {type(body).__name__}"
        )
    try:
        return json.dumps(
            body, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ValidationError(
            f"control body is not JSON-serializable: {exc}"
        ) from exc


def decode_control_body(payload: bytes, name: str) -> dict:
    try:
        body = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise WireFormatError(f"{name} body is not valid JSON") from exc
    if not isinstance(body, dict):
        raise WireFormatError(
            f"{name} body must be a JSON object, got "
            f"{type(body).__name__}"
        )
    return body


@dataclass(frozen=True)
class ControlRequest:
    """One coordinator/operator control operation (version-4 frame).

    ``op`` names the operation (``route-table``, ``drain-round``,
    ``pull-round``, ...); ``body`` carries its JSON arguments;
    ``nonce`` is the requester's fresh 16 bytes, echoed (and MAC'd) in
    the reply so a recorded reply cannot answer a later request; and
    ``mac`` is ``HMAC-SHA256(control_key, label || op || nonce ||
    canonical-json(body))`` — see
    :func:`repro.pipeline.service.auth.control_request_mac`.  Control
    frames never carry producer data, so they have no round geometry;
    the target round, when there is one, lives in the body.
    """

    op: str
    nonce: bytes
    body: dict = field(default_factory=dict)
    mac: bytes = b"\x00" * SESSION_MAC_SIZE


@dataclass(frozen=True)
class ControlReply:
    """The service's answer to one control request (version-4 frame).

    ``status`` is :data:`CONTROL_OK` or :data:`CONTROL_ERROR`;
    ``body`` is the JSON result (for errors: a ``detail`` key);
    ``attachment`` is optional raw bytes riding below the JSON — a
    pulled snapshot frame travels here verbatim, never base64'd through
    the body; ``nonce`` echoes the request's nonce; ``mac`` binds
    status, nonce, body, and attachment under the control key.
    """

    status: int
    nonce: bytes
    body: dict = field(default_factory=dict)
    attachment: bytes = b""
    mac: bytes = b"\x00" * SESSION_MAC_SIZE


def _check_chunk_rows(rows, m: int) -> np.ndarray:
    rows = np.ascontiguousarray(rows)
    width = packed_width(m)
    if rows.ndim != 2 or rows.shape[1] != width:
        raise ValidationError(
            f"packed chunk rows must have shape (k, {width}) for m={m}, "
            f"got {rows.shape}"
        )
    if rows.dtype != np.uint8:
        raise ValidationError(f"packed chunk rows must be uint8, got {rows.dtype}")
    return rows


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def _frame(
    kind: int,
    m: int,
    n: int,
    round_id: int,
    payload: bytes,
    *,
    version: int | None = None,
) -> bytes:
    if version is None:
        version = _KIND_VERSIONS[kind][0]
    head = _HEADER.pack(WIRE_MAGIC, version, kind, m, n, round_id, len(payload))
    return b"".join(
        (
            head,
            _CRC.pack(zlib.crc32(head)),
            payload,
            _CRC.pack(zlib.crc32(payload)),
        )
    )


def _check_nonce(nonce: bytes, who: str) -> bytes:
    nonce = bytes(nonce)
    if len(nonce) != SESSION_NONCE_SIZE:
        raise ValidationError(
            f"{who} nonce must be {SESSION_NONCE_SIZE} bytes, got {len(nonce)}"
        )
    return nonce


def dump_snapshot(accumulator: CountAccumulator) -> bytes:
    """Serialize one accumulator's full state as a snapshot frame."""
    if not isinstance(accumulator, CountAccumulator):
        raise ValidationError(
            f"expected a CountAccumulator, got {type(accumulator).__name__}"
        )
    payload = np.ascontiguousarray(accumulator.counts(), dtype="<i8").tobytes()
    return _frame(
        KIND_SNAPSHOT, accumulator.m, accumulator.n, accumulator.round_id, payload
    )


def dump_chunk(rows, m: int, *, round_id: int = 0) -> bytes:
    """Serialize a ``k x ceil(m/8)`` packed report matrix as a chunk frame."""
    rows = _check_chunk_rows(rows, m)
    return _frame(KIND_CHUNK, m, rows.shape[0], int(round_id), rows.tobytes())


def _dump_share_frame(kind: int, obj, name: str) -> bytes:
    words = _check_share_words(obj.words, int(obj.m), name)
    n = int(obj.n)
    if n < 0:
        raise ValidationError(f"{name} n must be non-negative, got {n}")
    payload = np.ascontiguousarray(words, dtype="<u8").tobytes()
    return _frame(kind, int(obj.m), n, int(obj.round_id), payload)


def dump_blinded_counts(blinded: BlindedCounts) -> bytes:
    """Serialize blinded per-bit counts (version-5 frame)."""
    return _dump_share_frame(KIND_BLINDED, blinded, "blinded-counts")


def dump_blinding_share(share: BlindingShare) -> bytes:
    """Serialize one keeper's blinding words (version-5 frame)."""
    return _dump_share_frame(KIND_SHARE, share, "blinding-share")


def dump_hello(hello: SessionHello) -> bytes:
    """Serialize a session hello (version-2 frame)."""
    producer = hello.producer_id.encode("utf-8")
    if not producer:
        raise ValidationError("producer_id must be a non-empty string")
    if len(producer) > 0xFFFF:
        raise ValidationError(
            f"producer_id is {len(producer)} UTF-8 bytes; the wire caps it "
            "at 65535"
        )
    payload = (
        struct.pack("<H", len(producer))
        + producer
        + _check_nonce(hello.nonce, "hello")
    )
    return _frame(KIND_HELLO, hello.m, 0, hello.round_id, payload)


def dump_challenge(challenge: SessionChallenge) -> bytes:
    """Serialize a session challenge.

    Without a round token the frame is version 2 — byte-identical to
    the single-round wire.  With one it is version 3, the payload being
    ``nonce || round_token``.
    """
    payload = _check_nonce(challenge.nonce, "challenge")
    token = bytes(challenge.round_token)
    if not token:
        return _frame(KIND_CHALLENGE, challenge.m, 0, challenge.round_id, payload)
    if len(token) != SESSION_TOKEN_SIZE:
        raise ValidationError(
            f"challenge round token must be {SESSION_TOKEN_SIZE} bytes, "
            f"got {len(token)}"
        )
    return _frame(
        KIND_CHALLENGE,
        challenge.m,
        0,
        challenge.round_id,
        payload + token,
        version=WIRE_VERSION_MULTIROUND,
    )


def dump_proof(proof: SessionProof) -> bytes:
    """Serialize a session proof (version-2 frame)."""
    mac = bytes(proof.mac)
    if len(mac) != SESSION_MAC_SIZE:
        raise ValidationError(
            f"session proof MAC must be {SESSION_MAC_SIZE} bytes, got {len(mac)}"
        )
    return _frame(KIND_PROOF, proof.m, 0, proof.round_id, mac)


def dump_record(record: Record) -> bytes:
    """Serialize an exactly-once record envelope (version-2 frame)."""
    frame = bytes(record.frame)
    if len(frame) < HEADER_SIZE:
        raise ValidationError(
            f"record must wrap a complete core frame (>= {HEADER_SIZE} "
            f"bytes), got {len(frame)}"
        )
    seq = int(record.seq)
    if seq < 0:
        raise ValidationError(f"record seq must be non-negative, got {seq}")
    return _frame(KIND_RECORD, record.m, seq, record.round_id, frame)


def dump_ack(ack: Ack) -> bytes:
    """Serialize a service acknowledgement (version-2 frame)."""
    if ack.status not in (ACK_SESSION, ACK_MERGED, ACK_DUPLICATE, ACK_REFUSED):
        raise ValidationError(f"unknown ack status {ack.status}")
    payload = struct.pack("<H", ack.status) + ack.detail.encode("utf-8")
    return _frame(KIND_ACK, ack.m, int(ack.seq), ack.round_id, payload)


def _check_mac(mac: bytes, who: str) -> bytes:
    mac = bytes(mac)
    if len(mac) != SESSION_MAC_SIZE:
        raise ValidationError(
            f"{who} MAC must be {SESSION_MAC_SIZE} bytes, got {len(mac)}"
        )
    return mac


def dump_control_request(request: ControlRequest) -> bytes:
    """Serialize a coordinator control request (version-4 frame)."""
    op = request.op.encode("utf-8")
    if not op:
        raise ValidationError("control op must be a non-empty string")
    if len(op) > CONTROL_OP_MAX_BYTES:
        raise ValidationError(
            f"control op is {len(op)} UTF-8 bytes; the wire caps it at "
            f"{CONTROL_OP_MAX_BYTES}"
        )
    body = encode_control_body(request.body)
    payload = b"".join(
        (
            struct.pack("<H", len(op)),
            op,
            _check_nonce(request.nonce, "control request"),
            struct.pack("<I", len(body)),
            body,
            _check_mac(request.mac, "control request"),
        )
    )
    return _frame(KIND_CONTROL_REQUEST, 1, 0, 0, payload)


def dump_control_reply(reply: ControlReply) -> bytes:
    """Serialize a control reply (version-4 frame)."""
    if reply.status not in (CONTROL_OK, CONTROL_ERROR):
        raise ValidationError(f"unknown control status {reply.status}")
    body = encode_control_body(reply.body)
    attachment = bytes(reply.attachment)
    payload = b"".join(
        (
            struct.pack("<H", reply.status),
            _check_nonce(reply.nonce, "control reply"),
            struct.pack("<I", len(body)),
            body,
            struct.pack("<I", len(attachment)),
            attachment,
            _check_mac(reply.mac, "control reply"),
        )
    )
    return _frame(KIND_CONTROL_REPLY, 1, 0, 0, payload)


_SESSION_DUMPERS = {
    BlindedCounts: dump_blinded_counts,
    BlindingShare: dump_blinding_share,
    SessionHello: dump_hello,
    SessionChallenge: dump_challenge,
    SessionProof: dump_proof,
    Record: dump_record,
    Ack: dump_ack,
    ControlRequest: dump_control_request,
    ControlReply: dump_control_reply,
}


def dumps(obj) -> bytes:
    """Serialize any wire object (core data frame or session frame)."""
    if isinstance(obj, CountAccumulator):
        return dump_snapshot(obj)
    if isinstance(obj, PackedChunk):
        return dump_chunk(obj.rows, obj.m, round_id=obj.round_id)
    dumper = _SESSION_DUMPERS.get(type(obj))
    if dumper is not None:
        return dumper(obj)
    raise ValidationError(
        f"cannot serialize {type(obj).__name__}; expected CountAccumulator, "
        "PackedChunk, a share frame, or a session frame object"
    )


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def _parse_header(head) -> tuple[int, int, int, int, int, int]:
    """Validate a 40-byte header (any buffer: ``bytes`` or ``memoryview``).

    Returns ``(version, kind, m, n, round_id, length)``.
    """
    if len(head) < HEADER_SIZE:
        raise WireFormatError(
            f"truncated frame: header needs {HEADER_SIZE} bytes, got {len(head)}"
        )
    magic, version = bytes(head[:4]), int.from_bytes(head[4:6], "little")
    if magic != WIRE_MAGIC:
        raise WireFormatError(
            f"bad magic {magic!r}: not a wire-format frame "
            f"(expected {WIRE_MAGIC!r})"
        )
    if version not in SUPPORTED_VERSIONS:
        raise WireFormatError(
            f"unsupported wire-format version {version}; this reader "
            f"supports version {WIRE_VERSION} (core frames), "
            f"{WIRE_VERSION_SESSION} (session frames), "
            f"{WIRE_VERSION_MULTIROUND} (round-scoped session frames), "
            f"{WIRE_VERSION_CONTROL} (control frames), and "
            f"{WIRE_VERSION_SHARES} (split-trust share frames)"
        )
    (stored_crc,) = _CRC.unpack_from(head, _HEADER.size)
    if stored_crc != zlib.crc32(head[: _HEADER.size]):
        raise WireFormatError("header checksum mismatch: frame header is corrupted")
    _, _, kind, m, n, round_id, length = _HEADER.unpack_from(head)
    if kind not in _KIND_NAMES:
        raise WireFormatError(f"unknown frame kind {kind}")
    if version not in _KIND_VERSIONS[kind]:
        allowed = " or ".join(str(v) for v in _KIND_VERSIONS[kind])
        raise WireFormatError(
            f"{_KIND_NAMES[kind]} frames require wire-format version "
            f"{allowed}, got version {version}"
        )
    return version, kind, m, n, round_id, length


def _decode_session(
    kind: int, m: int, n: int, round_id: int, payload: bytes, version: int
):
    name = _KIND_NAMES[kind]
    if kind == KIND_HELLO:
        if len(payload) < 2:
            raise WireFormatError(f"{name} payload is too short to parse")
        (producer_len,) = struct.unpack_from("<H", payload)
        expected = 2 + producer_len + SESSION_NONCE_SIZE
        if len(payload) != expected:
            raise WireFormatError(
                f"{name} payload must be {expected} bytes for a "
                f"{producer_len}-byte producer id, got {len(payload)}"
            )
        try:
            producer_id = payload[2 : 2 + producer_len].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError(f"{name} producer id is not UTF-8") from exc
        if not producer_id:
            raise WireFormatError(f"{name} declares an empty producer id")
        return SessionHello(
            m=m,
            round_id=round_id,
            producer_id=producer_id,
            nonce=payload[2 + producer_len :],
        )
    if kind == KIND_CHALLENGE:
        expected = SESSION_NONCE_SIZE
        if version == WIRE_VERSION_MULTIROUND:
            expected += SESSION_TOKEN_SIZE
        if len(payload) != expected:
            raise WireFormatError(
                f"{name} payload must be {expected} bytes at wire-format "
                f"version {version}, got {len(payload)}"
            )
        return SessionChallenge(
            m=m,
            round_id=round_id,
            nonce=payload[:SESSION_NONCE_SIZE],
            round_token=payload[SESSION_NONCE_SIZE:],
        )
    if kind == KIND_PROOF:
        if len(payload) != SESSION_MAC_SIZE:
            raise WireFormatError(
                f"{name} payload must be {SESSION_MAC_SIZE} bytes, "
                f"got {len(payload)}"
            )
        return SessionProof(m=m, round_id=round_id, mac=payload)
    if kind == KIND_RECORD:
        if len(payload) < HEADER_SIZE:
            raise WireFormatError(
                f"{name} payload must hold a complete core frame "
                f"(>= {HEADER_SIZE} bytes), got {len(payload)}"
            )
        return Record(m=m, round_id=round_id, seq=n, frame=payload)
    if kind == KIND_CONTROL_REQUEST:
        return _decode_control_request(payload, name)
    if kind == KIND_CONTROL_REPLY:
        return _decode_control_reply(payload, name)
    # KIND_ACK
    if len(payload) < 2:
        raise WireFormatError(f"{name} payload is too short to parse")
    (status,) = struct.unpack_from("<H", payload)
    if status not in (ACK_SESSION, ACK_MERGED, ACK_DUPLICATE, ACK_REFUSED):
        raise WireFormatError(f"{name} carries unknown status {status}")
    try:
        detail = payload[2:].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireFormatError(f"{name} detail is not UTF-8") from exc
    return Ack(m=m, round_id=round_id, seq=n, status=status, detail=detail)


def _decode_control_request(payload: bytes, name: str) -> ControlRequest:
    if len(payload) < 2:
        raise WireFormatError(f"{name} payload is too short to parse")
    (op_len,) = struct.unpack_from("<H", payload)
    if op_len == 0 or op_len > CONTROL_OP_MAX_BYTES:
        raise WireFormatError(
            f"{name} declares a {op_len}-byte op; ops are 1-"
            f"{CONTROL_OP_MAX_BYTES} bytes"
        )
    offset = 2 + op_len
    if len(payload) < offset + SESSION_NONCE_SIZE + 4:
        raise WireFormatError(f"{name} payload is too short to parse")
    try:
        op = payload[2:offset].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireFormatError(f"{name} op is not UTF-8") from exc
    nonce = payload[offset : offset + SESSION_NONCE_SIZE]
    offset += SESSION_NONCE_SIZE
    (body_len,) = struct.unpack_from("<I", payload, offset)
    offset += 4
    expected = offset + body_len + SESSION_MAC_SIZE
    if len(payload) != expected:
        raise WireFormatError(
            f"{name} payload must be {expected} bytes for a "
            f"{body_len}-byte body, got {len(payload)}"
        )
    body = decode_control_body(payload[offset : offset + body_len], name)
    return ControlRequest(
        op=op, nonce=nonce, body=body, mac=payload[offset + body_len :]
    )


def _decode_control_reply(payload: bytes, name: str) -> ControlReply:
    prefix = 2 + SESSION_NONCE_SIZE + 4
    if len(payload) < prefix:
        raise WireFormatError(f"{name} payload is too short to parse")
    (status,) = struct.unpack_from("<H", payload)
    if status not in (CONTROL_OK, CONTROL_ERROR):
        raise WireFormatError(f"{name} carries unknown status {status}")
    nonce = payload[2 : 2 + SESSION_NONCE_SIZE]
    (body_len,) = struct.unpack_from("<I", payload, 2 + SESSION_NONCE_SIZE)
    offset = prefix
    if len(payload) < offset + body_len + 4:
        raise WireFormatError(f"{name} payload is too short to parse")
    body = decode_control_body(payload[offset : offset + body_len], name)
    offset += body_len
    (att_len,) = struct.unpack_from("<I", payload, offset)
    offset += 4
    expected = offset + att_len + SESSION_MAC_SIZE
    if len(payload) != expected:
        raise WireFormatError(
            f"{name} payload must be {expected} bytes for a "
            f"{att_len}-byte attachment, got {len(payload)}"
        )
    return ControlReply(
        status=status,
        nonce=nonce,
        body=body,
        attachment=payload[offset : offset + att_len],
        mac=payload[offset + att_len :],
    )


def _decode(
    kind: int,
    m: int,
    n: int,
    round_id: int,
    payload,
    version: int = WIRE_VERSION,
):
    name = _KIND_NAMES[kind]
    if m <= 0:
        raise WireFormatError(f"{name} frame declares non-positive width m={m}")
    if kind in (KIND_BLINDED, KIND_SHARE):
        if len(payload) != 8 * m:
            raise WireFormatError(
                f"{name} payload must be {8 * m} bytes for m={m}, "
                f"got {len(payload)}"
            )
        # Zero-copy, like the chunk path: the words are a numpy view
        # over the caller's buffer (read-only when the buffer is).
        words = np.frombuffer(payload, dtype="<u8")
        cls = BlindedCounts if kind == KIND_BLINDED else BlindingShare
        return cls(m=m, round_id=round_id, n=n, words=words)
    if kind not in (KIND_SNAPSHOT, KIND_CHUNK):
        # Session payloads materialize as bytes at this boundary: they
        # carry UTF-8 strings / fixed-size nonces (or, for records, a
        # frame the ledger digests), are tiny next to chunk traffic, and
        # their dataclasses promise `bytes` fields.
        if not isinstance(payload, bytes):
            _note_copy("session-payload", len(payload))
            payload = bytes(payload)
        return _decode_session(kind, m, n, round_id, payload, version)
    if kind == KIND_SNAPSHOT:
        if len(payload) != 8 * m:
            raise WireFormatError(
                f"snapshot payload must be {8 * m} bytes for m={m}, "
                f"got {len(payload)}"
            )
        # One copy, inside from_state's astype: the accumulator must own
        # writable counts.  frombuffer itself is a view over the payload.
        _note_copy("snapshot-counts", len(payload))
        counts = np.frombuffer(payload, dtype="<i8")
        try:
            return CountAccumulator.from_state(m, counts, n, round_id=round_id)
        except ValidationError as exc:
            raise WireFormatError(f"snapshot state is invalid: {exc}") from exc
    width = packed_width(m)
    if len(payload) != n * width:
        raise WireFormatError(
            f"chunk payload must be {n * width} bytes for n={n} rows of "
            f"width {width}, got {len(payload)}"
        )
    # Zero-copy: the rows are a numpy view over the caller's buffer
    # (read-only when the buffer is).  add_packed_reports consumes such
    # views directly; the caller keeps the buffer alive.
    rows = np.frombuffer(payload, dtype=np.uint8).reshape(n, width)
    return PackedChunk(m=m, round_id=round_id, rows=rows)


def loads(data):
    """Decode exactly one frame from *data* (no trailing bytes allowed).

    *data* may be any byte buffer — ``bytes``, ``bytearray``,
    ``memoryview``, an ``mmap`` — and is never copied wholesale: a
    decoded chunk's rows are a numpy view over it (see the module
    docstring for the buffer-lifetime contract).
    """
    data = memoryview(data)
    version, kind, m, n, round_id, length = _parse_header(data[:HEADER_SIZE])
    expected = HEADER_SIZE + length + _CRC.size
    if len(data) < expected:
        raise WireFormatError(
            f"truncated frame: expected {expected} bytes, got {len(data)}"
        )
    if len(data) > expected:
        raise WireFormatError(
            f"{len(data) - expected} trailing bytes after a {expected}-byte "
            "frame; use iter_frames for concatenated streams"
        )
    payload = data[HEADER_SIZE : HEADER_SIZE + length]
    (stored_crc,) = _CRC.unpack_from(data, HEADER_SIZE + length)
    if stored_crc != zlib.crc32(payload):
        raise WireFormatError(
            "payload checksum mismatch: frame payload is corrupted"
        )
    return _decode(kind, m, n, round_id, payload, version)


def decode_frame_at(buffer, offset: int = 0):
    """Decode one frame at *offset* in an in-memory buffer.

    The random-access sibling of :func:`read_frame`: walk a buffer that
    holds concatenated frames (an mmap'd spill file, a reassembled
    socket buffer) without slicing per-frame ``bytes`` out of it.
    Returns ``(obj, next_offset)`` where *next_offset* is the first byte
    after this frame — feed it back in to walk the stream.  Raises
    :class:`WireFormatError` on every corruption :func:`loads` rejects,
    including truncation at the buffer's end.
    """
    view = memoryview(buffer)
    offset = int(offset)
    if offset < 0 or offset > len(view):
        raise ValidationError(
            f"offset must lie in [0, {len(view)}], got {offset}"
        )
    version, kind, m, n, round_id, length = _parse_header(
        view[offset : offset + HEADER_SIZE]
    )
    body = offset + HEADER_SIZE
    end = body + length + _CRC.size
    if len(view) < end:
        raise WireFormatError(
            f"truncated frame: payload needs {length + _CRC.size} bytes, "
            f"got {len(view) - body}"
        )
    payload = view[body : body + length]
    (stored_crc,) = _CRC.unpack_from(view, body + length)
    if stored_crc != zlib.crc32(payload):
        raise WireFormatError(
            "payload checksum mismatch: frame payload is corrupted"
        )
    return _decode(kind, m, n, round_id, payload, version), end


# ----------------------------------------------------------------------
# Stream IO
# ----------------------------------------------------------------------
def write_frame(stream, obj) -> int:
    """Serialize *obj* onto a binary file object; returns bytes written."""
    frame = dumps(obj)
    stream.write(frame)
    return len(frame)


def read_frame(stream):
    """Read one frame from a binary file object.

    Returns the decoded object, or ``None`` at a clean end of stream
    (EOF exactly on a frame boundary).  EOF *inside* a frame raises
    :class:`WireFormatError` — a spill file cut off mid-write must never
    read as merely shorter.
    """
    head = stream.read(HEADER_SIZE)
    if not head:
        return None
    version, kind, m, n, round_id, length = _parse_header(head)
    rest = stream.read(length + _CRC.size)
    if len(rest) < length + _CRC.size:
        raise WireFormatError(
            f"truncated frame: payload needs {length + _CRC.size} bytes, "
            f"got {len(rest)}"
        )
    # View, not a bytes slice: a decoded chunk's rows alias `rest`
    # directly instead of copying the payload a second time.
    payload = memoryview(rest)[:length]
    (stored_crc,) = _CRC.unpack_from(rest, length)
    if stored_crc != zlib.crc32(payload):
        raise WireFormatError(
            "payload checksum mismatch: frame payload is corrupted"
        )
    return _decode(kind, m, n, round_id, payload, version)


def iter_frames(stream):
    """Yield decoded frames from a binary file object until clean EOF."""
    while (obj := read_frame(stream)) is not None:
        yield obj
