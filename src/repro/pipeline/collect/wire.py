"""Versioned, checksummed binary wire format for collection state.

Everything a distributed deployment ships between machines — packed
report chunks on their way to a collector, accumulator snapshots on
their way to a merger — travels as a *frame*:

``[ header 40 B ][ payload ][ payload CRC32 4 B ]``

with a fixed little-endian header::

    offset  size  field
    0       4     magic  = b"IDLP"
    4       2     format version (currently 1)
    6       2     kind: 1 = accumulator snapshot, 2 = packed chunk
    8       8     m         report width in bits
    16      8     n         users absorbed (snapshot) / rows (chunk)
    24      8     round_id  signed collection-round tag
    32      4     payload length in bytes
    36      4     CRC32 of header bytes [0, 36)

The first 8 bytes (magic + version) are layout-invariant across all
future versions, so any reader can always classify a frame before
parsing the rest.  Snapshot payloads are the ``m`` little-endian
``int64`` counts; chunk payloads are ``n`` rows of ``ceil(m / 8)``
``np.packbits`` bytes.  Headers are self-delimiting (the payload length
is inside the checksummed region), so frames concatenate freely into
spill files and socket streams with no outer framing.

Version 2 adds the *session* frames of the exactly-once collection
service (:mod:`repro.pipeline.service`): an HMAC handshake
(``SessionHello`` → ``SessionChallenge`` → ``SessionProof``), the
``Record`` envelope that wraps a core frame with a producer-assigned
sequence number, and the ``Ack`` status frame.  Session kinds are
version-gated: the core data frames (kinds 1-2) still encode as version
1 — every existing spill file and golden fixture stays byte-identical —
while kinds 3-7 encode as version 2, and a reader refuses a kind paired
with the wrong version.

Version 3 adds *round-scoped session binding* for the multi-round
service: a :class:`SessionChallenge` may carry a 16-byte *round token*
(the hosted round's registration epoch) after the server nonce, and the
producer's proof MAC must bind it — so a proof minted against one
hosted incarnation of a round can never be spent against another, even
one re-registered under the same ``round_id`` after a key rotation.
The gate is per *object*, not per kind: a challenge without a token
still encodes as version 2, byte-identical to every committed fixture;
only a token-carrying challenge encodes as version 3, and a reader
refuses a 32-byte challenge payload claiming version 2 (or vice versa).

Decoding is loud on every failure mode a transport can produce: wrong
magic, unsupported version (the message names found and supported
versions), truncation mid-header or mid-payload, and CRC mismatch on
either region — all as :class:`~repro.exceptions.WireFormatError`.
No pickle anywhere: frames are safe to accept from untrusted producers.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

import numpy as np

from ...exceptions import ValidationError, WireFormatError
from ...kernels import packed_width
from ..accumulator import CountAccumulator

__all__ = [
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "WIRE_VERSION_SESSION",
    "WIRE_VERSION_MULTIROUND",
    "KIND_SNAPSHOT",
    "KIND_CHUNK",
    "KIND_HELLO",
    "KIND_CHALLENGE",
    "KIND_PROOF",
    "KIND_RECORD",
    "KIND_ACK",
    "ACK_SESSION",
    "ACK_MERGED",
    "ACK_DUPLICATE",
    "ACK_REFUSED",
    "HEADER_SIZE",
    "SESSION_NONCE_SIZE",
    "SESSION_MAC_SIZE",
    "SESSION_TOKEN_SIZE",
    "PackedChunk",
    "SessionHello",
    "SessionChallenge",
    "SessionProof",
    "Record",
    "Ack",
    "dump_snapshot",
    "dump_chunk",
    "dumps",
    "loads",
    "write_frame",
    "read_frame",
    "iter_frames",
]

WIRE_MAGIC = b"IDLP"
WIRE_VERSION = 1
WIRE_VERSION_SESSION = 2
WIRE_VERSION_MULTIROUND = 3
KIND_SNAPSHOT = 1
KIND_CHUNK = 2
KIND_HELLO = 3
KIND_CHALLENGE = 4
KIND_PROOF = 5
KIND_RECORD = 6
KIND_ACK = 7

# Ack statuses (the u16 leading the Ack payload).
ACK_SESSION = 1  # handshake accepted; records may flow
ACK_MERGED = 2  # record merged into the round and durably ledgered
ACK_DUPLICATE = 3  # record already ledgered; acked but NOT re-merged
ACK_REFUSED = 4  # auth failure, quota breach, conflict, or bad frame

SESSION_NONCE_SIZE = 16
SESSION_MAC_SIZE = 32  # HMAC-SHA256
SESSION_TOKEN_SIZE = 16  # round registration token (version-3 challenges)

_HEADER = struct.Struct("<4sHHQQqI")
_CRC = struct.Struct("<I")
HEADER_SIZE = _HEADER.size + _CRC.size  # 40 bytes
_KIND_NAMES = {
    KIND_SNAPSHOT: "snapshot",
    KIND_CHUNK: "chunk",
    KIND_HELLO: "session-hello",
    KIND_CHALLENGE: "session-challenge",
    KIND_PROOF: "session-proof",
    KIND_RECORD: "record",
    KIND_ACK: "ack",
}
# Kind <-> version gating: core data frames stay version 1 (their bytes
# are pinned by golden fixtures); session frames require version 2,
# except a round-token-carrying challenge, which requires version 3.
_KIND_VERSIONS = {
    KIND_SNAPSHOT: (WIRE_VERSION,),
    KIND_CHUNK: (WIRE_VERSION,),
    KIND_HELLO: (WIRE_VERSION_SESSION,),
    KIND_CHALLENGE: (WIRE_VERSION_SESSION, WIRE_VERSION_MULTIROUND),
    KIND_PROOF: (WIRE_VERSION_SESSION,),
    KIND_RECORD: (WIRE_VERSION_SESSION,),
    KIND_ACK: (WIRE_VERSION_SESSION,),
}
SUPPORTED_VERSIONS = (
    WIRE_VERSION,
    WIRE_VERSION_SESSION,
    WIRE_VERSION_MULTIROUND,
)


@dataclass(frozen=True)
class PackedChunk:
    """One wire-format chunk of packed unary reports.

    ``rows`` is the ``k x ceil(m / 8)`` ``uint8`` matrix exactly as
    :meth:`~repro.pipeline.accumulator.CountAccumulator.add_packed_reports`
    consumes it; ``m`` and ``round_id`` carry the producer's claimed
    width and round so the consumer can refuse mismatched state *before*
    touching the payload.
    """

    m: int
    round_id: int
    rows: np.ndarray

    @property
    def n(self) -> int:
        """Number of user reports (rows) in this chunk."""
        return int(self.rows.shape[0])


@dataclass(frozen=True)
class SessionHello:
    """Session opener: a producer's claimed identity and round geometry.

    ``nonce`` is the producer's fresh random contribution to the
    handshake transcript; the service answers with its own
    (:class:`SessionChallenge`), and both go under the HMAC so neither
    side can replay a recorded handshake.
    """

    m: int
    round_id: int
    producer_id: str
    nonce: bytes


@dataclass(frozen=True)
class SessionChallenge:
    """Service reply to a hello: the server-side handshake nonce.

    ``round_token`` is the hosted round's registration token (see
    :class:`repro.pipeline.service.RoundRegistry`).  Empty for a
    single-round service — the challenge then encodes as a version-2
    frame, byte-identical to the pre-multiround wire.  When present
    (16 bytes, version-3 frame) the producer must fold it into the
    proof MAC, scoping the session to this exact round incarnation.
    """

    m: int
    round_id: int
    nonce: bytes
    round_token: bytes = b""


@dataclass(frozen=True)
class SessionProof:
    """Producer's HMAC over the handshake transcript (see service.auth)."""

    m: int
    round_id: int
    mac: bytes


@dataclass(frozen=True)
class Record:
    """Exactly-once envelope: one core frame plus a producer sequence.

    ``frame`` is a complete serialized version-1 frame (chunk or
    snapshot); ``seq`` is the producer's durable, monotonically assigned
    sequence number.  The service's idempotency ledger keys on
    ``(producer_id, seq)`` with a digest of ``frame``, so a blind resend
    of an already-merged record is acknowledged but not re-merged, and
    the same ``seq`` with *different* bytes is refused as equivocation.
    """

    m: int
    round_id: int
    seq: int
    frame: bytes

    def decode(self):
        """Decode the enclosed core frame (chunk or snapshot).

        The full CRC check runs even though the envelope's own CRC
        already covered these bytes: the service spills record frames
        verbatim and re-reads them through the checksummed path at
        every recovery, so a record whose *inner* CRC is wrong must be
        refused at ingest — accepting it would poison restart replay.
        """
        return loads(self.frame)


@dataclass(frozen=True)
class Ack:
    """Per-frame service response: a status code plus a detail string."""

    m: int
    round_id: int
    seq: int
    status: int
    detail: str = ""


def _check_chunk_rows(rows, m: int) -> np.ndarray:
    rows = np.ascontiguousarray(rows)
    width = packed_width(m)
    if rows.ndim != 2 or rows.shape[1] != width:
        raise ValidationError(
            f"packed chunk rows must have shape (k, {width}) for m={m}, "
            f"got {rows.shape}"
        )
    if rows.dtype != np.uint8:
        raise ValidationError(f"packed chunk rows must be uint8, got {rows.dtype}")
    return rows


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def _frame(
    kind: int,
    m: int,
    n: int,
    round_id: int,
    payload: bytes,
    *,
    version: int | None = None,
) -> bytes:
    if version is None:
        version = _KIND_VERSIONS[kind][0]
    head = _HEADER.pack(WIRE_MAGIC, version, kind, m, n, round_id, len(payload))
    return b"".join(
        (
            head,
            _CRC.pack(zlib.crc32(head)),
            payload,
            _CRC.pack(zlib.crc32(payload)),
        )
    )


def _check_nonce(nonce: bytes, who: str) -> bytes:
    nonce = bytes(nonce)
    if len(nonce) != SESSION_NONCE_SIZE:
        raise ValidationError(
            f"{who} nonce must be {SESSION_NONCE_SIZE} bytes, got {len(nonce)}"
        )
    return nonce


def dump_snapshot(accumulator: CountAccumulator) -> bytes:
    """Serialize one accumulator's full state as a snapshot frame."""
    if not isinstance(accumulator, CountAccumulator):
        raise ValidationError(
            f"expected a CountAccumulator, got {type(accumulator).__name__}"
        )
    payload = np.ascontiguousarray(accumulator.counts(), dtype="<i8").tobytes()
    return _frame(
        KIND_SNAPSHOT, accumulator.m, accumulator.n, accumulator.round_id, payload
    )


def dump_chunk(rows, m: int, *, round_id: int = 0) -> bytes:
    """Serialize a ``k x ceil(m/8)`` packed report matrix as a chunk frame."""
    rows = _check_chunk_rows(rows, m)
    return _frame(KIND_CHUNK, m, rows.shape[0], int(round_id), rows.tobytes())


def dump_hello(hello: SessionHello) -> bytes:
    """Serialize a session hello (version-2 frame)."""
    producer = hello.producer_id.encode("utf-8")
    if not producer:
        raise ValidationError("producer_id must be a non-empty string")
    if len(producer) > 0xFFFF:
        raise ValidationError(
            f"producer_id is {len(producer)} UTF-8 bytes; the wire caps it "
            "at 65535"
        )
    payload = (
        struct.pack("<H", len(producer))
        + producer
        + _check_nonce(hello.nonce, "hello")
    )
    return _frame(KIND_HELLO, hello.m, 0, hello.round_id, payload)


def dump_challenge(challenge: SessionChallenge) -> bytes:
    """Serialize a session challenge.

    Without a round token the frame is version 2 — byte-identical to
    the single-round wire.  With one it is version 3, the payload being
    ``nonce || round_token``.
    """
    payload = _check_nonce(challenge.nonce, "challenge")
    token = bytes(challenge.round_token)
    if not token:
        return _frame(KIND_CHALLENGE, challenge.m, 0, challenge.round_id, payload)
    if len(token) != SESSION_TOKEN_SIZE:
        raise ValidationError(
            f"challenge round token must be {SESSION_TOKEN_SIZE} bytes, "
            f"got {len(token)}"
        )
    return _frame(
        KIND_CHALLENGE,
        challenge.m,
        0,
        challenge.round_id,
        payload + token,
        version=WIRE_VERSION_MULTIROUND,
    )


def dump_proof(proof: SessionProof) -> bytes:
    """Serialize a session proof (version-2 frame)."""
    mac = bytes(proof.mac)
    if len(mac) != SESSION_MAC_SIZE:
        raise ValidationError(
            f"session proof MAC must be {SESSION_MAC_SIZE} bytes, got {len(mac)}"
        )
    return _frame(KIND_PROOF, proof.m, 0, proof.round_id, mac)


def dump_record(record: Record) -> bytes:
    """Serialize an exactly-once record envelope (version-2 frame)."""
    frame = bytes(record.frame)
    if len(frame) < HEADER_SIZE:
        raise ValidationError(
            f"record must wrap a complete core frame (>= {HEADER_SIZE} "
            f"bytes), got {len(frame)}"
        )
    seq = int(record.seq)
    if seq < 0:
        raise ValidationError(f"record seq must be non-negative, got {seq}")
    return _frame(KIND_RECORD, record.m, seq, record.round_id, frame)


def dump_ack(ack: Ack) -> bytes:
    """Serialize a service acknowledgement (version-2 frame)."""
    if ack.status not in (ACK_SESSION, ACK_MERGED, ACK_DUPLICATE, ACK_REFUSED):
        raise ValidationError(f"unknown ack status {ack.status}")
    payload = struct.pack("<H", ack.status) + ack.detail.encode("utf-8")
    return _frame(KIND_ACK, ack.m, int(ack.seq), ack.round_id, payload)


_SESSION_DUMPERS = {
    SessionHello: dump_hello,
    SessionChallenge: dump_challenge,
    SessionProof: dump_proof,
    Record: dump_record,
    Ack: dump_ack,
}


def dumps(obj) -> bytes:
    """Serialize any wire object (core data frame or session frame)."""
    if isinstance(obj, CountAccumulator):
        return dump_snapshot(obj)
    if isinstance(obj, PackedChunk):
        return dump_chunk(obj.rows, obj.m, round_id=obj.round_id)
    dumper = _SESSION_DUMPERS.get(type(obj))
    if dumper is not None:
        return dumper(obj)
    raise ValidationError(
        f"cannot serialize {type(obj).__name__}; expected CountAccumulator, "
        "PackedChunk, or a session frame object"
    )


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def _parse_header(head: bytes) -> tuple[int, int, int, int, int, int]:
    """Validate a 40-byte header.

    Returns ``(version, kind, m, n, round_id, length)``.
    """
    if len(head) < HEADER_SIZE:
        raise WireFormatError(
            f"truncated frame: header needs {HEADER_SIZE} bytes, got {len(head)}"
        )
    magic, version = head[:4], int.from_bytes(head[4:6], "little")
    if magic != WIRE_MAGIC:
        raise WireFormatError(
            f"bad magic {magic!r}: not a wire-format frame "
            f"(expected {WIRE_MAGIC!r})"
        )
    if version not in SUPPORTED_VERSIONS:
        raise WireFormatError(
            f"unsupported wire-format version {version}; this reader "
            f"supports version {WIRE_VERSION} (core frames), "
            f"{WIRE_VERSION_SESSION} (session frames), and "
            f"{WIRE_VERSION_MULTIROUND} (round-scoped session frames)"
        )
    (stored_crc,) = _CRC.unpack_from(head, _HEADER.size)
    if stored_crc != zlib.crc32(head[: _HEADER.size]):
        raise WireFormatError("header checksum mismatch: frame header is corrupted")
    _, _, kind, m, n, round_id, length = _HEADER.unpack_from(head)
    if kind not in _KIND_NAMES:
        raise WireFormatError(f"unknown frame kind {kind}")
    if version not in _KIND_VERSIONS[kind]:
        allowed = " or ".join(str(v) for v in _KIND_VERSIONS[kind])
        raise WireFormatError(
            f"{_KIND_NAMES[kind]} frames require wire-format version "
            f"{allowed}, got version {version}"
        )
    return version, kind, m, n, round_id, length


def _decode_session(
    kind: int, m: int, n: int, round_id: int, payload: bytes, version: int
):
    name = _KIND_NAMES[kind]
    if kind == KIND_HELLO:
        if len(payload) < 2:
            raise WireFormatError(f"{name} payload is too short to parse")
        (producer_len,) = struct.unpack_from("<H", payload)
        expected = 2 + producer_len + SESSION_NONCE_SIZE
        if len(payload) != expected:
            raise WireFormatError(
                f"{name} payload must be {expected} bytes for a "
                f"{producer_len}-byte producer id, got {len(payload)}"
            )
        try:
            producer_id = payload[2 : 2 + producer_len].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError(f"{name} producer id is not UTF-8") from exc
        if not producer_id:
            raise WireFormatError(f"{name} declares an empty producer id")
        return SessionHello(
            m=m,
            round_id=round_id,
            producer_id=producer_id,
            nonce=payload[2 + producer_len :],
        )
    if kind == KIND_CHALLENGE:
        expected = SESSION_NONCE_SIZE
        if version == WIRE_VERSION_MULTIROUND:
            expected += SESSION_TOKEN_SIZE
        if len(payload) != expected:
            raise WireFormatError(
                f"{name} payload must be {expected} bytes at wire-format "
                f"version {version}, got {len(payload)}"
            )
        return SessionChallenge(
            m=m,
            round_id=round_id,
            nonce=payload[:SESSION_NONCE_SIZE],
            round_token=payload[SESSION_NONCE_SIZE:],
        )
    if kind == KIND_PROOF:
        if len(payload) != SESSION_MAC_SIZE:
            raise WireFormatError(
                f"{name} payload must be {SESSION_MAC_SIZE} bytes, "
                f"got {len(payload)}"
            )
        return SessionProof(m=m, round_id=round_id, mac=payload)
    if kind == KIND_RECORD:
        if len(payload) < HEADER_SIZE:
            raise WireFormatError(
                f"{name} payload must hold a complete core frame "
                f"(>= {HEADER_SIZE} bytes), got {len(payload)}"
            )
        return Record(m=m, round_id=round_id, seq=n, frame=payload)
    # KIND_ACK
    if len(payload) < 2:
        raise WireFormatError(f"{name} payload is too short to parse")
    (status,) = struct.unpack_from("<H", payload)
    if status not in (ACK_SESSION, ACK_MERGED, ACK_DUPLICATE, ACK_REFUSED):
        raise WireFormatError(f"{name} carries unknown status {status}")
    try:
        detail = payload[2:].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireFormatError(f"{name} detail is not UTF-8") from exc
    return Ack(m=m, round_id=round_id, seq=n, status=status, detail=detail)


def _decode(
    kind: int,
    m: int,
    n: int,
    round_id: int,
    payload: bytes,
    version: int = WIRE_VERSION,
):
    name = _KIND_NAMES[kind]
    if m <= 0:
        raise WireFormatError(f"{name} frame declares non-positive width m={m}")
    if kind not in (KIND_SNAPSHOT, KIND_CHUNK):
        return _decode_session(kind, m, n, round_id, payload, version)
    if kind == KIND_SNAPSHOT:
        if len(payload) != 8 * m:
            raise WireFormatError(
                f"snapshot payload must be {8 * m} bytes for m={m}, "
                f"got {len(payload)}"
            )
        counts = np.frombuffer(payload, dtype="<i8").astype(np.int64)
        try:
            return CountAccumulator.from_state(m, counts, n, round_id=round_id)
        except ValidationError as exc:
            raise WireFormatError(f"snapshot state is invalid: {exc}") from exc
    width = packed_width(m)
    if len(payload) != n * width:
        raise WireFormatError(
            f"chunk payload must be {n * width} bytes for n={n} rows of "
            f"width {width}, got {len(payload)}"
        )
    rows = np.frombuffer(payload, dtype=np.uint8).reshape(n, width)
    return PackedChunk(m=m, round_id=round_id, rows=rows)


def loads(data: bytes):
    """Decode exactly one frame from *data* (no trailing bytes allowed)."""
    data = bytes(data)
    version, kind, m, n, round_id, length = _parse_header(data[:HEADER_SIZE])
    expected = HEADER_SIZE + length + _CRC.size
    if len(data) < expected:
        raise WireFormatError(
            f"truncated frame: expected {expected} bytes, got {len(data)}"
        )
    if len(data) > expected:
        raise WireFormatError(
            f"{len(data) - expected} trailing bytes after a {expected}-byte "
            "frame; use iter_frames for concatenated streams"
        )
    payload = data[HEADER_SIZE : HEADER_SIZE + length]
    (stored_crc,) = _CRC.unpack_from(data, HEADER_SIZE + length)
    if stored_crc != zlib.crc32(payload):
        raise WireFormatError(
            "payload checksum mismatch: frame payload is corrupted"
        )
    return _decode(kind, m, n, round_id, payload, version)


# ----------------------------------------------------------------------
# Stream IO
# ----------------------------------------------------------------------
def write_frame(stream, obj) -> int:
    """Serialize *obj* onto a binary file object; returns bytes written."""
    frame = dumps(obj)
    stream.write(frame)
    return len(frame)


def read_frame(stream):
    """Read one frame from a binary file object.

    Returns the decoded object, or ``None`` at a clean end of stream
    (EOF exactly on a frame boundary).  EOF *inside* a frame raises
    :class:`WireFormatError` — a spill file cut off mid-write must never
    read as merely shorter.
    """
    head = stream.read(HEADER_SIZE)
    if not head:
        return None
    version, kind, m, n, round_id, length = _parse_header(head)
    rest = stream.read(length + _CRC.size)
    if len(rest) < length + _CRC.size:
        raise WireFormatError(
            f"truncated frame: payload needs {length + _CRC.size} bytes, "
            f"got {len(rest)}"
        )
    payload = rest[:length]
    (stored_crc,) = _CRC.unpack_from(rest, length)
    if stored_crc != zlib.crc32(payload):
        raise WireFormatError(
            "payload checksum mismatch: frame payload is corrupted"
        )
    return _decode(kind, m, n, round_id, payload, version)


def iter_frames(stream):
    """Yield decoded frames from a binary file object until clean EOF."""
    while (obj := read_frame(stream)) is not None:
        yield obj
