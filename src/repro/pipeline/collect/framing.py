"""Async frame IO shared by every socket surface of the pipeline.

One reader for all of them — the lab :class:`~.collector.Collector`,
the exactly-once service's server, and the service client — so
truncation handling, the declared-length cap, and the idle-timeout
contract can never drift between endpoints.
"""

from __future__ import annotations

import asyncio

from ...exceptions import QuotaExceededError, WireFormatError
from . import wire

__all__ = ["read_frame_bytes", "read_session_frame"]


async def read_frame_bytes(
    reader: asyncio.StreamReader,
    *,
    max_frame_bytes: int | None = None,
    header_timeout: float | None = None,
    payload_timeout: float | None = None,
) -> bytes | None:
    """Read one complete raw frame; ``None`` at clean EOF.

    The declared payload length is checked against *max_frame_bytes*
    **before** the payload is read, so an oversized (or hostile) length
    field can never balloon this connection's buffer — the frame is
    refused at header-parse time.

    *header_timeout* bounds the wait for the frame's **first** byte
    window (the header) and raises :class:`asyncio.TimeoutError` when
    it elapses — the caller's idle signal (group-commit flush or
    session reap).  Timing out is safe: ``readexactly`` extracts
    nothing from the stream buffer until the full header has arrived,
    so a timed-out read consumes zero bytes and the next call starts on
    the same frame boundary.

    *payload_timeout* bounds the payload read and raises
    :class:`WireFormatError` — a distinct type on purpose: a peer that
    stalls *mid-frame* can never resume on a frame boundary, so the
    connection is broken, not idle, and the caller must drop it rather
    than wait or flush-and-retry.
    """
    try:
        head_read = reader.readexactly(wire.HEADER_SIZE)
        if header_timeout is not None:
            head = await asyncio.wait_for(head_read, header_timeout)
        else:
            head = await head_read
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF on a frame boundary
        raise WireFormatError(
            f"truncated frame: header needs {wire.HEADER_SIZE} bytes, "
            f"got {len(exc.partial)}"
        ) from exc
    _, _, _, _, _, length = wire._parse_header(head)
    if max_frame_bytes is not None and length > max_frame_bytes:
        raise QuotaExceededError(
            f"frame declares a {length}-byte payload; this service caps "
            f"frames at {max_frame_bytes} bytes"
        )
    try:
        rest_read = reader.readexactly(length + 4)
        if payload_timeout is not None:
            try:
                rest = await asyncio.wait_for(rest_read, payload_timeout)
            except asyncio.TimeoutError as exc:
                raise WireFormatError(
                    f"stalled mid-frame: peer sent the header but not the "
                    f"{length + 4}-byte payload within {payload_timeout}s"
                ) from exc
        else:
            rest = await rest_read
    except asyncio.IncompleteReadError as exc:
        raise WireFormatError(
            f"truncated frame: payload needs {length + 4} bytes, "
            f"got {len(exc.partial)}"
        ) from exc
    return head + rest


async def read_session_frame(
    reader: asyncio.StreamReader, *, max_frame_bytes: int | None = None
):
    """Read and decode one frame; ``None`` at clean EOF."""
    frame = await read_frame_bytes(reader, max_frame_bytes=max_frame_bytes)
    if frame is None:
        return None
    return wire.loads(frame)
