"""Async ingestion: merge wire frames from concurrent producers live.

The spill/replay path (:mod:`.store`) is batch; real deployments also
need the *online* shape — many producers (devices, edge aggregators,
other collectors) pushing serialized chunks and snapshots at one
collector that keeps a live merged accumulator, PrivCount-style.
:class:`Collector` is that endpoint:

* :meth:`Collector.ingest` / :meth:`Collector.ingest_bytes` — absorb one
  decoded object or raw frame synchronously (ingestion is pure CPU work
  on one chunk; the *async* part is the transport).
* :meth:`Collector.consume` — drain an ``asyncio.Queue`` of frames until
  a ``None`` sentinel (in-process producers).
* :meth:`Collector.serve` — a localhost/socket feed: every connection
  streams frames back to back (the header's payload length delimits
  them).  A connection is a *transaction*: its frames stage into an
  ``O(m)`` side accumulator and merge into the round only when the
  whole stream has validated, acknowledged with the merged-frame
  count.  A stream that fails validation mid-way therefore contributes
  *nothing* — resending it cannot double-count the frames before the
  bad one.  The residual delivery guarantee is at-least-once, not
  exactly-once: if the *ack itself* is lost after a successful merge
  (connection reset in the ack window), a blind resend would count
  twice — producers needing exactness must reconcile (digest check or
  an idempotency protocol; see ROADMAP) before retrying a no-ack send.

All ingestion funnels through one code path, so queue producers, socket
producers, and direct calls interleave freely into the same round state;
asyncio's single-threaded scheduling makes each merge atomic without
locks.  :func:`send_frames` is the matching client helper.
"""

from __future__ import annotations

import asyncio
import struct

from ...exceptions import ValidationError, WireFormatError
from ..accumulator import CountAccumulator
from . import wire
from .framing import read_frame_bytes

__all__ = ["Collector", "send_frames", "apply_frame_object"]


def apply_frame_object(obj, accumulator: CountAccumulator) -> None:
    """Absorb one decoded snapshot or chunk into *accumulator*.

    The single merge rule shared by every ingestion surface — the
    :class:`Collector` transports here and the exactly-once service's
    live merge and spill replay (:mod:`repro.pipeline.service.server`) —
    so width/round refusals behave identically everywhere.
    """
    if isinstance(obj, CountAccumulator):
        accumulator.merge(obj)
    elif isinstance(obj, wire.PackedChunk):
        if obj.m != accumulator.m:
            raise ValidationError(
                f"cannot ingest width-{obj.m} chunk into width-"
                f"{accumulator.m} round"
            )
        if obj.round_id != accumulator.round_id:
            raise ValidationError(
                f"cannot ingest round-{obj.round_id} chunk into round "
                f"{accumulator.round_id}"
            )
        accumulator.add_packed_reports(obj.rows)
    else:
        raise ValidationError(
            f"cannot ingest {type(obj).__name__}; expected "
            "CountAccumulator or PackedChunk"
        )


class Collector:
    """Live merged state for one collection round, fed asynchronously.

    Parameters
    ----------
    m:
        Report width in bits; every ingested frame must agree.
    round_id:
        Round tag; snapshots and chunks from other rounds are refused
        (cross-round combination is an estimation-level merge, not a
        count-level one).
    compute:
        Compute backend for the popcount absorbing packed chunks
        (:mod:`repro.kernels.backends`); merged state is bit-identical
        on every backend.
    """

    def __init__(
        self, m: int, *, round_id: int = 0, compute: str = "numpy"
    ) -> None:
        self.accumulator = CountAccumulator(m, round_id=round_id, compute=compute)
        self.frames_ingested = 0
        self.bytes_ingested = 0
        self.connections_failed = 0
        self.last_connection_error: str | None = None
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Ingestion core (shared by every transport)
    # ------------------------------------------------------------------
    def _apply(self, obj, accumulator: CountAccumulator) -> None:
        """Absorb one decoded object into *accumulator* (live or staging)."""
        apply_frame_object(obj, accumulator)

    def ingest(self, obj) -> None:
        """Merge one decoded snapshot or packed chunk into the round."""
        self._apply(obj, self.accumulator)
        self.frames_ingested += 1

    def ingest_bytes(self, frame: bytes) -> None:
        """Decode one raw wire frame and merge it."""
        self.ingest(wire.loads(frame))
        self.bytes_ingested += len(frame)

    # ------------------------------------------------------------------
    # Queue feed
    # ------------------------------------------------------------------
    async def consume(self, queue: asyncio.Queue) -> int:
        """Drain *queue* until a ``None`` sentinel; returns frames merged.

        Items may be raw frame bytes or already-decoded objects
        (:class:`CountAccumulator` / :class:`~.wire.PackedChunk`).
        """
        merged = 0
        while (item := await queue.get()) is not None:
            if isinstance(item, (bytes, bytearray, memoryview)):
                # Buffers decode in place (wire.loads is zero-copy).
                self.ingest_bytes(item)
            else:
                self.ingest(item)
            merged += 1
            queue.task_done()
        queue.task_done()
        return merged

    # ------------------------------------------------------------------
    # Socket feed
    # ------------------------------------------------------------------
    async def _read_frame(self, reader: asyncio.StreamReader):
        return await read_frame_bytes(reader)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # A connection is a transaction: frames accumulate into O(m)
        # staging state and reach the live round only after the whole
        # stream has validated.  A corrupt frame therefore discards the
        # connection's *entire* contribution — the producer gets no ack,
        # and retrying cannot double-count the frames that preceded the
        # bad one.
        staging = CountAccumulator(
            self.accumulator.m,
            round_id=self.accumulator.round_id,
            compute=self.accumulator.compute,
        )
        staged_frames = 0
        staged_bytes = 0
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            try:
                while (frame := await self._read_frame(reader)) is not None:
                    self._apply(wire.loads(frame), staging)
                    staged_frames += 1
                    staged_bytes += len(frame)
            except asyncio.CancelledError:
                # close() cancelled a stalled in-flight stream: treat it
                # as a failed connection (no ack, staging discarded) and
                # finish normally so the served-task callback stays quiet.
                self.connections_failed += 1
                self.last_connection_error = (
                    "collector closed during an in-flight stream"
                )
                return
            except (WireFormatError, ValidationError) as exc:
                # Drop the connection (and its staging) without an ack;
                # the producer sees the hang-up and knows nothing from
                # this stream was merged.  Recorded, not raised: one bad
                # producer must not take the collector down.
                self.connections_failed += 1
                self.last_connection_error = str(exc)
                return
            self.accumulator.merge(staging)
            self.frames_ingested += staged_frames
            self.bytes_ingested += staged_bytes
            # Acknowledge with the merged-frame count only now that the
            # stream is in the round, so producers (and tests) are
            # race-free: ack received == state merged, exactly once.
            writer.write(struct.pack("<Q", staged_frames))
            await writer.drain()
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def serve(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Start accepting framed connections; returns ``(host, port)``.

        ``port=0`` binds an ephemeral port (the common test/localhost
        setup); the bound address comes back so producers can connect.
        """
        if self._server is not None:
            raise ValidationError("collector is already serving")
        self._server = await asyncio.start_server(
            self._handle_connection, host=host, port=port
        )
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def close(self) -> None:
        """Stop accepting connections (already-merged state stays).

        In-flight connection handlers are cancelled and awaited, so a
        stalled producer — connected, never finishing its stream — can
        no longer hang shutdown (its staged frames are discarded, same
        as any other failed connection).
        """
        if self._server is None:
            return
        server, self._server = self._server, None
        server.close()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
            self._conn_tasks.clear()
        await server.wait_closed()


async def send_frames(host: str, port: int, frames) -> int:
    """Producer side: stream frames to a serving collector.

    *frames* is an iterable of ``bytes`` (already wire-encoded) or
    encodable objects (:class:`CountAccumulator` /
    :class:`~.wire.PackedChunk`).  Blocks until the collector
    acknowledges, and returns the number of frames it reports merged
    from this connection — on return the producer's state is in the
    round, not merely in a socket buffer.  On a no-ack error the stream
    was *almost certainly* not merged (the collector discards failed
    streams whole), with one exception: an ack lost in flight after a
    successful merge.  Treat a no-ack retry as at-least-once delivery
    and reconcile by digest where exactness matters.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for frame in frames:
            if not isinstance(frame, (bytes, bytearray, memoryview)):
                frame = wire.dumps(frame)
            # Bytes-like frames go to the transport as-is — no copy.
            writer.write(frame)
        await writer.drain()
        writer.write_eof()
        try:
            ack = await reader.readexactly(8)
        except asyncio.IncompleteReadError as exc:
            raise WireFormatError(
                "collector hung up without acknowledging the stream"
            ) from exc
        return struct.unpack("<Q", ack)[0]
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
