"""Disk-backed shard store: spill packed chunks, aggregate out-of-core.

A collection round at production scale cannot keep every report chunk in
memory, and a collector that discards chunks after counting them cannot
be audited.  :class:`ShardStore` solves both: each shard's packed report
chunks are spilled to an append-only file of wire-format frames as they
are produced, the shard's final accumulator snapshot is written next to
them, and the whole round can later be re-aggregated *out of core* —
one chunk resident at a time — and checked digest-for-digest against
the snapshots without re-contacting a single user.

Layout under the store root::

    round/
        shard_00000.chunks     concatenated chunk frames (append-only)
        shard_00000.index      frame-boundary sidecar (durable writers)
        shard_00000.snapshot   one snapshot frame, written at shard end
        shard_00001.chunks
        ...

Chunk files are self-describing (every frame carries ``m`` and
``round_id``), so a store can be replayed by a process that knows
nothing but the directory path.

Crash safety: snapshots are written atomically (temp file +
``os.replace``), so a crash can never leave a torn snapshot frame.  A
*durable* :class:`ShardChunkWriter` additionally appends each frame's
end offset to a ``.index`` sidecar and exposes :meth:`~ShardChunkWriter.
sync` for fsync-before-ack protocols; :meth:`ShardStore.recover_shard`
then truncates a crashed spill back to its last complete frame (index
fast path plus a frame-scan fallback for spills written without one),
so a restart resumes the shard instead of failing on a partial frame.
"""

from __future__ import annotations

import mmap
import os
import re
import struct
import tempfile

import numpy as np

from ...exceptions import ValidationError, WireFormatError
from ...kernels import packed_width
from ..accumulator import CountAccumulator
from . import wire

__all__ = ["ShardStore", "ShardChunkWriter", "atomic_write_bytes"]

_CHUNK_SUFFIX = ".chunks"
_INDEX_SUFFIX = ".index"
_SNAPSHOT_SUFFIX = ".snapshot"
_INDEX_ENTRY = struct.Struct("<Q")

# Replay releases consumed mmap pages back to the OS in windows of this
# many bytes (page-aligned), so a multi-gigabyte spill replays with a
# bounded resident set instead of faulting the whole file into memory.
_REPLAY_RELEASE_BYTES = 4 * 1024 * 1024


def atomic_write_bytes(path: str, payload: bytes) -> None:
    """Atomically replace *path* with *payload* (temp file + rename).

    The shared torn-write guard: snapshots here, accumulator saves in
    :mod:`repro.io`, and index rewrites during recovery all go through
    this one helper, so a crash can never leave any of them half
    written.
    """
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


class ShardChunkWriter:
    """Append-only writer of one shard's chunk frames.

    Close (or use as a context manager) to flush; a shard that produced
    no chunks still ends up with one empty chunk frame so the file pins
    ``(m, round_id)`` and replays to an empty accumulator rather than
    failing as frameless.

    Parameters
    ----------
    durable:
        Keep a ``.index`` sidecar of frame end offsets and enable
        :meth:`sync` (flush + fsync of both files).  This is what lets a
        service acknowledge a frame only once it can survive a crash,
        and what :meth:`ShardStore.recover_shard` uses to find the last
        complete frame without decoding the whole spill.
    resume:
        Append to an existing spill instead of starting one.  Run
        :meth:`ShardStore.recover_shard` first so the file ends on a
        frame boundary; the writer trusts the current end of file.
    """

    def __init__(
        self,
        path: str,
        m: int,
        *,
        round_id: int = 0,
        durable: bool = False,
        resume: bool = False,
    ) -> None:
        self.path = path
        self.m = int(m)
        self.round_id = int(round_id)
        self.durable = bool(durable)
        self.rows_written = 0
        self.bytes_written = 0
        self.frames_written = 0
        mode = "ab" if resume else "wb"
        self._handle = open(path, mode)
        self._offset = os.path.getsize(path) if resume else 0
        self._index = None
        if self.durable:
            self._index = open(path + _INDEX_SUFFIX, mode)

    @property
    def end_offset(self) -> int:
        """Current end-of-spill offset (a frame boundary after writes)."""
        return self._offset

    def append_frame(self, frame: bytes) -> int:
        """Append one already-encoded frame verbatim; returns its size.

        The raw-bytes entry point for services that spill the exact
        frame a producer sent (so ledgered digests match the file
        contents byte for byte).  The caller is responsible for having
        validated the frame; :meth:`write` is the validating path.
        """
        if self._handle is None:
            raise ValidationError(f"writer for {self.path} is closed")
        self._handle.write(frame)
        self._offset += len(frame)
        if self._index is not None:
            self._index.write(_INDEX_ENTRY.pack(self._offset))
        self.bytes_written += len(frame)
        self.frames_written += 1
        return len(frame)

    def write(self, rows) -> int:
        """Append one packed chunk; returns frame bytes written."""
        if self._handle is None:
            raise ValidationError(f"writer for {self.path} is closed")
        frame = wire.dump_chunk(rows, self.m, round_id=self.round_id)
        self.append_frame(frame)
        self.rows_written += len(rows)
        return len(frame)

    def rollback(self, offset: int) -> None:
        """Undo appends past *offset* (a prior frame boundary).

        The repair path for a multi-frame append that failed partway
        (e.g. an fsync error mid group-commit): truncate the spill back
        to the last known-good boundary so appended-but-uncommitted
        frames can never be mistaken for committed state.  Index
        entries beyond the boundary are truncated too (entries are
        strictly increasing, so they form a suffix).
        """
        if self._handle is None:
            raise ValidationError(f"writer for {self.path} is closed")
        offset = int(offset)
        if offset < 0 or offset > self._offset:
            raise ValidationError(
                f"cannot roll back to offset {offset}: spill ends at "
                f"{self._offset}"
            )
        self._handle.flush()
        os.ftruncate(self._handle.fileno(), offset)
        self._offset = offset
        if self._index is not None:
            self._index.flush()
            with open(self.path + _INDEX_SUFFIX, "rb") as handle:
                blob = handle.read()
            blob = blob[: len(blob) - len(blob) % _INDEX_ENTRY.size]
            keep = 0
            for (entry,) in _INDEX_ENTRY.iter_unpack(blob):
                if entry > offset:
                    break
                keep += 1
            os.ftruncate(self._index.fileno(), keep * _INDEX_ENTRY.size)

    def sync(self) -> None:
        """Flush and fsync the spill; flush (only) the index.

        After ``sync`` returns, every appended frame survives a crash —
        the precondition for acknowledging it to a producer.  The index
        sidecar is deliberately *not* fsync'd on the hot path: recovery
        treats it as a fast path and frame-scans any unindexed tail, so
        a lost index entry costs recovery time, never correctness — and
        skipping its fsync removes a third of the per-commit fsyncs.
        """
        if self._handle is None:
            raise ValidationError(f"writer for {self.path} is closed")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        if self._index is not None:
            self._index.flush()

    def close(self, *, finalize: bool = True) -> None:
        """Close the writer.

        With *finalize* (the default) an empty spill gets its one empty
        chunk frame so the file pins ``(m, round_id)``.  ``finalize=
        False`` skips that — the teardown for a writer whose round
        never came to exist (a failed multi-round service constructor
        must be able to drop handles without manufacturing state).
        """
        if self._handle is None:
            return
        if finalize and self.frames_written == 0 and self._offset == 0:
            self.write(np.empty((0, packed_width(self.m)), dtype=np.uint8))
        handle, self._handle = self._handle, None
        handle.close()
        if self._index is not None:
            index, self._index = self._index, None
            index.close()

    def __enter__(self) -> "ShardChunkWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ShardStore:
    """Per-shard spill files plus snapshots, with replay and audit.

    Parameters
    ----------
    root:
        Directory holding the round's spill files; created if missing.
        One store = one collection round (frames carry their round tag,
        and replay refuses mixed rounds).
    """

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)

    def namespaced(self, name) -> "ShardStore":
        """A child store rooted at ``<root>/<name>``.

        The multi-round service hosts one round per namespace
        (``round_00007/``, ...) under a single operator-facing
        directory; each namespace is a complete, self-contained store —
        its own spill files, snapshots, and (for a service round)
        ledger — so rounds can be archived, audited, or deleted
        independently.  Namespace names must be path-safe: exactly one
        new directory level, no separators or traversal.
        """
        name = str(name)
        if (
            not name
            or name in (".", "..")
            or "/" in name
            or "\\" in name
            or os.sep in name
        ):
            raise ValidationError(
                f"store namespace must be a single path-safe component, "
                f"got {name!r}"
            )
        return ShardStore(os.path.join(self.root, name))

    # ------------------------------------------------------------------
    # Paths and discovery
    # ------------------------------------------------------------------
    def chunk_path(self, shard_id: int) -> str:
        return os.path.join(self.root, f"shard_{int(shard_id):05d}{_CHUNK_SUFFIX}")

    def index_path(self, shard_id: int) -> str:
        return self.chunk_path(shard_id) + _INDEX_SUFFIX

    def snapshot_path(self, shard_id: int) -> str:
        return os.path.join(self.root, f"shard_{int(shard_id):05d}{_SNAPSHOT_SUFFIX}")

    def shard_ids(self) -> list[int]:
        """Sorted ids of every shard with a spilled chunk file.

        Only exact ``shard_<digits>.chunks`` names count; foreign files
        an operator drops into the directory (backups, editor litter)
        are ignored rather than crashing every store operation.
        """
        ids = []
        for name in os.listdir(self.root):
            match = re.fullmatch(r"shard_(\d+)" + re.escape(_CHUNK_SUFFIX), name)
            if match:
                ids.append(int(match.group(1)))
        return sorted(ids)

    def spilled_bytes(self) -> int:
        """Total size of all spilled chunk files (snapshots excluded)."""
        return sum(
            os.path.getsize(self.chunk_path(shard_id))
            for shard_id in self.shard_ids()
        )

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def writer(
        self,
        shard_id: int,
        m: int,
        *,
        round_id: int = 0,
        durable: bool = False,
        resume: bool = False,
    ) -> ShardChunkWriter:
        """Open an append-only chunk writer for one shard."""
        return ShardChunkWriter(
            self.chunk_path(shard_id),
            m,
            round_id=round_id,
            durable=durable,
            resume=resume,
        )

    def write_snapshot(self, shard_id: int, accumulator: CountAccumulator) -> str:
        """Persist one shard's final accumulator state; returns the path.

        The write is atomic (temp file + ``os.replace``): readers see
        either the previous snapshot or the new one, never a torn frame.
        """
        path = self.snapshot_path(shard_id)
        atomic_write_bytes(path, wire.dumps(accumulator))
        return path

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def _read_index(self, shard_id: int, file_size: int) -> list[int]:
        """Frame end offsets from the ``.index`` sidecar, crash-tolerant.

        A torn trailing entry (crash mid index append) is dropped, as is
        any offset beyond the chunk file's actual size (index flushed
        ahead of a chunk write that never hit the disk) or out of order.
        """
        path = self.index_path(shard_id)
        if not os.path.exists(path):
            return []
        with open(path, "rb") as handle:
            blob = handle.read()
        blob = blob[: len(blob) - len(blob) % _INDEX_ENTRY.size]
        offsets: list[int] = []
        for (offset,) in _INDEX_ENTRY.iter_unpack(blob):
            if offset > file_size or (offsets and offset <= offsets[-1]):
                break
            offsets.append(offset)
        return offsets

    def recover_shard(
        self, shard_id: int, *, committed_offset: int | None = None
    ) -> dict:
        """Truncate a crashed shard spill back to complete-frame state.

        Finds the last frame boundary — the ``.index`` sidecar is the
        fast path, then a frame-by-frame scan of any unindexed tail — and
        truncates both the chunk file and the sidecar there, discarding a
        partial frame torn by a crash.  With *committed_offset* (a
        service's ledger high-water mark) the spill is instead cut at
        exactly that boundary, so frames that were spilled but never
        acknowledged are dropped and a producer's blind resend cannot
        double-count them.

        Returns ``{"offset", "frames", "discarded_bytes"}`` for the
        recovered spill.
        """
        path = self.chunk_path(shard_id)
        if not os.path.exists(path):
            if committed_offset not in (None, 0):
                raise ValidationError(
                    f"cannot recover shard {shard_id}: ledger commits "
                    f"{committed_offset} spill bytes but no chunk file "
                    f"exists under {self.root}"
                )
            return {"offset": 0, "frames": 0, "discarded_bytes": 0}
        file_size = os.path.getsize(path)
        offsets = self._read_index(shard_id, file_size)
        end = offsets[-1] if offsets else 0
        frames = len(offsets)
        # Scan the unindexed tail (non-durable writers have no index at
        # all) for further complete frames.
        with open(path, "rb") as handle:
            handle.seek(end)
            while True:
                try:
                    if wire.read_frame(handle) is None:
                        break
                except WireFormatError:
                    break
                end = handle.tell()
                frames += 1
                offsets.append(end)
        if committed_offset is not None:
            if committed_offset > end:
                raise ValidationError(
                    f"cannot recover shard {shard_id}: ledger commits "
                    f"offset {committed_offset} but only {end} bytes of "
                    "complete frames survive on disk"
                )
            if committed_offset not in offsets and committed_offset != 0:
                raise ValidationError(
                    f"cannot recover shard {shard_id}: committed offset "
                    f"{committed_offset} is not a frame boundary"
                )
            while offsets and offsets[-1] > committed_offset:
                offsets.pop()
                frames -= 1
            end = committed_offset
        discarded = file_size - end
        if discarded:
            with open(path, "r+b") as handle:
                handle.truncate(end)
        if os.path.exists(self.index_path(shard_id)):
            atomic_write_bytes(
                self.index_path(shard_id),
                b"".join(_INDEX_ENTRY.pack(offset) for offset in offsets),
            )
        return {"offset": end, "frames": frames, "discarded_bytes": discarded}

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load_snapshot(self, shard_id: int) -> CountAccumulator:
        """Load one shard's snapshot frame."""
        path = self.snapshot_path(shard_id)
        if not os.path.exists(path):
            raise ValidationError(f"no snapshot for shard {shard_id} under {self.root}")
        with open(path, "rb") as handle:
            return wire.loads(handle.read())

    def replay_shard(
        self, shard_id: int, *, compute: str = "numpy"
    ) -> CountAccumulator:
        """Re-aggregate one shard from its spilled chunks, out of core.

        The spill file is mmap'd and decoded in place: each chunk's rows
        are a read-only numpy view over the mapped pages (never a
        per-frame ``bytes`` copy), and the consumed prefix is released
        back to the OS (``madvise(MADV_DONTNEED)``) as the walk passes
        it, so peak resident memory stays bounded by the release window
        regardless of spill size.  *compute* selects the popcount
        backend (:mod:`repro.kernels.backends`); the replayed state is
        bit-identical on every backend.
        """
        path = self.chunk_path(shard_id)
        if not os.path.exists(path):
            raise ValidationError(
                f"no spilled chunks for shard {shard_id} under {self.root}"
            )
        if os.path.getsize(path) == 0:
            raise WireFormatError(f"{path} holds no frames")
        accumulator = None
        with open(path, "rb") as handle:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        try:
            view = memoryview(mapped)
            try:
                offset, released, size = 0, 0, len(view)
                can_release = hasattr(mapped, "madvise") and hasattr(
                    mmap, "MADV_DONTNEED"
                )
                while offset < size:
                    chunk, offset = wire.decode_frame_at(view, offset)
                    if not isinstance(chunk, wire.PackedChunk):
                        raise WireFormatError(
                            f"{path} holds a non-chunk frame "
                            f"({type(chunk).__name__}); chunk files carry "
                            "packed report chunks only"
                        )
                    if accumulator is None:
                        accumulator = CountAccumulator(
                            chunk.m, round_id=chunk.round_id, compute=compute
                        )
                    elif (
                        chunk.m != accumulator.m
                        or chunk.round_id != accumulator.round_id
                    ):
                        raise WireFormatError(
                            f"{path} mixes (m={chunk.m}, "
                            f"round={chunk.round_id}) into a "
                            f"(m={accumulator.m}, "
                            f"round={accumulator.round_id}) shard"
                        )
                    accumulator.add_packed_reports(chunk.rows)
                    # Drop the rows view before releasing its pages.
                    chunk = None
                    if can_release:
                        boundary = offset - offset % mmap.PAGESIZE
                        if boundary - released >= _REPLAY_RELEASE_BYTES:
                            mapped.madvise(
                                mmap.MADV_DONTNEED, released, boundary - released
                            )
                            released = boundary
            finally:
                # The exported buffer must go before the map can close.
                del view
        finally:
            try:
                mapped.close()
            except BufferError:
                # An escaping error left a decoded view aliasing the map;
                # the OS reclaims it when those references are collected.
                pass
        return accumulator

    def replay(self, *, compute: str = "numpy") -> CountAccumulator:
        """Re-aggregate the whole round: replay every shard and merge."""
        ids = self.shard_ids()
        if not ids:
            raise ValidationError(f"no spilled shards under {self.root}")
        return CountAccumulator.merge_all(
            self.replay_shard(shard_id, compute=compute) for shard_id in ids
        )

    # ------------------------------------------------------------------
    # Audit
    # ------------------------------------------------------------------
    def audit(self) -> dict[int, dict]:
        """Replay every shard and compare digests against its snapshot.

        Returns ``{shard_id: {"snapshot_digest", "replay_digest",
        "match"}}``; a shard without a snapshot gets ``snapshot_digest
        None`` and ``match False``.  A full-round pass means the spilled
        chunks reproduce each reported shard state bit for bit.

        Needing the round's merged state as well?  Use
        :meth:`replay_and_audit` — it decodes every chunk file once
        instead of twice.
        """
        return self.replay_and_audit()[1]

    def replay_and_audit(
        self, *, compute: str = "numpy"
    ) -> tuple[CountAccumulator, dict[int, dict]]:
        """One out-of-core pass: the merged round plus the audit report.

        Equivalent to ``(replay(), audit())`` but each spilled chunk
        file is decoded, CRC-checked, and popcounted exactly once — at
        production spill sizes the decode pass dominates, so callers
        that want both must not pay it twice.
        """
        merged: CountAccumulator | None = None
        report: dict[int, dict] = {}
        for shard_id in self.shard_ids():
            replayed = self.replay_shard(shard_id, compute=compute)
            snapshot_digest = None
            if os.path.exists(self.snapshot_path(shard_id)):
                snapshot_digest = self.load_snapshot(shard_id).digest()
            report[shard_id] = {
                "snapshot_digest": snapshot_digest,
                "replay_digest": replayed.digest(),
                "match": snapshot_digest == replayed.digest(),
            }
            merged = replayed if merged is None else merged.merge(replayed)
        if merged is None:
            raise ValidationError(f"no spilled shards under {self.root}")
        return merged, report
