"""Disk-backed shard store: spill packed chunks, aggregate out-of-core.

A collection round at production scale cannot keep every report chunk in
memory, and a collector that discards chunks after counting them cannot
be audited.  :class:`ShardStore` solves both: each shard's packed report
chunks are spilled to an append-only file of wire-format frames as they
are produced, the shard's final accumulator snapshot is written next to
them, and the whole round can later be re-aggregated *out of core* —
one chunk resident at a time — and checked digest-for-digest against
the snapshots without re-contacting a single user.

Layout under the store root::

    round/
        shard_00000.chunks     concatenated chunk frames (append-only)
        shard_00000.snapshot   one snapshot frame, written at shard end
        shard_00001.chunks
        ...

Chunk files are self-describing (every frame carries ``m`` and
``round_id``), so a store can be replayed by a process that knows
nothing but the directory path.
"""

from __future__ import annotations

import os
import re

import numpy as np

from ...exceptions import ValidationError, WireFormatError
from ...kernels import packed_width
from ..accumulator import CountAccumulator
from . import wire

__all__ = ["ShardStore", "ShardChunkWriter"]

_CHUNK_SUFFIX = ".chunks"
_SNAPSHOT_SUFFIX = ".snapshot"


class ShardChunkWriter:
    """Append-only writer of one shard's chunk frames.

    Close (or use as a context manager) to flush; a shard that produced
    no chunks still ends up with one empty chunk frame so the file pins
    ``(m, round_id)`` and replays to an empty accumulator rather than
    failing as frameless.
    """

    def __init__(self, path: str, m: int, *, round_id: int = 0) -> None:
        self.path = path
        self.m = int(m)
        self.round_id = int(round_id)
        self.rows_written = 0
        self.bytes_written = 0
        self.frames_written = 0
        self._handle = open(path, "wb")

    def write(self, rows) -> int:
        """Append one packed chunk; returns frame bytes written."""
        if self._handle is None:
            raise ValidationError(f"writer for {self.path} is closed")
        frame = wire.dump_chunk(rows, self.m, round_id=self.round_id)
        self._handle.write(frame)
        self.rows_written += len(rows)
        self.bytes_written += len(frame)
        self.frames_written += 1
        return len(frame)

    def close(self) -> None:
        if self._handle is None:
            return
        if self.frames_written == 0:
            self.write(np.empty((0, packed_width(self.m)), dtype=np.uint8))
        handle, self._handle = self._handle, None
        handle.close()

    def __enter__(self) -> "ShardChunkWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ShardStore:
    """Per-shard spill files plus snapshots, with replay and audit.

    Parameters
    ----------
    root:
        Directory holding the round's spill files; created if missing.
        One store = one collection round (frames carry their round tag,
        and replay refuses mixed rounds).
    """

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)

    # ------------------------------------------------------------------
    # Paths and discovery
    # ------------------------------------------------------------------
    def chunk_path(self, shard_id: int) -> str:
        return os.path.join(self.root, f"shard_{int(shard_id):05d}{_CHUNK_SUFFIX}")

    def snapshot_path(self, shard_id: int) -> str:
        return os.path.join(self.root, f"shard_{int(shard_id):05d}{_SNAPSHOT_SUFFIX}")

    def shard_ids(self) -> list[int]:
        """Sorted ids of every shard with a spilled chunk file.

        Only exact ``shard_<digits>.chunks`` names count; foreign files
        an operator drops into the directory (backups, editor litter)
        are ignored rather than crashing every store operation.
        """
        ids = []
        for name in os.listdir(self.root):
            match = re.fullmatch(r"shard_(\d+)" + re.escape(_CHUNK_SUFFIX), name)
            if match:
                ids.append(int(match.group(1)))
        return sorted(ids)

    def spilled_bytes(self) -> int:
        """Total size of all spilled chunk files (snapshots excluded)."""
        return sum(
            os.path.getsize(self.chunk_path(shard_id))
            for shard_id in self.shard_ids()
        )

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def writer(self, shard_id: int, m: int, *, round_id: int = 0) -> ShardChunkWriter:
        """Open an append-only chunk writer for one shard."""
        return ShardChunkWriter(self.chunk_path(shard_id), m, round_id=round_id)

    def write_snapshot(self, shard_id: int, accumulator: CountAccumulator) -> str:
        """Persist one shard's final accumulator state; returns the path."""
        path = self.snapshot_path(shard_id)
        with open(path, "wb") as handle:
            wire.write_frame(handle, accumulator)
        return path

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load_snapshot(self, shard_id: int) -> CountAccumulator:
        """Load one shard's snapshot frame."""
        path = self.snapshot_path(shard_id)
        if not os.path.exists(path):
            raise ValidationError(f"no snapshot for shard {shard_id} under {self.root}")
        with open(path, "rb") as handle:
            return wire.loads(handle.read())

    def replay_shard(self, shard_id: int) -> CountAccumulator:
        """Re-aggregate one shard from its spilled chunks, out of core."""
        path = self.chunk_path(shard_id)
        if not os.path.exists(path):
            raise ValidationError(
                f"no spilled chunks for shard {shard_id} under {self.root}"
            )
        accumulator = None
        with open(path, "rb") as handle:
            for chunk in wire.iter_frames(handle):
                if not isinstance(chunk, wire.PackedChunk):
                    raise WireFormatError(
                        f"{path} holds a non-chunk frame "
                        f"({type(chunk).__name__}); chunk files carry "
                        "packed report chunks only"
                    )
                if accumulator is None:
                    accumulator = CountAccumulator(
                        chunk.m, round_id=chunk.round_id
                    )
                elif chunk.m != accumulator.m or chunk.round_id != accumulator.round_id:
                    raise WireFormatError(
                        f"{path} mixes (m={chunk.m}, round={chunk.round_id}) "
                        f"into a (m={accumulator.m}, "
                        f"round={accumulator.round_id}) shard"
                    )
                accumulator.add_packed_reports(chunk.rows)
        if accumulator is None:
            raise WireFormatError(f"{path} holds no frames")
        return accumulator

    def replay(self) -> CountAccumulator:
        """Re-aggregate the whole round: replay every shard and merge."""
        ids = self.shard_ids()
        if not ids:
            raise ValidationError(f"no spilled shards under {self.root}")
        return CountAccumulator.merge_all(
            self.replay_shard(shard_id) for shard_id in ids
        )

    # ------------------------------------------------------------------
    # Audit
    # ------------------------------------------------------------------
    def audit(self) -> dict[int, dict]:
        """Replay every shard and compare digests against its snapshot.

        Returns ``{shard_id: {"snapshot_digest", "replay_digest",
        "match"}}``; a shard without a snapshot gets ``snapshot_digest
        None`` and ``match False``.  A full-round pass means the spilled
        chunks reproduce each reported shard state bit for bit.

        Needing the round's merged state as well?  Use
        :meth:`replay_and_audit` — it decodes every chunk file once
        instead of twice.
        """
        return self.replay_and_audit()[1]

    def replay_and_audit(self) -> tuple[CountAccumulator, dict[int, dict]]:
        """One out-of-core pass: the merged round plus the audit report.

        Equivalent to ``(replay(), audit())`` but each spilled chunk
        file is decoded, CRC-checked, and popcounted exactly once — at
        production spill sizes the decode pass dominates, so callers
        that want both must not pay it twice.
        """
        merged: CountAccumulator | None = None
        report: dict[int, dict] = {}
        for shard_id in self.shard_ids():
            replayed = self.replay_shard(shard_id)
            snapshot_digest = None
            if os.path.exists(self.snapshot_path(shard_id)):
                snapshot_digest = self.load_snapshot(shard_id).digest()
            report[shard_id] = {
                "snapshot_digest": snapshot_digest,
                "replay_digest": replayed.digest(),
                "match": snapshot_digest == replayed.digest(),
            }
            merged = replayed if merged is None else merged.merge(replayed)
        if merged is None:
            raise ValidationError(f"no spilled shards under {self.root}")
        return merged, report
