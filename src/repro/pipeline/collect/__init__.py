"""Durable collection: wire format, disk-backed shards, async ingestion.

The three pieces a distributed deployment of the pipeline needs between
"devices perturb" and "collector estimates":

* :mod:`.wire` — the versioned, CRC-checksummed binary frame format for
  :class:`~repro.pipeline.accumulator.CountAccumulator` snapshots and
  packed report chunks (``dumps``/``loads`` plus file/stream IO).  See
  ``docs/wire_format.md`` for the byte layout and versioning rules.
* :mod:`.store` — :class:`ShardStore`, append-only per-shard spill files
  of chunk frames with out-of-core replay and digest-based audit.
* :mod:`.collector` — :class:`Collector`, an asyncio endpoint merging
  frames from concurrent producers (queue or localhost socket feed)
  into a live accumulator, with :func:`send_frames` as the client side.

Everything round-trips bit-exactly: a round spilled and replayed, or
shipped frame-by-frame through a collector socket, reproduces the
in-memory :func:`~repro.pipeline.engine.stream_counts` state digest for
digest.
"""

from .collector import Collector, apply_frame_object, send_frames
from .store import ShardChunkWriter, ShardStore
from .wire import (
    HEADER_SIZE,
    KIND_ACK,
    KIND_CHALLENGE,
    KIND_CHUNK,
    KIND_HELLO,
    KIND_PROOF,
    KIND_RECORD,
    KIND_SNAPSHOT,
    WIRE_MAGIC,
    WIRE_VERSION,
    WIRE_VERSION_SESSION,
    Ack,
    PackedChunk,
    Record,
    SessionChallenge,
    SessionHello,
    SessionProof,
    dump_chunk,
    dump_snapshot,
    dumps,
    iter_frames,
    loads,
    read_frame,
    write_frame,
)

__all__ = [
    "Collector",
    "send_frames",
    "apply_frame_object",
    "ShardStore",
    "ShardChunkWriter",
    "PackedChunk",
    "SessionHello",
    "SessionChallenge",
    "SessionProof",
    "Record",
    "Ack",
    "dumps",
    "loads",
    "dump_snapshot",
    "dump_chunk",
    "write_frame",
    "read_frame",
    "iter_frames",
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "WIRE_VERSION_SESSION",
    "KIND_SNAPSHOT",
    "KIND_CHUNK",
    "KIND_HELLO",
    "KIND_CHALLENGE",
    "KIND_PROOF",
    "KIND_RECORD",
    "KIND_ACK",
    "HEADER_SIZE",
]
