"""Chunked perturbation engine: the exact per-user path in bounded memory.

The naive exact path (:mod:`repro.simulation.exact`) materializes the
full ``n x m`` report matrix, which at Kosarak scale (``m = 41,270``,
``n = 10^6``) is ~40 GB before the aggregation even starts.  This engine
instead streams users through the mechanism in chunks of configurable
size: only one ``chunk_size x m`` block (plus the mechanism's internal
uniform draw of the same shape) is ever alive, so peak additional memory
is ``O(chunk_size * m)`` and the per-bit counts come out of a
:class:`~repro.pipeline.accumulator.CountAccumulator` in ``O(m)`` state.

Every chunk is produced by the mechanism's own ``perturb_many`` — this
is the *real* encode→perturb→aggregate protocol, not the binomial
shortcut of :mod:`repro.simulation.fast` — so with a single chunk
(``chunk_size >= n``) the counts are bit-identical to a one-shot
``perturb_many`` call with the same generator.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_int_array, check_positive_int, check_rng
from ..datasets.base import ItemsetDataset
from ..exceptions import ValidationError
from ..kernels import resolve_sampler
from ..mechanisms.base import CategoricalMechanism, Mechanism, UnaryMechanism
from ..mechanisms.idue_ps import IDUEPS
from .accumulator import CountAccumulator

__all__ = ["report_width", "iter_report_chunks", "stream_counts"]


def report_width(mechanism: Mechanism) -> int:
    """Width of one released report in bits (or histogram bins).

    The extended domain ``m + ell`` for Padding-and-Sampling pipelines,
    the plain item domain ``m`` otherwise.
    """
    if isinstance(mechanism, IDUEPS):
        return mechanism.extended_m
    return mechanism.m


def _iter_user_slices(n: int, chunk_size: int):
    for start in range(0, n, chunk_size):
        yield start, min(n, start + chunk_size)


def iter_report_chunks(
    mechanism: Mechanism,
    data,
    *,
    chunk_size: int = 4096,
    rng=None,
    packed: bool = False,
    sampler=None,
):
    """Yield per-chunk released reports for a whole dataset.

    Parameters
    ----------
    mechanism:
        A :class:`UnaryMechanism` or :class:`CategoricalMechanism` (with
        *data* a 1-D array of single-item inputs), or an :class:`IDUEPS`
        (with *data* an :class:`ItemsetDataset`).
    data:
        The users' private inputs; only ``chunk_size`` of them are
        processed at a time.
    chunk_size:
        Users per chunk; peak memory scales linearly with it.
    rng:
        Generator / seed / None, consumed chunk by chunk — results are
        reproducible given ``(seed, chunk_size)``.
    packed:
        For bit-vector mechanisms, emit ``np.packbits``-packed ``uint8``
        chunks (the transport wire format, 8x smaller).  Invalid for
        categorical mechanisms, whose report is already a single id per
        user.
    sampler:
        ``None`` / ``"bitexact"`` / ``"fast"`` / a
        :class:`~repro.kernels.SamplerConfig`.  The default keeps the
        fixed-seed float64 streams; ``"fast"`` draws each chunk through
        the packed bit-plane kernel, in which case ``packed=True``
        chunks come straight out of the kernel with no 0/1 matrix or
        ``np.packbits`` pass at all.

    Yields
    ------
    ``chunk_size x width`` 0/1 ``int8`` matrices (unary), packed
    ``uint8`` matrices (``packed=True``), or 1-D ``int64`` id arrays
    (categorical).
    """
    chunk_size = check_positive_int(chunk_size, "chunk_size")
    rng = check_rng(rng)
    sampler = resolve_sampler(sampler)

    if isinstance(mechanism, IDUEPS):
        if not isinstance(data, ItemsetDataset):
            raise ValidationError(
                f"IDUEPS streams an ItemsetDataset, got {type(data).__name__}"
            )
        if data.m != mechanism.m:
            raise ValidationError(
                f"dataset domain {data.m} does not match mechanism domain "
                f"{mechanism.m}"
            )
        for start, stop in _iter_user_slices(data.n, chunk_size):
            shard = data.slice_users(start, stop)
            if packed:
                yield mechanism.perturb_many_packed(
                    shard.flat_items, shard.offsets, rng, sampler=sampler
                )
            else:
                yield mechanism.perturb_many(
                    shard.flat_items, shard.offsets, rng, sampler=sampler
                )
        return

    if not isinstance(mechanism, (UnaryMechanism, CategoricalMechanism)):
        raise ValidationError(
            f"cannot stream reports for {type(mechanism).__name__}; expected a "
            "UnaryMechanism, CategoricalMechanism, or IDUEPS"
        )
    items = as_int_array(data, "data")
    if items.ndim != 1:
        raise ValidationError(f"data must be a 1-D item array, got shape {items.shape}")
    if items.size and (items.min() < 0 or items.max() >= mechanism.m):
        raise ValidationError(f"inputs fall outside domain [0, {mechanism.m - 1}]")

    if isinstance(mechanism, CategoricalMechanism):
        if packed:
            raise ValidationError(
                "packed=True only applies to bit-vector reports; categorical "
                "mechanisms already release one id per user"
            )
        for start, stop in _iter_user_slices(items.size, chunk_size):
            yield mechanism.perturb_many(items[start:stop], rng, sampler=sampler)
        return

    for start, stop in _iter_user_slices(items.size, chunk_size):
        if packed:
            yield mechanism.perturb_many_packed(
                items[start:stop], rng, sampler=sampler
            )
        else:
            yield mechanism.perturb_many(items[start:stop], rng, sampler=sampler)


def stream_counts(
    mechanism: Mechanism,
    data,
    *,
    chunk_size: int = 4096,
    rng=None,
    packed: bool = False,
    round_id: int | None = None,
    accumulator: CountAccumulator | None = None,
    sampler=None,
    chunk_sink=None,
) -> CountAccumulator:
    """Run the exact per-user path end to end with bounded memory.

    Streams every chunk from :func:`iter_report_chunks` straight into a
    :class:`CountAccumulator` and returns it; nothing proportional to
    ``n x m`` is ever allocated.  With ``packed=True`` the chunks make a
    round trip through the ``np.packbits`` wire format first, exercising
    what a real transport would ship.

    *sampler* selects the perturbation kernel (see
    :func:`iter_report_chunks`).  The throughput configuration is
    ``sampler="fast"`` with ``packed=True``: chunks leave the bit-plane
    kernel already packed and are absorbed by the accumulator's
    columnwise popcount, so no per-bit array exists anywhere in the
    loop.

    Pass *accumulator* to continue filling an existing round (e.g. users
    arriving in waves); its width must match the mechanism's, and a
    *round_id* given alongside it must match its round.

    *chunk_sink*, if given, is called with every released chunk exactly
    as the accumulator is about to see it — the tap used by
    :class:`~repro.pipeline.collect.ShardStore` spilling (durable
    replay/audit files) and by transports that forward chunks while
    counting them.  The sink must not mutate the chunk.
    """
    width = report_width(mechanism)
    if accumulator is None:
        # The accumulator inherits the sampler's compute backend, so
        # `--compute threaded` accelerates both sides of the loop (the
        # popcount is exact on every backend; see repro.kernels.backends).
        accumulator = CountAccumulator(
            width,
            round_id=0 if round_id is None else round_id,
            compute=resolve_sampler(sampler).compute,
        )
    elif accumulator.m != width:
        raise ValidationError(
            f"accumulator width {accumulator.m} does not match report width {width}"
        )
    elif round_id is not None and accumulator.round_id != round_id:
        raise ValidationError(
            f"round_id={round_id} conflicts with the accumulator's round "
            f"{accumulator.round_id}"
        )
    categorical = isinstance(mechanism, CategoricalMechanism)
    for chunk in iter_report_chunks(
        mechanism, data, chunk_size=chunk_size, rng=rng, packed=packed,
        sampler=sampler,
    ):
        if chunk_sink is not None:
            chunk_sink(chunk)
        if categorical:
            accumulator.add_categories(chunk)
        elif packed:
            accumulator.add_packed_reports(chunk)
        else:
            accumulator.add_reports(chunk)
    return accumulator
