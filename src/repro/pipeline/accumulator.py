"""Mergeable bounded-memory count accumulators.

A :class:`CountAccumulator` is the collector-side state of one streaming
round: per-bit 1-counts, the number of users absorbed, and round
metadata.  Its :meth:`~CountAccumulator.merge` is *exact* — integer
counter addition, in the style of PrivCount's mergeable counters — so
sharding users across processes (or collectors across machines) and
merging afterwards yields bit-identical state to a single sequential
pass over the same reports.

Memory is ``O(m)`` regardless of how many users stream through, which is
what lets :mod:`repro.pipeline.engine` run the exact per-user protocol
at paper scale (Kosarak: ``m = 41,270``, a million users) without ever
holding the ``n x m`` report matrix.
"""

from __future__ import annotations

import hashlib
import struct

import numpy as np

from .._validation import check_positive_int
from ..estimation.frequency import FrequencyEstimator
from ..estimation.merge import RoundEstimate
from ..exceptions import ValidationError
from ..kernels import get_compute_backend, packed_width
from ..mechanisms.base import CategoricalMechanism

__all__ = ["CountAccumulator"]


class CountAccumulator:
    """Streaming per-bit count state with exact merge.

    Parameters
    ----------
    m:
        Report width in bits (the extended domain ``m + ell`` for a
        Padding-and-Sampling pipeline).
    round_id:
        Collection-round tag; accumulators only merge within a round
        (cross-round combination goes through
        :func:`repro.estimation.merge.merge_round_estimates`, which
        weights by each round's noise level instead of adding counts).
    compute:
        Compute backend executing the packed popcount (``"numpy"`` |
        ``"numba"`` | ``"threaded"``, see
        :mod:`repro.kernels.backends`).  Pure performance: the popcount
        is exact integer math on every backend, so accumulated state is
        bit-identical regardless of the choice.  Resolved eagerly so an
        unavailable backend fails at construction, not mid-round.
    """

    def __init__(
        self, m: int, *, round_id: int = 0, compute: str = "numpy"
    ) -> None:
        self.m = check_positive_int(m, "m")
        self.round_id = int(round_id)
        self.compute = str(compute)
        self._backend = get_compute_backend(self.compute)
        self._counts = np.zeros(self.m, dtype=np.int64)
        self._n = 0

    def __getstate__(self):
        # The resolved backend may hold a thread pool / JIT state;
        # re-resolve by name on the other side instead of shipping it.
        state = self.__dict__.copy()
        state.pop("_backend", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._backend = get_compute_backend(self.compute)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of user reports absorbed so far."""
        return self._n

    def counts(self) -> np.ndarray:
        """Copy of the per-bit 1-counts accumulated so far."""
        return self._counts.copy()

    @classmethod
    def from_state(
        cls, m: int, counts, n: int, *, round_id: int = 0
    ) -> "CountAccumulator":
        """Rebuild an accumulator from externally supplied state.

        The deserialization entry point (wire snapshots, audit replay):
        *counts* must be a length-``m`` non-negative integer vector with
        no entry exceeding *n* — every ingestion path (unary reports,
        packed reports, categorical histograms) preserves that invariant,
        so state violating it cannot have come from a real round.
        """
        acc = cls(m, round_id=round_id)
        counts = np.asarray(counts)
        if counts.shape != (acc.m,):
            raise ValidationError(
                f"counts must have shape ({acc.m},), got {counts.shape}"
            )
        if not np.issubdtype(counts.dtype, np.integer):
            raise ValidationError(f"counts must be integers, got dtype {counts.dtype}")
        n = int(n)
        if n < 0:
            raise ValidationError(f"n must be non-negative, got {n}")
        if counts.size and (counts.min() < 0 or counts.max() > n):
            raise ValidationError(
                f"counts must lie in [0, n={n}]; got range "
                f"[{counts.min()}, {counts.max()}]"
            )
        acc._counts = counts.astype(np.int64)
        acc._n = n
        return acc

    def digest(self) -> str:
        """SHA-256 hex digest of the canonical state.

        Two accumulators have equal digests iff ``(m, round_id, n,
        counts)`` are identical, so spill→replay audits and cross-machine
        transfers can compare a 64-character string instead of shipping
        the counts back.  The canonical form is fixed (little-endian
        header + little-endian ``int64`` counts) and independent of the
        wire-format version.
        """
        state = hashlib.sha256()
        state.update(struct.pack("<QqQ", self.m, self.round_id, self._n))
        state.update(np.ascontiguousarray(self._counts, dtype="<i8").tobytes())
        return state.hexdigest()

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def add_reports(self, reports) -> None:
        """Absorb a ``k x m`` 0/1 chunk of unary reports.

        Only the chunk is touched; the accumulator never retains it.
        """
        matrix = np.asarray(reports)
        if matrix.ndim != 2 or matrix.shape[1] != self.m:
            raise ValidationError(
                f"reports must have shape (k, {self.m}), got {matrix.shape}"
            )
        if matrix.size:
            # Integer chunks (the streaming hot path) validate with two
            # allocation-free reductions; the elementwise 0/1 comparison
            # with its k x m temporaries is only needed for float input.
            if matrix.dtype == bool or np.issubdtype(matrix.dtype, np.integer):
                if matrix.min() < 0 or matrix.max() > 1:
                    raise ValidationError("reports must contain only 0/1 values")
            elif not np.all((matrix == 0) | (matrix == 1)):
                raise ValidationError("reports must contain only 0/1 values")
        self._counts += matrix.sum(axis=0, dtype=np.int64)
        self._n += matrix.shape[0]

    def add_packed_reports(self, packed) -> None:
        """Absorb a chunk of ``np.packbits``-packed unary reports.

        Parameters
        ----------
        packed:
            ``k x ceil(m / 8)`` ``uint8`` matrix as produced by
            ``np.packbits(chunk, axis=1)`` (the transport-realistic wire
            format: one byte per 8 bits instead of one byte per bit).
            Row-wise packing preserves the user count, so ``k`` rows are
            ``k`` users; the accumulator's own width says how many of the
            trailing bits are padding.  Read-only views are accepted
            directly — a zero-copy decode (``memoryview`` over a socket
            buffer or an mmap'd spill file) feeds the popcount without
            ever materializing the payload as ``bytes``.
        """
        matrix = np.asarray(packed)
        width = packed_width(self.m)
        if matrix.ndim != 2 or matrix.shape[1] != width:
            raise ValidationError(
                f"packed reports must have shape (k, {width}), got {matrix.shape}"
            )
        if matrix.dtype != np.uint8:
            raise ValidationError(
                f"packed reports must be uint8, got dtype {matrix.dtype}"
            )
        pad_bits = 8 * width - self.m
        if pad_bits and matrix.size and np.any(matrix[:, -1] & ((1 << pad_bits) - 1)):
            # np.packbits zero-pads the tail (MSB-first), so set pad bits
            # mean the producer packed a wider domain than this round's.
            raise ValidationError(
                f"packed reports have set bits beyond m={self.m}; producer "
                "and accumulator widths disagree"
            )
        # Columnwise popcount straight off the packed bytes (vertical-
        # counting bit-plane adder) — the chunk is never unpacked to one
        # byte per bit.
        self._counts += self._backend.packed_column_counts(matrix, self.m)
        self._n += matrix.shape[0]

    def add_categories(self, outputs) -> None:
        """Absorb a chunk of categorical outputs (one id in ``0..m-1`` each).

        This is the streaming aggregation path for
        :class:`~repro.mechanisms.base.CategoricalMechanism` baselines
        (GRR and friends), whose released report is a category id rather
        than a bit vector; the per-bit count is then the output histogram.
        """
        ids = np.asarray(outputs)
        if ids.ndim != 1:
            raise ValidationError(f"outputs must be 1-D, got shape {ids.shape}")
        if not np.issubdtype(ids.dtype, np.integer):
            raise ValidationError(f"outputs must be integers, got dtype {ids.dtype}")
        if ids.size and (ids.min() < 0 or ids.max() >= self.m):
            raise ValidationError(f"outputs fall outside domain [0, {self.m - 1}]")
        self._counts += np.bincount(ids, minlength=self.m)
        self._n += ids.size

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def merge(self, other: "CountAccumulator") -> "CountAccumulator":
        """Absorb another shard's state; exact by integer addition.

        Returns ``self`` so shard results chain:
        ``reduce(CountAccumulator.merge, shards)``.
        """
        if not isinstance(other, CountAccumulator):
            raise ValidationError(
                f"can only merge CountAccumulator, got {type(other).__name__}"
            )
        if other.m != self.m:
            raise ValidationError(
                f"cannot merge width-{other.m} state into width-{self.m} state"
            )
        if other.round_id != self.round_id:
            raise ValidationError(
                f"cannot merge round {other.round_id} into round {self.round_id}; "
                "combine rounds via merge_round_estimates instead"
            )
        self._counts += other._counts
        self._n += other._n
        return self

    @classmethod
    def merge_all(cls, shards) -> "CountAccumulator":
        """Merge a non-empty sequence of shard accumulators into a new one."""
        shards = list(shards)
        if not shards:
            raise ValidationError("no accumulators to merge")
        merged = cls(shards[0].m, round_id=shards[0].round_id)
        for shard in shards:
            merged.merge(shard)
        return merged

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def to_round_estimate(self, mechanism) -> RoundEstimate:
        """Calibrate this round's counts for cross-round merging.

        Builds the mechanism's matching :class:`FrequencyEstimator` for
        the absorbed user tally and wraps the calibrated estimates (plus
        their noise profile) in a :class:`RoundEstimate`, ready for
        :func:`repro.estimation.merge.merge_round_estimates`.
        """
        if self._n == 0:
            raise ValidationError("cannot estimate from an empty accumulator")
        if hasattr(mechanism, "a"):
            estimator = FrequencyEstimator.for_mechanism(mechanism, self._n)
        elif isinstance(mechanism, CategoricalMechanism) and hasattr(mechanism, "p"):
            # Categorical baseline: the output histogram obeys
            # E[c_i] = c*_i p + (n - c*_i) q, the same law Eq. 8 inverts.
            # GRR carries q explicitly; binary RR flips symmetrically, so
            # its off-diagonal mass is 1 - p.  (Hash-domain mechanisms
            # like OLH also expose p/q but need their own calibration —
            # the isinstance gate keeps them on the error path below.)
            q = getattr(mechanism, "q", 1.0 - mechanism.p)
            estimator = FrequencyEstimator(
                np.full(self.m, mechanism.p), np.full(self.m, q), self._n
            )
        else:
            raise ValidationError(
                f"cannot build an estimator for {type(mechanism).__name__}: "
                "expected unary a/b vectors or categorical p/q scalars"
            )
        return RoundEstimate.from_counts(estimator, self._counts)

    def estimate(self, mechanism) -> np.ndarray:
        """Unbiased item-count estimates from the accumulated counts."""
        return self.to_round_estimate(mechanism).estimates

    def __repr__(self) -> str:
        return (
            f"CountAccumulator(m={self.m}, n={self._n}, round_id={self.round_id})"
        )
