"""Multi-process sharded collection: fan user shards out, merge exactly.

:class:`ShardedRunner` splits the user population into contiguous
shards, streams each shard through the chunked engine in its own worker
process, and merges the per-shard
:class:`~repro.pipeline.accumulator.CountAccumulator` states.  Because
the merge is exact integer addition, the sharded result is
distributionally identical to a sequential pass — and bit-identical to
re-running the same shard with the same child seed.

Per-shard randomness comes from ``numpy.random.SeedSequence.spawn``, so
a run is reproducible given ``(seed, num_shards, chunk_size)`` while
shards stay statistically independent.

Workers receive the mechanism by pickling; all mechanisms in
:mod:`repro.mechanisms` are plain objects over numpy arrays, so this is
cheap relative to the perturbation work itself.  Shard *results* come
back the other way as versioned, checksummed wire-format snapshots
(:mod:`repro.pipeline.collect.wire`) rather than bare pickles — the
same frames a cross-machine deployment would ship, so a worker on
another host (or another build) fails loudly on format skew instead of
silently unpickling stale state.

Pass ``spill_dir`` to :meth:`ShardedRunner.run` to make every worker
spill its packed report chunks and final snapshot into a
:class:`~repro.pipeline.collect.ShardStore` as it streams — the round
then supports out-of-core replay and digest audit with no extra pass.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import deque

import numpy as np

from .._validation import as_int_array, check_positive_int
from ..datasets.base import ItemsetDataset
from ..exceptions import ValidationError
from ..kernels import resolve_sampler
from ..mechanisms.base import CategoricalMechanism
from .accumulator import CountAccumulator
from .collect import ShardStore, wire
from .engine import report_width, stream_counts

__all__ = ["ShardedRunner", "shard_bounds"]


def shard_bounds(n: int, num_shards: int) -> list[tuple[int, int]]:
    """Split ``n`` users into ``num_shards`` contiguous near-equal ranges.

    The first ``n % num_shards`` shards hold one extra user; empty
    shards are never produced (the shard count is capped at ``n``).
    """
    n = check_positive_int(n, "n")
    num_shards = min(check_positive_int(num_shards, "num_shards"), n)
    base, extra = divmod(n, num_shards)
    bounds = []
    start = 0
    for index in range(num_shards):
        stop = start + base + (1 if index < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def _slice_shard(data, start: int, stop: int):
    """Materialize one shard's inputs (CSR re-based for item-set data)."""
    if isinstance(data, ItemsetDataset):
        return data.slice_users(start, stop)
    return np.asarray(data)[start:stop].copy()


def _run_shard(payload) -> bytes:
    """Worker entry point (module-level so it pickles under spawn).

    Returns the shard's accumulator as a wire-format snapshot frame —
    the parent decodes it with :func:`repro.pipeline.collect.loads`, so
    results cross the process boundary in the same checked format they
    would cross a machine boundary.
    """
    (
        mechanism,
        shard_data,
        chunk_size,
        packed,
        round_id,
        seed_seq,
        sampler,
        shard_index,
        spill_dir,
    ) = payload
    chunk_sink = None
    writer = None
    if spill_dir is not None:
        store = ShardStore(spill_dir)
        writer = store.writer(
            shard_index, report_width(mechanism), round_id=round_id
        )
        if packed:
            chunk_sink = writer.write
        else:
            # Unpacked int8 chunks spill in the packed wire format; the
            # columnwise popcount on replay counts the same bits, so the
            # round-trip stays bit-exact.
            chunk_sink = lambda chunk: writer.write(np.packbits(chunk, axis=1))
    try:
        # The sampler's backend expands the shard's SeedSequence, so a fast
        # run gets e.g. SFC64 workers while bitexact keeps PCG64 — the
        # default_rng-equivalent stream it has always had.
        accumulator = stream_counts(
            mechanism,
            shard_data,
            chunk_size=chunk_size,
            rng=sampler.make_generator(seed_seq),
            packed=packed,
            round_id=round_id,
            sampler=sampler,
            chunk_sink=chunk_sink,
        )
    finally:
        if writer is not None:
            writer.close()
    if spill_dir is not None:
        store.write_snapshot(shard_index, accumulator)
    return wire.dumps(accumulator)


class ShardedRunner:
    """Fan the chunked streaming pipeline across worker processes.

    Parameters
    ----------
    mechanism:
        Any mechanism :func:`repro.pipeline.engine.stream_counts`
        accepts (unary, categorical, or IDUE-PS).
    num_shards:
        User shards = worker tasks; defaults to the machine's CPU count.
    chunk_size:
        Users per chunk *within* each shard; bounds each worker's peak
        memory at ``O(chunk_size * m)``.
    packed:
        Ship each chunk through the ``np.packbits`` wire format.
    processes:
        Pool size; defaults to ``min(num_shards, cpu_count)``.  ``1``
        runs the shards serially in-process (no pool), which is also the
        automatic fallback where multiprocessing is unavailable.
    sampler:
        ``None`` / ``"bitexact"`` / ``"fast"`` / a
        :class:`~repro.kernels.SamplerConfig` applied in every worker.
        Also controls which BitGenerator the per-shard ``SeedSequence``
        children are expanded with (the config's ``backend``), and
        which compute backend (``SamplerConfig.compute``) executes the
        packed kernels inside each worker — workers resolve the backend
        by name after unpickling, so thread pools and JIT state never
        cross the process boundary.
    """

    def __init__(
        self,
        mechanism,
        *,
        num_shards: int | None = None,
        chunk_size: int = 4096,
        packed: bool = False,
        processes: int | None = None,
        sampler=None,
    ) -> None:
        cpus = os.cpu_count() or 1
        self.mechanism = mechanism
        self.num_shards = check_positive_int(
            cpus if num_shards is None else num_shards, "num_shards"
        )
        self.chunk_size = check_positive_int(chunk_size, "chunk_size")
        self.packed = bool(packed)
        if processes is None:
            processes = min(self.num_shards, cpus)
        self.processes = check_positive_int(processes, "processes")
        self.sampler = resolve_sampler(sampler)

    # ------------------------------------------------------------------
    def _num_users(self, data) -> int:
        if isinstance(data, ItemsetDataset):
            return data.n
        return as_int_array(data, "data").size

    def run(
        self,
        data,
        *,
        seed: int | None = None,
        round_id: int = 0,
        spill_dir: str | None = None,
    ) -> CountAccumulator:
        """Collect one full round over *data* and return the merged state.

        Parameters
        ----------
        data:
            1-D single-item array or :class:`ItemsetDataset`, matching
            the mechanism.
        seed:
            Root seed for the per-shard ``SeedSequence`` spawn; ``None``
            draws fresh OS entropy.
        spill_dir:
            Directory for a :class:`~repro.pipeline.collect.ShardStore`;
            when given, every worker spills its packed report chunks and
            final snapshot there as it streams, making the round
            replayable/auditable out of core.  Requires bit-vector
            reports (categorical mechanisms release bare ids, which have
            no packed chunk form).
        """
        if spill_dir is not None and isinstance(self.mechanism, CategoricalMechanism):
            raise ValidationError(
                "spill_dir requires bit-vector reports; categorical "
                "mechanisms release one id per user and have no packed "
                "chunk form"
            )
        if not isinstance(data, ItemsetDataset):
            data = as_int_array(data, "data")  # convert once, slice per shard
        n = self._num_users(data)
        if n == 0:
            raise ValidationError("cannot run a collection round over zero users")
        bounds = shard_bounds(n, self.num_shards)
        children = np.random.SeedSequence(seed).spawn(len(bounds))
        if spill_dir is not None:
            # Create the round directory up front — and refuse a reused
            # one: stale shard files from a previous round would survive
            # alongside this run's (e.g. 4 old shards vs 2 new) and
            # silently inflate any later replay/audit.
            stale = ShardStore(spill_dir).shard_ids()
            if stale:
                raise ValidationError(
                    f"spill_dir {spill_dir!r} already holds spilled shards "
                    f"{stale}; each collection round needs a fresh directory"
                )
        # Generator, not list: each shard's copy is materialized only as
        # it is dispatched (and freed once its worker returns), keeping
        # the parent's transient copies bounded by the dispatch window in
        # _map rather than the shard count.
        payloads = (
            (
                self.mechanism,
                _slice_shard(data, start, stop),
                self.chunk_size,
                self.packed,
                round_id,
                child,
                self.sampler,
                shard_index,
                spill_dir,
            )
            for shard_index, ((start, stop), child) in enumerate(
                zip(bounds, children)
            )
        )
        frames = self._map(payloads, len(bounds))
        return CountAccumulator.merge_all(wire.loads(frame) for frame in frames)

    def run_rounds(self, data, *, seeds) -> list[CountAccumulator]:
        """Run one collection round per seed (multi-round deployments).

        Returns one merged accumulator per round, tagged ``round_id =
        0, 1, ...``; calibrate each via ``to_round_estimate`` and combine
        with :func:`repro.estimation.merge.merge_round_estimates`.
        """
        return [
            self.run(data, seed=seed, round_id=index)
            for index, seed in enumerate(seeds)
        ]

    # ------------------------------------------------------------------
    def _map(self, payloads, count: int):
        if self.processes == 1 or count == 1:
            return [_run_shard(payload) for payload in payloads]
        try:
            pool = multiprocessing.get_context().Pool(min(self.processes, count))
        except OSError:
            # Sandboxes and restricted hosts may forbid forking; the
            # serial path computes the identical merged state.  Errors
            # *during* the parallel run are real failures and propagate.
            return [_run_shard(payload) for payload in payloads]
        window = min(self.processes, count)
        results: list = []
        handles: deque = deque()
        with pool:
            # Bounded dispatch window: at most `window` shard payloads are
            # materialized/pickled at once (pool.imap's feeder thread would
            # drain the whole payload generator eagerly).  This caps the
            # parent's transient copies at ~processes/num_shards of the
            # dataset — a real bound when many small shards feed few
            # workers; with num_shards == processes every shard is in
            # flight at once and the aggregate copy is unavoidable.
            for payload in payloads:
                handles.append(pool.apply_async(_run_shard, (payload,)))
                while len(handles) >= window:
                    # Merge order is irrelevant (exact integer addition),
                    # so drain whichever shard finished first rather than
                    # head-of-line blocking on the oldest submission.
                    ready = [h for h in handles if h.ready()]
                    if ready:
                        for handle in ready:
                            handles.remove(handle)
                            results.append(handle.get())
                    else:
                        handles[0].wait(0.05)
            results.extend(handle.get() for handle in handles)
        return results

    def __repr__(self) -> str:
        return (
            f"ShardedRunner({self.mechanism!r}, num_shards={self.num_shards}, "
            f"chunk_size={self.chunk_size}, processes={self.processes}, "
            f"sampler={self.sampler.exactness!r})"
        )
