"""Hosted rounds: per-round durable state and the multiplexing registry.

A multi-tenant collection service runs many measurement rounds at once —
different widths, different producer populations, different lifetimes.
Everything one round owns lives in a :class:`RoundState`:

* geometry ``(m, round_id)`` that every session and record must match;
* a :class:`~repro.pipeline.collect.store.ShardStore` namespace holding
  the round's spill, ``.index`` sidecar, snapshot, and idempotency
  ledger — rounds never share files, so archiving or deleting one round
  cannot touch another;
* the live :class:`~repro.pipeline.accumulator.CountAccumulator`;
* a :class:`~.commit.GroupCommitScheduler` — the round's single durable
  commit pipeline, which is what lets group commit coalesce across
  *connections* (every session of the round feeds the same scheduler);
* per-producer and whole-round quota meters that survive reconnects
  (and, via the ledger, restarts);
* a 16-byte *registration token*, minted when the round is opened and
  folded into every session proof of a scoped (multi-round) service, so
  a proof for one incarnation of round 7 can never be spent on a later
  re-registration of round 7.

:class:`RoundRegistry` is the router: ``round_id`` → :class:`RoundState`
for every hosted round, with loud refusal of duplicate registrations.
Sessions resolve their round exactly once, at HELLO time; after that
every stage/commit/ack path works against the resolved round alone,
which is the structural reason records can never cross-merge between
rounds (the property suite pins this).
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np

from ...exceptions import LedgerError, ValidationError, WireFormatError
from ...kernels import packed_width
from ..accumulator import CountAccumulator
from ..collect import wire
from ..collect.collector import apply_frame_object
from ..collect.store import ShardStore, atomic_write_bytes
from .auth import fresh_nonce, keeper_party_label
from .commit import GroupCommitScheduler
from .ledger import IdempotencyLedger
from .lifecycle import CLOSED, DRAINING, RETIRED, SERVING, RoundLifecycle
from .quotas import ProducerQuota, RoundQuota, ServiceLimits
from .shares import (
    ROLE_BLINDED,
    ROLE_KEEPER,
    BlindedAccumulator,
    add_member,
    empty_member_digest,
    encode_member_digest,
)

__all__ = [
    "RoundState",
    "RoundRegistry",
    "LEDGER_FILENAME",
    "EXCLUSIONS_FILENAME",
    "SERVICE_SHARD_ID",
    "MODE_COLLECT",
    "MODE_BLINDED",
    "MODE_KEEPER",
    "ROUND_MODES",
    "round_namespace",
]

LEDGER_FILENAME = "round.ledger"
#: Sidecar naming producers migrated OFF this shard (``{producer:
#: routing_epoch}``).  Their ledger entries stay (dedup + equivocation
#: still work against them) but their records are no longer part of
#: this shard's accumulator, membership digest, or counters — the new
#: owner's are.  Durable so a restarted shard replays the same split.
EXCLUSIONS_FILENAME = "round.excluded"
SERVICE_SHARD_ID = 0

# A hosted round's aggregation mode: "collect" is the classic plaintext
# collector; "blinded" and "keeper" are the two split-trust roles (see
# :mod:`.shares`) — a blinded collector absorbs BlindedCounts frames,
# a share keeper absorbs BlindingShare frames, and neither can decode
# anything alone.
MODE_COLLECT = "collect"
MODE_BLINDED = "blinded"
MODE_KEEPER = "keeper"
ROUND_MODES = (MODE_COLLECT, MODE_BLINDED, MODE_KEEPER)


def round_namespace(round_id: int) -> str:
    """The store namespace a hosted round's files live under."""
    return f"round_{int(round_id):05d}"


class RoundState:
    """One hosted round: geometry, durable state, commit pipeline."""

    def __init__(
        self,
        m: int,
        round_id: int,
        store: ShardStore,
        limits: ServiceLimits,
        *,
        resume: bool = False,
        scoped: bool = False,
        token: bytes | None = None,
        mode: str = MODE_COLLECT,
        keeper_id: str | None = None,
    ) -> None:
        self.m = int(m)
        if self.m <= 0:
            raise ValidationError(f"round width m must be positive, got {m}")
        self.round_id = int(round_id)
        self.limits = limits
        self.store = store
        if mode not in ROUND_MODES:
            raise ValidationError(
                f"round mode must be one of {ROUND_MODES}, got {mode!r}"
            )
        self.mode = mode
        if mode == MODE_KEEPER:
            if not keeper_id:
                raise ValidationError(
                    "a keeper-mode round needs a non-empty keeper_id (the "
                    "identity producers bind their share streams to)"
                )
            self.keeper_id = str(keeper_id)
        else:
            if keeper_id is not None:
                raise ValidationError(
                    f"keeper_id is only meaningful for {MODE_KEEPER!r} "
                    f"rounds, got keeper_id={keeper_id!r} with mode={mode!r}"
                )
            self.keeper_id = None
        self.ledger = IdempotencyLedger(
            os.path.join(store.root, LEDGER_FILENAME)
        )
        # Producers migrated off this shard: ledgered but not counted.
        self._exclusions_path = os.path.join(store.root, EXCLUSIONS_FILENAME)
        self.excluded: dict[str, int] = {}
        if os.path.exists(self._exclusions_path):
            try:
                with open(self._exclusions_path, "rb") as handle:
                    payload = json.loads(handle.read().decode("utf-8"))
                self.excluded = {
                    str(producer): int(epoch)
                    for producer, epoch in payload["producers"].items()
                }
            except (OSError, ValueError, KeyError, TypeError) as exc:
                raise LedgerError(
                    f"exclusions sidecar {self._exclusions_path} is "
                    f"unreadable ({exc}); refusing to resume a migrated "
                    "round with an unknown producer split"
                ) from exc
        if mode == MODE_COLLECT:
            self.accumulator = CountAccumulator(self.m, round_id=self.round_id)
        else:
            role = ROLE_BLINDED if mode == MODE_BLINDED else ROLE_KEEPER
            self.accumulator = BlindedAccumulator(
                self.m, round_id=self.round_id, role=role
            )
        # Order-independent digest of the committed record set (see
        # shares.member_stamp) — maintained in EVERY mode so a split-
        # trust combine can certify that collector and keepers hold
        # exactly the same records before any decode is attempted.
        self.member_digest = empty_member_digest()
        # The registration token: fresh every time the round is opened,
        # so session proofs are scoped to this exact incarnation.  An
        # unscoped (single-round, legacy-wire) round keeps it empty and
        # its challenges stay version-2 byte-identical.  A coordinator
        # passes *token* explicitly so every shard hosting a slice of
        # the round challenges with the SAME incarnation token.
        if token is not None:
            token = bytes(token)
            if len(token) != 16:
                raise ValidationError(
                    f"round token must be 16 bytes, got {len(token)}"
                )
            self.token = token
        else:
            self.token = fresh_nonce() if scoped else b""
        self.lifecycle = RoundLifecycle(self.round_id)

        self.records_merged = 0
        self.records_duplicate = 0
        self.records_refused = 0
        self.bytes_ingested = 0
        self.producers_seen: set[str] = set()
        self.recovered_records = 0
        self.recovered_spill_bytes_discarded = 0

        existing = os.path.exists(self.ledger.path) or os.path.exists(
            self.store.chunk_path(SERVICE_SHARD_ID)
        )
        self.preexisting = existing
        if existing and not resume:
            raise ValidationError(
                f"{self.store.root} already holds round state "
                f"({LEDGER_FILENAME} / spill); pass resume=True to recover "
                "it, or point the service at a fresh directory"
            )
        self._recover()
        self.writer = self.store.writer(
            SERVICE_SHARD_ID,
            self.m,
            round_id=self.round_id,
            durable=True,
            resume=True,
        )
        self.scheduler = GroupCommitScheduler(self, limits)
        self.quota = RoundQuota(limits, self.round_id)
        self.quota.bytes_used = self.bytes_ingested
        self.quota.records_used = self.records_merged
        self._producer_quotas: dict[str, ProducerQuota] = {}
        # Quotas meter *committed* records, so the ledger reconstructs
        # every meter exactly — a restart forgives nothing, and (because
        # resends dedup before they are charged) forgives resends too.
        for producer_id, (records, nbytes) in (
            self.ledger.producer_totals().items()
        ):
            if producer_id in self.excluded:
                continue  # migrated off this shard; the new owner meters
            meter = self.producer_quota(producer_id)
            meter.frames_used = records
            meter.bytes_used = nbytes
        self._closed = False

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Rebuild round state from ledger + spill (both may be absent)."""
        count = self.ledger.load()
        recovered = self.store.recover_shard(
            SERVICE_SHARD_ID, committed_offset=self.ledger.committed_offset
        )
        if recovered["frames"] != count:
            raise LedgerError(
                f"ledger commits {count} records but the recovered spill "
                f"holds {recovered['frames']} frames; round state under "
                f"{self.store.root} is inconsistent"
            )
        self.recovered_spill_bytes_discarded = recovered["discarded_bytes"]
        self._replay_committed()
        self.recovered_records = self.records_merged

    def _replay_committed(self) -> None:
        """Recompute live state from the ledger + spill, minus exclusions.

        The ledger is the membership authority: replaying it in commit
        order rebuilds the accumulator, counters, and member digest
        exactly — and because ledger order equals spill order (one
        committer appends both), zipping entries against the spill's
        frames attributes every frame to its producer, which is how
        records of migrated-off producers are skipped.  Both recovery
        and live migration go through here, so the post-migration state
        is byte-for-byte what a restart would compute.
        """
        if self.mode == MODE_COLLECT:
            self.accumulator = CountAccumulator(self.m, round_id=self.round_id)
        else:
            role = ROLE_BLINDED if self.mode == MODE_BLINDED else ROLE_KEEPER
            self.accumulator = BlindedAccumulator(
                self.m, round_id=self.round_id, role=role
            )
        self.member_digest = empty_member_digest()
        entries = self.ledger.entries()
        chunk_path = self.store.chunk_path(SERVICE_SHARD_ID)
        if entries and os.path.exists(chunk_path):
            with open(chunk_path, "rb") as handle:
                for entry, obj in zip(entries, wire.iter_frames(handle)):
                    if entry.producer_id in self.excluded:
                        continue
                    self.absorb(obj)
        merged = 0
        kept_bytes = 0
        previous_end = 0
        for entry in entries:
            size = entry.spill_end - previous_end
            previous_end = entry.spill_end
            if entry.producer_id in self.excluded:
                continue
            merged += 1
            kept_bytes += size
            self.note_member(entry.producer_id, entry.seq)
        self.records_merged = merged
        self.bytes_ingested = kept_bytes
        # Producers that only ever opened sessions (no committed record)
        # stay visible unless they too were migrated away.
        self.producers_seen = {
            producer
            for producer in (
                self.producers_seen
                | {entry.producer_id for entry in entries}
            )
            if producer not in self.excluded
        }

    # ------------------------------------------------------------------
    # Mode-dependent merge surface
    # ------------------------------------------------------------------
    @property
    def party(self) -> bytes:
        """The party label sessions of this round must bind in their
        proofs: empty for collect/blinded rounds (wire-compatible with
        earlier protocol versions), the keeper label for keeper rounds —
        so a proof minted for the collector is unspendable at a keeper
        and each keeper's proofs are distinct."""
        if self.mode == MODE_KEEPER:
            return keeper_party_label(self.keeper_id)
        return b""

    def absorb(self, obj) -> None:
        """Merge one validated inner object into this round's state.

        The single dispatch point between the classic plaintext merge
        (:func:`~repro.pipeline.collect.collector.apply_frame_object`)
        and the split-trust accumulators — commit and recovery both go
        through here, so replay is the same code path as live ingest.
        """
        if self.mode == MODE_COLLECT:
            apply_frame_object(obj, self.accumulator)
        else:
            self.accumulator.absorb_frame(obj)

    def note_member(self, producer_id: str, seq: int) -> None:
        """Fold one committed record into the membership digest."""
        add_member(self.member_digest, producer_id, seq)

    # ------------------------------------------------------------------
    # Quota scoping
    # ------------------------------------------------------------------
    def producer_quota(self, producer_id: str) -> ProducerQuota:
        """The producer's cross-connection meter on this round."""
        meter = self._producer_quotas.get(producer_id)
        if meter is None:
            meter = ProducerQuota(self.limits, producer_id)
            self._producer_quotas[producer_id] = meter
        return meter

    def refund_uncommitted(self, producer_id: str, items: list[dict]) -> None:
        """Return quota charges for staged records that never committed.

        Idempotent per item (the charge marker is cleared on refund):
        called by the commit scheduler after every batch (covering
        commit-time dedup losses and rolled-back batches) and by the
        session teardown for staged-but-never-submitted records.
        Without this, a producer whose connection died mid-batch would
        pay for those records *twice* when it resends them — and a
        producer near its cap could be locked out by charges for
        records that were never committed at all.
        """
        for item in items:
            charge = item.get("charged")
            if charge and item["status"] != "merged":
                self.producer_quota(producer_id).refund(charge)
                self.quota.refund(charge)
                item["charged"] = None

    # ------------------------------------------------------------------
    # Live migration (shard-to-shard producer moves under traffic)
    # ------------------------------------------------------------------
    def _write_exclusions(self) -> None:
        payload = json.dumps(
            {"producers": self.excluded}, sort_keys=True
        ).encode("utf-8")
        atomic_write_bytes(self._exclusions_path, payload)

    def migrate_out(
        self, producers, epoch: int
    ) -> list[tuple[str, int, bytes, bytes]]:
        """Evict *producers*' committed records for transfer elsewhere.

        Returns ``(producer_id, seq, digest, frame_bytes)`` for every
        ledgered record of *producers* — already-excluded ones included,
        so re-running after a half-applied migration (coordinator died
        between ``migrate-out`` and ``migrate-in``) re-returns the same
        entries and the whole flow is idempotent.  Marks the producers
        excluded (durably, via the sidecar) and rebuilds the live
        accumulator without their records.

        Synchronous on purpose: callers hold the round scheduler's
        ``paused()`` context, and with no ``await`` inside, nothing can
        interleave between the ledger read, the exclusion write, and
        the state rebuild.
        """
        producers = {str(producer) for producer in producers}
        epoch = int(epoch)
        entries = self.ledger.entries()
        moved: list[tuple[str, int, bytes, bytes]] = []
        if any(entry.producer_id in producers for entry in entries):
            chunk_path = self.store.chunk_path(SERVICE_SHARD_ID)
            with open(chunk_path, "rb") as handle:
                blob = handle.read()
            previous_end = 0
            for entry in entries:
                start, previous_end = previous_end, entry.spill_end
                if entry.producer_id in producers:
                    moved.append(
                        (
                            entry.producer_id,
                            entry.seq,
                            entry.digest,
                            blob[start : entry.spill_end],
                        )
                    )
        newly = {p for p in producers if p not in self.excluded}
        if producers:
            for producer in producers:
                self.excluded[producer] = epoch
            self._write_exclusions()
        if newly:
            self._replay_committed()
            for producer in list(self._producer_quotas):
                if producer in self.excluded:
                    del self._producer_quotas[producer]
            self.quota.bytes_used = self.bytes_ingested
            self.quota.records_used = self.records_merged
        return moved

    def absorb_migrated(self, records) -> dict:
        """Install records migrated from another shard, exactly once.

        *records* is an iterable of ``(producer_id, seq, digest,
        frame_bytes)`` as returned by :meth:`migrate_out` on the old
        owner.  Every frame is digest-verified before anything is
        written; records already ledgered here (a re-run transfer, or a
        producer that blind-resent to this shard before the transfer
        landed) are skipped as duplicates — same digest required, a
        mismatch is equivocation and refuses the whole transfer.

        Synchronous for the same atomicity reason as
        :meth:`migrate_out`; durability ordering matches the commit
        pipeline (all frames appended, spill fsync, ledger appends,
        ledger fsync, then merges).
        """
        self.lifecycle.require(SERVING)
        checked: list[tuple[str, int, bytes, bytes]] = []
        unexcluded: set[str] = set()
        for producer_id, seq, digest, frame in records:
            producer_id, seq = str(producer_id), int(seq)
            digest, frame = bytes(digest), bytes(frame)
            if hashlib.sha256(frame).digest() != digest:
                raise ValidationError(
                    f"migrated record {producer_id!r}/{seq} failed its "
                    "digest check; refusing the transfer"
                )
            if producer_id in self.excluded:
                unexcluded.add(producer_id)
            checked.append((producer_id, seq, digest, frame))
        if unexcluded:
            # A producer migrating BACK: lift its exclusion first (its
            # locally ledgered records re-enter the accumulator), so
            # the ledger dedup below is exact rather than double-merging
            # what this shard already holds.
            for producer in unexcluded:
                del self.excluded[producer]
            self._write_exclusions()
            self._replay_committed()
            self.quota.bytes_used = self.bytes_ingested
            self.quota.records_used = self.records_merged
        staged: list[tuple[str, int, bytes, int, bytes]] = []
        batch_digests: dict[tuple[str, int], bytes] = {}
        duplicates = 0
        spill_mark = self.writer.end_offset
        ledger_mark = self.ledger.mark()
        appended_keys: list[tuple[str, int]] = []
        try:
            for producer_id, seq, digest, frame in checked:
                key = (producer_id, seq)
                known = self.ledger.seen(producer_id, seq)
                known_digest = (
                    known.digest if known is not None
                    else batch_digests.get(key)
                )
                if known_digest is not None:
                    if known_digest != digest:
                        raise ValidationError(
                            f"migrated record {producer_id!r}/{seq} "
                            "equivocates with a record this shard already "
                            "committed; refusing the transfer"
                        )
                    duplicates += 1
                    continue
                inner = wire.loads(frame)
                self.validate_inner(inner)
                self.writer.append_frame(frame)
                batch_digests[key] = digest
                staged.append(
                    (producer_id, seq, digest, self.writer.end_offset, frame)
                )
            if staged:
                self.writer.sync()
                for producer_id, seq, digest, spill_end, _frame in staged:
                    self.ledger.append(producer_id, seq, digest, spill_end)
                    appended_keys.append((producer_id, seq))
                self.ledger.sync()
        except BaseException as exc:
            try:
                if appended_keys:
                    self.ledger.rollback(ledger_mark, appended_keys)
                self.writer.rollback(spill_mark)
            except BaseException as repair_exc:
                raise LedgerError(
                    f"migrate-in failed ({exc}) and rolling the spill "
                    f"back failed too ({repair_exc}); restart the shard "
                    "with resume=True"
                ) from exc
            raise
        for producer_id, seq, _digest, _spill_end, frame in staged:
            self.absorb(wire.loads(frame))
            self.note_member(producer_id, seq)
            self.records_merged += 1
            self.bytes_ingested += len(frame)
            self.producers_seen.add(producer_id)
            meter = self.producer_quota(producer_id)
            meter.frames_used += 1
            meter.bytes_used += len(frame)
            self.quota.records_used += 1
            self.quota.bytes_used += len(frame)
        return {"installed": len(staged), "duplicates": duplicates}

    # ------------------------------------------------------------------
    # Record staging (everything decidable without the commit pipeline)
    # ------------------------------------------------------------------
    def validate_inner(self, obj) -> None:
        """Pre-commit validation, mirroring every check the later merge
        would make — so a record that reaches the ledger can never fail
        to merge (a ledgered-but-unmergeable record would poison every
        subsequent restart's replay)."""
        if self.mode != MODE_COLLECT:
            expected = (
                wire.BlindedCounts
                if self.mode == MODE_BLINDED
                else wire.BlindingShare
            )
            if not isinstance(obj, expected):
                raise ValidationError(
                    f"a {self.mode} round accepts only "
                    f"{expected.__name__} records, got {type(obj).__name__}"
                )
            if obj.m != self.m or obj.round_id != self.round_id:
                raise ValidationError(
                    f"record is for (m={obj.m}, round={obj.round_id}); "
                    f"this round collects (m={self.m}, "
                    f"round={self.round_id})"
                )
            return
        if isinstance(obj, CountAccumulator):
            matches = obj.m == self.m and obj.round_id == self.round_id
        elif isinstance(obj, wire.PackedChunk):
            matches = obj.m == self.m and obj.round_id == self.round_id
            if matches:
                width = packed_width(self.m)
                pad_bits = 8 * width - self.m
                if (
                    pad_bits
                    and obj.rows.size
                    and np.any(obj.rows[:, -1] & ((1 << pad_bits) - 1))
                ):
                    raise ValidationError(
                        f"record chunk has set bits beyond m={self.m}"
                    )
        else:
            raise ValidationError(
                f"records must wrap a snapshot or packed chunk, got "
                f"{type(obj).__name__}"
            )
        if not matches:
            raise ValidationError(
                f"record is for (m={obj.m}, round={obj.round_id}); this "
                f"round collects (m={self.m}, round={self.round_id})"
            )

    def stage_record(
        self,
        producer_id: str,
        record: wire.Record,
        staged_frames: dict[int, bytes],
    ) -> dict:
        """Classify one record for its batch: fresh, duplicate, refused.

        Everything that can be decided without the commit pipeline
        happens here — envelope/round checks, dedup against the ledger
        *and* against records staged earlier in the same connection
        batch, and full inner validation for fresh records.  SHA-256
        digests are *not* computed on the fresh path: the round's
        commit scheduler hashes whole batches on the executor,
        overlapped with the next batch's network reads.  The commit
        also re-checks the ledger (another connection of the same
        producer may commit the same seq first).
        """
        seq = record.seq
        if not self.lifecycle.accepts_records:
            return {
                "status": "refused",
                "seq": seq,
                "detail": (
                    f"round {self.round_id} is {self.lifecycle.phase}; "
                    "records are only accepted while serving"
                ),
            }
        if producer_id in self.excluded:
            return {
                "status": "refused",
                "seq": seq,
                "detail": (
                    f"producer {producer_id!r} was migrated off this shard "
                    f"at routing epoch {self.excluded[producer_id]}; "
                    "reconnect via the current routing table"
                ),
            }
        if record.m != self.m or record.round_id != self.round_id:
            return {
                "status": "refused",
                "seq": seq,
                "detail": (
                    f"record envelope is for (m={record.m}, round="
                    f"{record.round_id}), not this round"
                ),
            }
        previous = staged_frames.get(seq)
        if previous is not None:
            # Same seq twice in one burst: byte equality decides.
            if previous != record.frame:
                return {
                    "status": "refused",
                    "seq": seq,
                    "detail": (
                        f"equivocation: seq {seq} is already committed "
                        "with different frame bytes"
                    ),
                }
            return {"status": "duplicate", "seq": seq}
        entry = self.ledger.seen(producer_id, seq)
        if entry is not None:
            # Resend path: the digest comparison against the committed
            # entry is deferred to the batch commit, which hashes on
            # the executor — a producer blind-resending a large round
            # must not stall the event loop for every other session.
            return {
                "status": "verify-dup",
                "seq": seq,
                "frame": record.frame,
                "known_digest": entry.digest,
            }
        try:
            inner = record.decode()
            self.validate_inner(inner)
        except (WireFormatError, ValidationError) as exc:
            return {"status": "refused", "seq": seq, "detail": str(exc)}
        return {
            "status": "fresh",
            "seq": seq,
            "frame": record.frame,
            "inner": inner,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def serve(self) -> None:
        """Move ``open -> serving``: sessions and records may flow."""
        self.lifecycle.transition(SERVING)

    def drain(self) -> None:
        """Move to ``draining``: refuse new sessions and new records
        while batches already staged or in the commit pipeline still
        commit and are acked.  Callers await :meth:`close` (or just the
        scheduler) to observe the drain finishing."""
        self.lifecycle.transition(DRAINING)

    def retire(self) -> None:
        """Move ``closed -> retired``: the durably closed round's
        handles are already freed by :meth:`close`; after this the
        registry forgets the round and its id may be re-registered (as
        a new incarnation with a fresh token).  Loud unless closed —
        retiring a round that is still serving would strand its
        producers with no durable close."""
        self.lifecycle.transition(RETIRED)

    def release(self) -> None:
        """Constructor-failure teardown: drop handles, undo creation.

        When a multi-round service fails partway through opening its
        rounds (a later spec is bad, a round id is duplicated), the
        rounds already opened must not leak file handles — and, if they
        did not exist before this attempt, must not leave freshly
        created state behind that would force ``resume=True`` on the
        operator's corrected rerun.  Pre-existing state is left exactly
        as found.
        """
        self.writer.close(finalize=False)
        self.ledger.close()
        if not self.preexisting:
            for path in (
                self.store.chunk_path(SERVICE_SHARD_ID),
                self.store.index_path(SERVICE_SHARD_ID),
                self.ledger.path,
            ):
                try:
                    os.unlink(path)
                except OSError:
                    pass
            try:
                os.rmdir(self.store.root)
            except OSError:
                pass  # shared or non-empty root (single-round layout)
        self._closed = True

    async def close(self, *, snapshot: bool = True) -> None:
        """Drain the commit pipeline and durably close the round.

        With *snapshot* the round's final accumulator state is written
        atomically next to the spill (graceful shutdown); without it
        the files close as-is (crash-adjacent teardown — everything
        acknowledged is already fsync'd, so resume recovers it).
        """
        await self.scheduler.close()
        if self._closed:
            return
        self._closed = True
        if self.lifecycle.phase not in (CLOSED, RETIRED):
            self.lifecycle.transition(CLOSED)
        if snapshot:
            self.writer.sync()
            self.writer.close()
            snap = (
                self.accumulator
                if self.mode == MODE_COLLECT
                else self.accumulator.state_frame()
            )
            self.store.write_snapshot(SERVICE_SHARD_ID, snap)
        else:
            self.writer.close()
        self.ledger.close()

    def stats(self) -> dict:
        """Operator-facing counters for this round."""
        return {
            "m": self.m,
            "round_id": self.round_id,
            "mode": self.mode,
            "keeper_id": self.keeper_id,
            "member_digest": encode_member_digest(self.member_digest),
            "phase": self.lifecycle.phase,
            "n": self.accumulator.n,
            "records_merged": self.records_merged,
            "records_duplicate": self.records_duplicate,
            "records_refused": self.records_refused,
            "bytes_ingested": self.bytes_ingested,
            "producers": sorted(self.producers_seen),
            "producers_excluded": sorted(self.excluded),
            "recovered_records": self.recovered_records,
            "recovered_spill_bytes_discarded": (
                self.recovered_spill_bytes_discarded
            ),
            "commits": self.scheduler.commits,
            "cross_connection_batches": (
                self.scheduler.cross_connection_batches
            ),
        }


class RoundRegistry:
    """``round_id`` → :class:`RoundState` router for a hosted service.

    The registry is deliberately dumb: it opens rounds, finds rounds,
    and enumerates rounds.  All correctness-critical state lives in the
    :class:`RoundState` a session resolves at HELLO time — after that
    resolution nothing consults the registry again, so no registry
    operation (including opening new rounds mid-flight) can redirect an
    established session.
    """

    def __init__(self) -> None:
        self._rounds: dict[int, RoundState] = {}

    def open_round(
        self,
        m: int,
        round_id: int,
        store: ShardStore,
        limits: ServiceLimits,
        *,
        resume: bool = False,
        scoped: bool = True,
        token: bytes | None = None,
        serve: bool = True,
        mode: str = MODE_COLLECT,
        keeper_id: str | None = None,
    ) -> RoundState:
        """Create, recover (with *resume*), and register one round.

        With *serve* (the default) the round moves straight
        ``open -> serving`` — the behavior of a standalone service,
        where hosting a round means serving it.  A coordinator-managed
        shard passes the coordinator's *token* so every shard of the
        round challenges with the same incarnation token.
        """
        round_id = int(round_id)
        if round_id in self._rounds:
            raise ValidationError(
                f"round {round_id} is already hosted; round ids must be "
                "unique within a service"
            )
        state = RoundState(
            m,
            round_id,
            store,
            limits,
            resume=resume,
            scoped=scoped,
            token=token,
            mode=mode,
            keeper_id=keeper_id,
        )
        if serve:
            state.serve()
        self._rounds[round_id] = state
        return state

    def get(self, round_id: int) -> RoundState | None:
        return self._rounds.get(int(round_id))

    def retire(self, round_id: int) -> RoundState:
        """Retire a *closed* round and forget it (loud otherwise).

        After this the round id is free to re-register — as a new
        incarnation whose fresh token keeps old session proofs dead.
        """
        state = self._rounds.get(int(round_id))
        if state is None:
            raise ValidationError(
                f"round {round_id} is not hosted; hosted rounds: "
                f"{sorted(self._rounds)}"
            )
        state.retire()
        del self._rounds[int(round_id)]
        return state

    def rounds(self) -> list[RoundState]:
        """All hosted rounds, ordered by round id."""
        return [self._rounds[key] for key in sorted(self._rounds)]

    def round_ids(self) -> list[int]:
        return sorted(self._rounds)

    def __len__(self) -> int:
        return len(self._rounds)

    def __contains__(self, round_id: int) -> bool:
        return int(round_id) in self._rounds
