"""Resource bounds for the collection service.

A public collection endpoint faces arbitrarily many producers, each
able to declare arbitrarily large frames.  Every limit here exists to
make the service's memory and connection load *bounded by
configuration*, not by producer behavior:

* ``max_frame_bytes`` is enforced against the header's declared payload
  length **before** the payload is read, so no connection ever buffers
  more than one capped frame;
* per-connection byte/frame quotas cut off a producer that streams
  forever on one connection (records it already got acks for stay
  merged — shedding is not a rollback);
* session capacity stalls excess producers at the accept gate
  (bounded-wait backpressure) and sheds them with a refusal ack once
  the wait queue itself is full, which is the difference between
  degrading and OOMing under a producer flood.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields, replace

from ...exceptions import QuotaExceededError

__all__ = [
    "ServiceLimits",
    "ConnectionQuota",
    "BudgetMeter",
    "ProducerQuota",
    "RoundQuota",
    "Deadline",
]

COMMIT_SCOPE_ROUND = "round"
COMMIT_SCOPE_CONNECTION = "connection"


@dataclass(frozen=True)
class ServiceLimits:
    """Service-wide resource policy (defaults suit a localhost round).

    Attributes
    ----------
    max_frame_bytes:
        Cap on one frame's declared payload; checked before the payload
        is read.
    max_connection_bytes / max_connection_frames:
        Per-connection ingest quota; the connection is shed with a
        refusal ack when it crosses either.
    max_sessions:
        Concurrent connections being served; arrivals beyond this stall
        at the accept gate until a slot frees.
    max_waiting_sessions:
        Stalled arrivals beyond this are shed immediately — the bound
        on the backpressure queue itself.
    max_commit_batch:
        Group-commit window: up to this many pipelined records share
        one spill-fsync + ledger-fsync pair (acks still follow the
        fsyncs, so the durability contract per ack is unchanged).
    max_commit_batch_bytes:
        Byte-based batch trigger: a batch also closes once its staged
        record frames exceed this, so large records commit in small
        groups whose fsyncs overlap the next batch's network reads
        instead of one monolithic end-of-burst commit.
    commit_idle_seconds:
        How long a non-empty batch waits for another pipelined record
        before committing what it has.  Only a producer that stops
        mid-burst ever observes this latency.
    handshake_timeout_seconds:
        Deadline for the whole handshake (hello through proof).  This is
        the anti-slow-loris bound: without it, an *unauthenticated*
        connection that sends nothing — or half a frame — would hold a
        session slot forever, and 64 idle sockets would wedge the
        service for every legitimate producer.
    session_idle_seconds:
        Deadline for an authenticated session's next record (including
        a stalled mid-frame payload), measured on the **monotonic
        clock from the last completed frame** — never from connection
        start, so a legitimately slow producer that keeps trickling
        records (even across a long multi-round engagement) is never
        reaped, while one that goes silent is.  Reaped producers
        reconnect and resend, which exactly-once makes free.
    max_producer_bytes / max_producer_frames:
        Per-*producer* contribution quota, shared across every
        connection and session the producer opens on a round (``None``
        = unlimited).  Metered on records **accepted for commit**, so
        the blind resend the exactly-once protocol relies on is free:
        duplicates dedup before they are charged.  A producer cannot
        dodge its budget by reconnecting — the tally lives with the
        round, not the connection — and on resume both frames and
        bytes are rebuilt exactly from the ledger, so a restart
        forgives nothing (and double-charges nothing).
    max_round_bytes / max_round_records:
        Whole-round contribution caps (``None`` = unlimited), metered
        like the producer quota: once a hosted round has committed
        this much, further fresh records are refused while other
        rounds on the same service keep ingesting.
    commit_scope:
        ``"round"`` (default) coalesces group commits **across
        connections**: one spill-fsync + ledger-fsync pair covers every
        batch any session of the round has staged while the previous
        commit was in flight.  ``"connection"`` restores the
        per-connection batching of the single-round service — each
        connection's batch pays its own fsync pair (the benchmark
        baseline, and a debugging aid).
    """

    max_frame_bytes: int = 16 * 2**20
    max_connection_bytes: int = 2**30
    max_connection_frames: int = 1_000_000
    max_sessions: int = 64
    max_waiting_sessions: int = 256
    max_commit_batch: int = 32
    max_commit_batch_bytes: int = 2**21
    commit_idle_seconds: float = 0.002
    handshake_timeout_seconds: float = 30.0
    session_idle_seconds: float = 900.0
    max_producer_bytes: int | None = None
    max_producer_frames: int | None = None
    max_round_bytes: int | None = None
    max_round_records: int | None = None
    commit_scope: str = COMMIT_SCOPE_ROUND

    def __post_init__(self) -> None:
        for field in (
            "max_frame_bytes",
            "max_connection_bytes",
            "max_connection_frames",
            "max_sessions",
            "max_waiting_sessions",
            "max_commit_batch",
            "max_commit_batch_bytes",
        ):
            if int(getattr(self, field)) <= 0 and field != "max_waiting_sessions":
                raise ValueError(f"{field} must be positive")
            if int(getattr(self, field)) < 0:
                raise ValueError(f"{field} must be non-negative")
        for field in (
            "commit_idle_seconds",
            "handshake_timeout_seconds",
            "session_idle_seconds",
        ):
            if float(getattr(self, field)) <= 0:
                raise ValueError(f"{field} must be positive")
        for field in (
            "max_producer_bytes",
            "max_producer_frames",
            "max_round_bytes",
            "max_round_records",
        ):
            value = getattr(self, field)
            if value is not None and int(value) <= 0:
                raise ValueError(f"{field} must be positive (or None)")
        if self.commit_scope not in (COMMIT_SCOPE_ROUND, COMMIT_SCOPE_CONNECTION):
            raise ValueError(
                f"commit_scope must be '{COMMIT_SCOPE_ROUND}' or "
                f"'{COMMIT_SCOPE_CONNECTION}', got {self.commit_scope!r}"
            )

    def with_overrides(self, overrides: dict) -> "ServiceLimits":
        """A copy with *overrides* layered over these limits.

        This is how per-round limits work: the service's defaults stay
        one immutable instance, and each round that declares a
        ``limits`` block in the rounds config gets its own derived
        instance.  Unknown field names are loud (a typo'd limit that
        silently fell through would look enforced while enforcing
        nothing); values re-run the full ``__post_init__`` validation.
        """
        known = {field.name for field in fields(self)}
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise ValueError(
                f"unknown ServiceLimits field(s) {unknown}; known fields: "
                f"{sorted(known)}"
            )
        return replace(self, **overrides)


class ConnectionQuota:
    """Running byte/frame tally for one connection."""

    def __init__(self, limits: ServiceLimits) -> None:
        self.limits = limits
        self.bytes_used = 0
        self.frames_used = 0

    def charge(self, nbytes: int) -> None:
        """Account one frame of *nbytes*; raises when over quota."""
        self.bytes_used += int(nbytes)
        self.frames_used += 1
        if self.bytes_used > self.limits.max_connection_bytes:
            raise QuotaExceededError(
                f"connection exceeded its byte quota "
                f"({self.bytes_used} > {self.limits.max_connection_bytes})"
            )
        if self.frames_used > self.limits.max_connection_frames:
            raise QuotaExceededError(
                f"connection exceeded its frame quota "
                f"({self.frames_used} > {self.limits.max_connection_frames})"
            )


class BudgetMeter:
    """A persistent ``(bytes, count)`` budget with **atomic** charging.

    Unlike :class:`ConnectionQuota` (which dies with its connection, so
    its meter state after a refusal is irrelevant), these meters
    outlive connections — so :meth:`charge` must be all-or-nothing: a
    refused charge leaves the meter exactly as it was, else the failed
    attempt itself would burn budget and lock a producer out below its
    real committed usage.  One implementation serves both the
    per-producer and per-round scopes; fixes cannot drift between them.
    """

    def __init__(
        self,
        label: str,
        *,
        max_bytes: int | None,
        max_count: int | None,
        count_noun: str,
    ) -> None:
        self.label = label
        self.max_bytes = max_bytes
        self.max_count = max_count
        self.count_noun = count_noun
        self.bytes_used = 0
        self.count_used = 0

    def charge(self, nbytes: int) -> None:
        """Charge one record of *nbytes* atomically; raises untouched."""
        new_bytes = self.bytes_used + int(nbytes)
        new_count = self.count_used + 1
        if self.max_bytes is not None and new_bytes > self.max_bytes:
            raise QuotaExceededError(
                f"{self.label} exceeded its byte quota "
                f"({new_bytes} > {self.max_bytes})"
            )
        if self.max_count is not None and new_count > self.max_count:
            raise QuotaExceededError(
                f"{self.label} exceeded its {self.count_noun} quota "
                f"({new_count} > {self.max_count})"
            )
        self.bytes_used = new_bytes
        self.count_used = new_count

    def refund(self, nbytes: int) -> None:
        """Return the charge for a staged record that never committed
        (dead connection, commit rollback, lost a same-seq race) — the
        producer will resend it, and resending must not double-bill."""
        self.bytes_used -= int(nbytes)
        self.count_used -= 1


class ProducerQuota(BudgetMeter):
    """One producer's cross-connection meter on one hosted round.

    The round hands every session of producer ``p`` the same instance,
    so reconnecting never resets the meter, and resume seeds it from
    the ledger's per-producer totals.  Charged only for records staged
    fresh (duplicates are free); under two connections of one producer
    racing the same seq, the loser's charge is refunded at commit time.
    """

    def __init__(self, limits: ServiceLimits, producer_id: str) -> None:
        super().__init__(
            f"producer {producer_id!r}",
            max_bytes=limits.max_producer_bytes,
            max_count=limits.max_producer_frames,
            count_noun="frame",
        )
        self.producer_id = producer_id

    @property
    def frames_used(self) -> int:
        return self.count_used

    @frames_used.setter
    def frames_used(self, value: int) -> None:
        self.count_used = int(value)


class RoundQuota(BudgetMeter):
    """Whole-round commit meter (all producers, all connections)."""

    def __init__(self, limits: ServiceLimits, round_id: int) -> None:
        super().__init__(
            f"round {round_id}",
            max_bytes=limits.max_round_bytes,
            max_count=limits.max_round_records,
            count_noun="record",
        )
        self.round_id = round_id

    @property
    def records_used(self) -> int:
        return self.count_used

    @records_used.setter
    def records_used(self, value: int) -> None:
        self.count_used = int(value)


class Deadline:
    """A monotonic-clock idle deadline.

    All service reaping runs through this class so no deadline can ever
    be measured from the wrong origin (connection start) or the wrong
    clock (wall time, which NTP may step backwards or forwards under a
    long-lived session).  :meth:`reset` marks activity; :meth:`remaining`
    is what goes into ``asyncio.wait_for``.
    """

    def __init__(self, seconds: float, *, clock=time.monotonic) -> None:
        if float(seconds) <= 0:
            raise ValueError(f"deadline must be positive, got {seconds}")
        self.seconds = float(seconds)
        self._clock = clock
        self._last = clock()

    def reset(self) -> None:
        """Record activity now; the deadline restarts from this instant."""
        self._last = self._clock()

    def remaining(self) -> float:
        """Seconds left before the deadline expires (may be <= 0)."""
        return self.seconds - (self._clock() - self._last)

    def expired(self) -> bool:
        return self.remaining() <= 0
