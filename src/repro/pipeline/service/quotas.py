"""Resource bounds for the collection service.

A public collection endpoint faces arbitrarily many producers, each
able to declare arbitrarily large frames.  Every limit here exists to
make the service's memory and connection load *bounded by
configuration*, not by producer behavior:

* ``max_frame_bytes`` is enforced against the header's declared payload
  length **before** the payload is read, so no connection ever buffers
  more than one capped frame;
* per-connection byte/frame quotas cut off a producer that streams
  forever on one connection (records it already got acks for stay
  merged — shedding is not a rollback);
* session capacity stalls excess producers at the accept gate
  (bounded-wait backpressure) and sheds them with a refusal ack once
  the wait queue itself is full, which is the difference between
  degrading and OOMing under a producer flood.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...exceptions import QuotaExceededError

__all__ = ["ServiceLimits", "ConnectionQuota"]


@dataclass(frozen=True)
class ServiceLimits:
    """Service-wide resource policy (defaults suit a localhost round).

    Attributes
    ----------
    max_frame_bytes:
        Cap on one frame's declared payload; checked before the payload
        is read.
    max_connection_bytes / max_connection_frames:
        Per-connection ingest quota; the connection is shed with a
        refusal ack when it crosses either.
    max_sessions:
        Concurrent connections being served; arrivals beyond this stall
        at the accept gate until a slot frees.
    max_waiting_sessions:
        Stalled arrivals beyond this are shed immediately — the bound
        on the backpressure queue itself.
    max_commit_batch:
        Group-commit window: up to this many pipelined records share
        one spill-fsync + ledger-fsync pair (acks still follow the
        fsyncs, so the durability contract per ack is unchanged).
    max_commit_batch_bytes:
        Byte-based batch trigger: a batch also closes once its staged
        record frames exceed this, so large records commit in small
        groups whose fsyncs overlap the next batch's network reads
        instead of one monolithic end-of-burst commit.
    commit_idle_seconds:
        How long a non-empty batch waits for another pipelined record
        before committing what it has.  Only a producer that stops
        mid-burst ever observes this latency.
    handshake_timeout_seconds:
        Deadline for the whole handshake (hello through proof).  This is
        the anti-slow-loris bound: without it, an *unauthenticated*
        connection that sends nothing — or half a frame — would hold a
        session slot forever, and 64 idle sockets would wedge the
        service for every legitimate producer.
    session_idle_seconds:
        Deadline for an authenticated session's next record (including
        a stalled mid-frame payload).  Idle sessions are reaped so
        their slots return to the pool; a reaped producer reconnects
        and resends, which exactly-once makes free.
    """

    max_frame_bytes: int = 16 * 2**20
    max_connection_bytes: int = 2**30
    max_connection_frames: int = 1_000_000
    max_sessions: int = 64
    max_waiting_sessions: int = 256
    max_commit_batch: int = 32
    max_commit_batch_bytes: int = 2**21
    commit_idle_seconds: float = 0.002
    handshake_timeout_seconds: float = 30.0
    session_idle_seconds: float = 900.0

    def __post_init__(self) -> None:
        for field in (
            "max_frame_bytes",
            "max_connection_bytes",
            "max_connection_frames",
            "max_sessions",
            "max_waiting_sessions",
            "max_commit_batch",
            "max_commit_batch_bytes",
        ):
            if int(getattr(self, field)) <= 0 and field != "max_waiting_sessions":
                raise ValueError(f"{field} must be positive")
            if int(getattr(self, field)) < 0:
                raise ValueError(f"{field} must be non-negative")
        for field in (
            "commit_idle_seconds",
            "handshake_timeout_seconds",
            "session_idle_seconds",
        ):
            if float(getattr(self, field)) <= 0:
                raise ValueError(f"{field} must be positive")


class ConnectionQuota:
    """Running byte/frame tally for one connection."""

    def __init__(self, limits: ServiceLimits) -> None:
        self.limits = limits
        self.bytes_used = 0
        self.frames_used = 0

    def charge(self, nbytes: int) -> None:
        """Account one frame of *nbytes*; raises when over quota."""
        self.bytes_used += int(nbytes)
        self.frames_used += 1
        if self.bytes_used > self.limits.max_connection_bytes:
            raise QuotaExceededError(
                f"connection exceeded its byte quota "
                f"({self.bytes_used} > {self.limits.max_connection_bytes})"
            )
        if self.frames_used > self.limits.max_connection_frames:
            raise QuotaExceededError(
                f"connection exceeded its frame quota "
                f"({self.frames_used} > {self.limits.max_connection_frames})"
            )
