"""Producer side of the exactly-once collection protocol.

:class:`ServiceSession` runs the HMAC handshake and then ships records
one at a time, each blocking on its per-record ack; :func:`send_records`
is the one-shot convenience.  The client-visible contract:

* ``ACK_MERGED`` — the record is durably committed (spill + ledger
  fsync'd) and in the round;
* ``ACK_DUPLICATE`` — the record was *already* committed (this send was
  a resend after a lost ack); the producer advances exactly as for
  merged — that status is the exactly-once guarantee working;
* ``ACK_REFUSED`` — the record (or session) was rejected; the detail
  string says why, and the service closes the connection.

A producer that crashes or loses its connection mid-round simply
reconnects and **blindly resends every record it cannot prove was
acked** — duplicates are free, gaps are losses, so resending is always
the safe move.  Sequence numbers must be durable at the producer (a
file, a cursor into its own spill) and never reused for different
bytes; the service refuses such equivocation.

Against a scale-out deployment the producer is *routing-aware*:
:func:`send_records_routed` resolves its shard from the fleet's
:class:`~.routing.RoutingTable` and follows ``MOVED`` redirects
(surfaced as :class:`~repro.exceptions.MovedError` by
:meth:`ServiceSession.connect`) when its table is stale — mid-rebalance
a producer loses one round trip, never a record.  :func:`control_call`
is the operator/coordinator side: one authenticated control request,
one MAC-verified reply.
"""

from __future__ import annotations

import asyncio

from ...exceptions import (
    AuthenticationError,
    ControlError,
    MovedError,
    ServiceError,
    ValidationError,
    WireFormatError,
)
from ..collect import wire
from ..collect.framing import read_session_frame
from .auth import (
    control_request_mac,
    derive_round_key,
    fresh_nonce,
    session_mac,
    verify_control_reply_mac,
)
from .routing import RoutingTable, parse_moved

__all__ = [
    "ServiceSession",
    "send_records",
    "send_records_routed",
    "refresh_routing_table",
    "control_call",
]


class ServiceSession:
    """One authenticated producer connection to a collection service."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        key,
        producer_id: str,
        m: int,
        round_id: int = 0,
        party: bytes = b"",
    ) -> None:
        if not producer_id:
            raise ValidationError("producer_id must be a non-empty string")
        self.host = host
        self.port = port
        self.key = derive_round_key(key)
        self.producer_id = producer_id
        self.m = int(m)
        self.round_id = int(round_id)
        # The party label scopes the session proof to the peer's role in
        # a split-trust round: empty against a plain collector (the
        # transcript stays byte-identical to earlier protocol versions),
        # keeper_party_label(keeper_id) against that share keeper — so a
        # proof minted for one party is unspendable at any other.
        self.party = bytes(party)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        """Open the connection and complete the HMAC handshake.

        Raises :class:`~repro.exceptions.AuthenticationError` when the
        service refuses the session (wrong key, round mismatch, or
        capacity shed — the message carries the service's detail).
        """
        if self._writer is not None:
            raise ValidationError("session is already connected")
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        try:
            client_nonce = fresh_nonce()
            await self._send(
                wire.SessionHello(
                    m=self.m,
                    round_id=self.round_id,
                    producer_id=self.producer_id,
                    nonce=client_nonce,
                )
            )
            reply = await self._read("session challenge")
            if isinstance(reply, wire.Ack):
                moved = parse_moved(reply.detail)
                if moved is not None:
                    epoch, shard, host, port = moved
                    raise MovedError(
                        f"producer {self.producer_id!r} is routed to shard "
                        f"{shard} at {host}:{port} (table epoch {epoch})",
                        epoch=epoch,
                        shard=shard,
                        host=host,
                        port=port,
                    )
                raise AuthenticationError(
                    f"service refused the session: {reply.detail}"
                )
            if not isinstance(reply, wire.SessionChallenge):
                raise AuthenticationError(
                    f"expected a session challenge, got {type(reply).__name__}"
                )
            # A version-3 challenge carries the hosted round's
            # registration token; binding it scopes this proof to that
            # exact round incarnation.  An empty token (version-2
            # challenge, single-round service) leaves the transcript
            # byte-identical to the original protocol.
            mac = session_mac(
                self.key,
                m=self.m,
                round_id=self.round_id,
                producer_id=self.producer_id,
                client_nonce=client_nonce,
                server_nonce=reply.nonce,
                round_token=reply.round_token,
                party=self.party,
            )
            await self._send(
                wire.SessionProof(m=self.m, round_id=self.round_id, mac=mac)
            )
            ack = await self._read("session ack")
            if not isinstance(ack, wire.Ack) or ack.status != wire.ACK_SESSION:
                detail = ack.detail if isinstance(ack, wire.Ack) else repr(ack)
                raise AuthenticationError(
                    f"service refused the session: {detail}"
                )
        except BaseException:
            await self.close()
            raise

    async def send(self, frame, seq: int) -> wire.Ack:
        """Ship one record and block for its ack.

        *frame* is core-frame ``bytes`` or an encodable object
        (:class:`~repro.pipeline.accumulator.CountAccumulator` /
        :class:`~repro.pipeline.collect.wire.PackedChunk`).  Returns the
        service's :class:`~repro.pipeline.collect.wire.Ack`; both
        ``ACK_MERGED`` and ``ACK_DUPLICATE`` mean the record is in the
        round.
        """
        await self.send_nowait(frame, seq)
        return await self.read_ack(seq)

    async def send_nowait(self, frame, seq: int) -> None:
        """Ship one record without waiting for its ack.

        The pipelining half of the protocol: acks come back strictly in
        send order on a connection, so a producer may stream a window of
        records and then collect acks with :meth:`read_ack` — the
        pattern :func:`send_records` uses to avoid one network round
        trip per record.
        """
        if self._writer is None:
            raise ValidationError("session is not connected")
        if not isinstance(frame, (bytes, bytearray, memoryview)):
            frame = wire.dumps(frame)
        record = wire.Record(
            m=self.m, round_id=self.round_id, seq=int(seq), frame=bytes(frame)
        )
        await self._send(record)

    async def read_ack(self, seq) -> wire.Ack:
        """Collect the next in-order ack (*seq* names it in errors)."""
        ack = await self._read(f"ack for seq {seq}")
        if not isinstance(ack, wire.Ack):
            raise WireFormatError(
                f"expected an ack for seq {seq}, got {type(ack).__name__}"
            )
        return ack

    async def close(self) -> None:
        if self._writer is None:
            return
        writer, self._writer = self._writer, None
        self._reader = None
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "ServiceSession":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def _send(self, obj) -> None:
        self._writer.write(wire.dumps(obj))
        await self._writer.drain()

    async def _read(self, expectation: str):
        obj = await read_session_frame(self._reader)
        if obj is None:
            raise WireFormatError(
                f"service hung up while the producer awaited the {expectation}"
            )
        return obj


async def send_records(
    host: str,
    port: int,
    frames,
    *,
    key,
    producer_id: str,
    m: int,
    round_id: int = 0,
    start_seq: int = 0,
    raise_on_refusal: bool = True,
    max_inflight: int = 64,
    party: bytes = b"",
) -> list[wire.Ack]:
    """Authenticate and ship *frames* as records ``start_seq, ...``.

    The exactly-once counterpart of
    :func:`repro.pipeline.collect.collector.send_frames`: each frame
    becomes one record, acks come back in order, and re-running the call
    verbatim (a blind resend) yields ``ACK_DUPLICATE`` for everything
    already committed instead of double-counting it.

    Records are pipelined through a *bounded window*: up to
    ``max_inflight`` records stream out before their acks are
    collected, so the cost per record is the service's commit rather
    than a network round trip — while unread acks can never pile up
    past the window.  (Unbounded pipelining would deadlock on TCP flow
    control for very large batches: the service blocks draining acks
    nobody is reading while the producer blocks writing records nobody
    is reading.)
    """
    session = ServiceSession(
        host,
        port,
        key=key,
        producer_id=producer_id,
        m=m,
        round_id=round_id,
        party=party,
    )
    await session.connect()
    try:
        frames = list(frames)
        max_inflight = max(1, int(max_inflight))
        acks: list[wire.Ack] = []
        write_error: Exception | None = None

        async def collect_ack() -> None:
            ack = await session.read_ack(start_seq + len(acks))
            acks.append(ack)
            if ack.status == wire.ACK_REFUSED:
                moved = parse_moved(ack.detail)
                if moved is not None:
                    # A live rebalance moved this producer mid-batch.
                    # Raise MovedError even when refusals are tolerated:
                    # the routed sender blind-resends the whole batch to
                    # the new owner, where the transferred ledger
                    # entries dedup whatever already committed here.
                    epoch, shard, host, port = moved
                    raise MovedError(
                        f"producer moved to shard {shard!r} at "
                        f"{host}:{port} (table epoch {epoch}, seq "
                        f"{ack.seq})",
                        epoch=epoch,
                        shard=shard,
                        host=host,
                        port=port,
                    )
                if raise_on_refusal:
                    raise ServiceError(
                        f"service refused seq {ack.seq}: {ack.detail}"
                    )

        sent = 0
        try:
            for offset, frame in enumerate(frames):
                while sent - len(acks) >= max_inflight:
                    await collect_ack()
                await session.send_nowait(frame, start_seq + offset)
                sent += 1
        except (ConnectionError, OSError) as exc:
            # The service may have refused a record and dropped the
            # connection while the batch was still streaming; collect
            # the acks that made it out to surface the real reason.
            write_error = exc
        while len(acks) < len(frames):
            try:
                await collect_ack()
            except (WireFormatError, ConnectionError, OSError):
                break
        if len(acks) < len(frames) and not any(
            ack.status == wire.ACK_REFUSED for ack in acks
        ):
            detail = f": {write_error}" if write_error is not None else ""
            raise WireFormatError(
                f"service hung up after acknowledging {len(acks)} of "
                f"{len(frames)} records{detail}"
            )
        return acks
    finally:
        await session.close()


async def refresh_routing_table(
    table: RoutingTable, *, control_key, timeout: float = 10.0
) -> RoutingTable | None:
    """Best-effort fetch of a *newer* routing table from the fleet.

    Asks every shard in *table* for its installed table (``route-table``
    control op) and returns the highest-epoch answer that is strictly
    newer than *table*, or ``None`` when no shard is reachable or none
    knows a newer table.  Mid-rebalance the shards legitimately
    disagree — some already hold the next epoch, some still the old
    one — so only the maximum is trustworthy.  Requires the fleet's
    control key — the coordinator/operator credential — so only
    routing-aware senders that hold it (tests, operator tools, the
    coordinator's own relays) can refresh.
    """
    best: RoutingTable | None = None
    for shard in table.shards():
        try:
            body, _ = await control_call(
                shard.host,
                shard.port,
                key=control_key,
                op="route-table",
                timeout=timeout,
            )
        except (ControlError, ConnectionError, OSError, TimeoutError):
            continue
        payload = body.get("table")
        if payload is None:
            continue
        try:
            fresh = RoutingTable.from_payload(payload)
        except ValidationError:
            continue
        if fresh.epoch > table.epoch and (
            best is None or fresh.epoch > best.epoch
        ):
            best = fresh
    return best


async def send_records_routed(
    table: RoutingTable,
    frames,
    *,
    key,
    producer_id: str,
    m: int,
    round_id: int = 0,
    start_seq: int = 0,
    raise_on_refusal: bool = True,
    max_inflight: int = 64,
    max_redirects: int = 3,
    party: bytes = b"",
    control_key=None,
) -> list[wire.Ack]:
    """:func:`send_records` against a shard fleet.

    Resolves the producer's shard from *table* (consistent hashing on
    the producer id — the same function the shards enforce) and ships
    there; when the shard answers ``MOVED`` (this table is stale, a
    rebalance moved the producer), follows the redirect to the owning
    shard's address instead of failing.  Redirects are bounded by
    *max_redirects*: a fleet whose shards disagree about ownership
    (mid-rollout, each bouncing the producer to the other) surfaces as
    a loud error, not a livelock.

    When *control_key* is given, a stale table is no longer a dead
    end: exhausting the redirect budget — or finding the resolved
    owner's address unreachable (the shard was re-addressed
    mid-rebalance) — triggers ONE table refresh from the fleet
    (:func:`refresh_routing_table`); if a newer epoch turns up, the
    redirect budget restarts against the refreshed owner.  Without the
    credential the old behaviour is unchanged: exhaustion raises
    :class:`~repro.exceptions.ServiceError`, a dead shard raises its
    connection error.

    Records either commit on the shard that owns the producer or are
    never acked — a redirect happens at handshake time, before any
    record frame is sent, so no partial batch can land on a wrong
    shard.
    """
    owner = table.owner(producer_id)
    host, port = owner.host, owner.port
    hops: list[str] = []
    attempts = max(1, int(max_redirects)) + 1
    remaining = attempts
    refreshed = False

    async def refresh_once() -> bool:
        """Swap in a newer fleet table, once per call; False = give up."""
        nonlocal table, host, port, remaining, refreshed
        if control_key is None or refreshed:
            return False
        refreshed = True
        fresh = await refresh_routing_table(table, control_key=control_key)
        if fresh is None:
            return False
        table = fresh
        fresh_owner = fresh.owner(producer_id)
        host, port = fresh_owner.host, fresh_owner.port
        hops.append(f"refreshed table to epoch {fresh.epoch}")
        remaining = attempts
        return True

    while remaining > 0:
        remaining -= 1
        try:
            return await send_records(
                host,
                port,
                frames,
                key=key,
                producer_id=producer_id,
                m=m,
                round_id=round_id,
                start_seq=start_seq,
                raise_on_refusal=raise_on_refusal,
                max_inflight=max_inflight,
                party=party,
            )
        except MovedError as moved:
            hops.append(f"{host}:{port} -> {moved.shard}@{moved.host}:"
                        f"{moved.port} (epoch {moved.epoch})")
            host, port = moved.host, moved.port
        except (ConnectionError, OSError):
            # The address this table (or a MOVED detail minted from an
            # equally stale one) points at is gone — the one situation
            # where retrying the same table can never succeed.
            if not await refresh_once():
                raise
        if remaining == 0:
            await refresh_once()
    raise ServiceError(
        f"producer {producer_id!r} exceeded {max_redirects} MOVED "
        f"redirects; the shard fleet disagrees about ownership: "
        f"{'; '.join(hops)}"
    )


async def control_call(
    host: str,
    port: int,
    *,
    key,
    op: str,
    body: dict | None = None,
    timeout: float = 30.0,
) -> tuple[dict, bytes]:
    """One authenticated control-plane round trip.

    Sends a MAC'd :class:`~repro.pipeline.collect.wire.ControlRequest`
    with a fresh nonce and returns the reply's ``(body, attachment)``
    after verifying that the reply MAC covers this request's nonce —
    a recorded reply to some other request can never be replayed into
    this call.  A ``CONTROL_ERROR`` reply raises
    :class:`~repro.exceptions.ControlError` with the peer's detail;
    so does a reply whose MAC fails (its body is then *not* trusted
    for the error message).
    """
    control_key = derive_round_key(key)
    body = dict(body or {})
    nonce = fresh_nonce()
    request = wire.ControlRequest(
        op=op,
        nonce=nonce,
        body=body,
        mac=control_request_mac(control_key, op=op, nonce=nonce, body=body),
    )

    async def roundtrip() -> tuple[dict, bytes]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(wire.dumps(request))
            await writer.drain()
            reply = await read_session_frame(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if reply is None:
            raise ControlError(
                f"{host}:{port} hung up on control op {op!r}"
            )
        if isinstance(reply, wire.Ack):
            # A host without a control plane refuses with a plain ack.
            raise ControlError(
                f"{host}:{port} refused control op {op!r}: {reply.detail}"
            )
        if not isinstance(reply, wire.ControlReply):
            raise ControlError(
                f"expected a control reply from {host}:{port}, got "
                f"{type(reply).__name__}"
            )
        if not verify_control_reply_mac(
            control_key,
            reply.mac,
            status=reply.status,
            nonce=reply.nonce,
            body=reply.body,
            attachment=reply.attachment,
        ) or reply.nonce != nonce:
            raise ControlError(
                f"control reply from {host}:{port} failed MAC/nonce "
                f"verification for op {op!r}"
            )
        if reply.status != wire.CONTROL_OK:
            raise ControlError(
                f"{host}:{port} refused control op {op!r}: "
                f"{reply.body.get('detail', reply.body)}"
            )
        return reply.body, reply.attachment

    return await asyncio.wait_for(roundtrip(), timeout)
