"""Cross-connection group commit: one fsync pair per *round* batch.

The single-round service amortized fsyncs across one connection's
pipelined records.  At many-producer scale that still pays one
spill-fsync + ledger-fsync pair per connection per batch window — with
64 producers trickling records, the disk sees 128 fsyncs per window
while each covers a handful of frames.  :class:`GroupCommitScheduler`
moves the batching to where the durability actually lives, the round:

* every session of a round submits its staged batch to the round's one
  scheduler and awaits its outcome;
* a single committer task drains **everything queued across all
  connections** into one commit — all spill appends, one spill fsync,
  all ledger appends, one ledger fsync, all merges — then resolves
  each submission;
* while that commit's fsyncs run, new submissions pile up behind it,
  so the coalescing window is exactly the disk's own latency: the
  slower the fsync, the bigger the batch it absorbs.  Nobody waits on
  a timer.

Every ack still goes out only after the fsync pair covering its record,
so durability-per-ack is byte-for-byte what the per-connection design
guaranteed.  Because one task does every append for the round, spill
order equals ledger order by construction — the prefix property that
recovery depends on — with no cross-task lock to misuse.

``ServiceLimits.commit_scope = "connection"`` keeps the scheduler but
drains one submission per commit — the per-connection baseline the
``make bench-service`` multi-round scenario measures group commit
against.

Failure containment mirrors the single-round design: a mid-commit IO
error rolls the spill and any staged ledger entries back to the
pre-batch boundary and fails every submission in the batch (their
connections drop; nothing was acked, so producers resend); if even the
rollback fails, the scheduler fail-stops the round — further commits
are refused until an operator restarts with ``resume``, which
reconciles from the last durable prefix.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
from collections import deque
from dataclasses import dataclass, field

from ...exceptions import LedgerError, ServiceError
from .quotas import COMMIT_SCOPE_ROUND, ServiceLimits

__all__ = ["GroupCommitScheduler"]


@dataclass
class _Submission:
    """One connection's staged batch, awaiting the round's committer."""

    producer_id: str
    items: list[dict]
    future: asyncio.Future = field(repr=False)


class GroupCommitScheduler:
    """The single durable commit pipeline of one hosted round."""

    def __init__(self, round_state, limits: ServiceLimits) -> None:
        self.round = round_state
        self.cross_connection = limits.commit_scope == COMMIT_SCOPE_ROUND
        self.commits = 0
        self.cross_connection_batches = 0  # commits coalescing >1 session
        self.failed: str | None = None
        self._queue: deque[_Submission] = deque()
        self._wakeup = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._closed = False
        self._paused = False
        # Set whenever the committer is parked (no batch mid-commit);
        # cleared the instant it takes one.  paused() waits on it so a
        # migration never interleaves with a half-written batch.
        self._idle = asyncio.Event()
        self._idle.set()

    # ------------------------------------------------------------------
    # Session-facing API
    # ------------------------------------------------------------------
    async def submit(self, producer_id: str, items: list[dict]) -> None:
        """Durably commit *items*; returns once their statuses are final.

        Item statuses are resolved in place (``fresh`` → ``merged`` /
        ``duplicate`` / ``equivocation``); the caller acks from them.
        Raises whatever the commit raised (IO errors, fail-stop) —
        nothing was acked for this batch, so the connection must drop
        and its producer resend.

        Cancelling the *caller* does not cancel the commit: the
        committer task owns the durable work, and an abandoned
        submission simply has nobody left to ack it (its records are
        still durable, so the reconnecting producer's blind resend
        dedups).  This is what lets service shutdown cancel connection
        handlers without ever abandoning a half-committed batch.
        """
        if self._closed:
            raise ServiceError(
                f"round {self.round.round_id} is closed to new commits"
            )
        future = asyncio.get_running_loop().create_future()
        self._queue.append(_Submission(producer_id, items, future))
        if self._task is None:
            self._task = asyncio.create_task(self._run())
        self._wakeup.set()
        await future

    async def close(self) -> None:
        """Drain every queued submission, then stop the committer."""
        self._closed = True
        self._wakeup.set()
        if self._task is not None:
            task, self._task = self._task, None
            await task

    @contextlib.asynccontextmanager
    async def paused(self):
        """No commit runs — or starts — while this context is held.

        The migration primitive: ``migrate-out`` / ``migrate-in`` must
        read and mutate the round's spill, ledger, and accumulator as
        one atomic unit, which in a single-threaded event loop means
        "synchronously, with no commit batch in flight".  Entering the
        context waits for the current batch (if any) to finish and
        parks the committer; submissions keep queueing and drain the
        moment the context exits.  Holders must not await between the
        mutations they need to be atomic.
        """
        if self._paused:
            raise ServiceError(
                f"round {self.round.round_id}'s commit pipeline is already "
                "paused; one migration at a time"
            )
        self._paused = True
        try:
            await self._idle.wait()
            yield
        finally:
            self._paused = False
            self._wakeup.set()

    # ------------------------------------------------------------------
    # The committer task
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        while True:
            if self._paused or not self._queue:
                self._idle.set()
                if self._closed and not self._queue:
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            self._idle.clear()
            if self.cross_connection:
                batch = list(self._queue)
                self._queue.clear()
            else:
                batch = [self._queue.popleft()]
            try:
                try:
                    await self._commit(batch)
                finally:
                    # Whatever happened — commit-time dedup, a refused
                    # equivocation, a rolled-back batch — records that
                    # did not end up merged give their quota charges
                    # back (their producers will resend them).
                    for submission in batch:
                        self.round.refund_uncommitted(
                            submission.producer_id, submission.items
                        )
            except BaseException as exc:
                for submission in batch:
                    if not submission.future.cancelled():
                        submission.future.set_exception(exc)
                # A shared exception object would warn "never
                # retrieved" for abandoned futures; consuming it here
                # is enough (live callers re-raise their own copy).
                for submission in batch:
                    if submission.future.cancelled():
                        continue
                    submission.future.exception()
                if isinstance(exc, asyncio.CancelledError):
                    raise
            else:
                for submission in batch:
                    if not submission.future.cancelled():
                        submission.future.set_result(None)

    async def _commit(self, batch: list[_Submission]) -> None:
        """Spill, fsync, ledger, fsync, merge — for the whole batch.

        The committer is the only writer of the round's spill and
        ledger, so this coroutine needs no lock; its only failure mode
        is a real IO error, handled by rollback + fail-stop exactly as
        the single-round service did.
        """
        round_ = self.round
        loop = asyncio.get_running_loop()
        if self.failed is not None:
            raise ServiceError(
                "round refused the commit: a previous commit failed "
                f"({self.failed}) and the spill could not be rolled "
                "back; restart the service with resume=True"
            )
        self.commits += 1
        if len(batch) > 1:
            self.cross_connection_batches += 1
        flat = [
            (submission.producer_id, item)
            for submission in batch
            for item in submission.items
        ]
        # Resolve deferred duplicate checks first (no ordering hazard: a
        # committed ledger entry's digest never changes), hashing on the
        # executor so resend-heavy sessions do not stall the loop.
        to_verify = [
            item for _, item in flat if item["status"] == "verify-dup"
        ]
        if to_verify:
            digests = await loop.run_in_executor(
                None,
                lambda: [
                    hashlib.sha256(item["frame"]).digest()
                    for item in to_verify
                ],
            )
            for item, digest in zip(to_verify, digests):
                item["status"] = (
                    "duplicate"
                    if digest == item["known_digest"]
                    else "equivocation"
                )
        spill_mark = round_.writer.end_offset
        ledger_mark = round_.ledger.mark()
        appended_keys: list[tuple[str, int]] = []
        to_commit: list[tuple[str, dict]] = []
        batch_staged: dict[tuple[str, int], bytes] = {}
        try:
            for producer_id, item in flat:
                if item["status"] != "fresh":
                    continue
                if producer_id in round_.excluded:
                    # The producer was migrated off this shard after the
                    # item was staged; refuse instead of merging so the
                    # producer resends to the new owner (where the
                    # transferred ledger entries dedup the resend).
                    item["status"] = "moved"
                    continue
                key = (producer_id, item["seq"])
                # Re-check now: another connection of this producer may
                # have committed the seq since the item was staged —
                # in an earlier batch (ledger hit) or earlier in this
                # very batch (batch_staged hit).
                entry = round_.ledger.seen(producer_id, item["seq"])
                if entry is not None:
                    digest = hashlib.sha256(item["frame"]).digest()
                    item["status"] = (
                        "duplicate"
                        if entry.digest == digest
                        else "equivocation"
                    )
                    continue
                previous = batch_staged.get(key)
                if previous is not None:
                    item["status"] = (
                        "duplicate"
                        if previous == item["frame"]
                        else "equivocation"
                    )
                    continue
                round_.writer.append_frame(item["frame"])
                item["spill_end"] = round_.writer.end_offset
                batch_staged[key] = item["frame"]
                to_commit.append((producer_id, item))
            if to_commit:
                # Hash the batch and fsync the spill concurrently on
                # the executor (sha256 releases the GIL on large
                # buffers); both must finish before any ledger entry
                # exists, so a ledger entry can never point past
                # durable bytes.
                digests, _ = await asyncio.gather(
                    loop.run_in_executor(
                        None,
                        lambda: [
                            hashlib.sha256(item["frame"]).digest()
                            for _, item in to_commit
                        ],
                    ),
                    loop.run_in_executor(None, round_.writer.sync),
                )
                for (producer_id, item), digest in zip(to_commit, digests):
                    round_.ledger.append(
                        producer_id,
                        item["seq"],
                        digest,
                        item["spill_end"],
                    )
                    appended_keys.append((producer_id, item["seq"]))
                await loop.run_in_executor(None, round_.ledger.sync)
                for producer_id, item in to_commit:
                    round_.absorb(item["inner"])
                    round_.note_member(producer_id, item["seq"])
                    round_.records_merged += 1
                    round_.bytes_ingested += len(item["frame"])
                    item["status"] = "merged"
        except BaseException as exc:
            try:
                if appended_keys:
                    round_.ledger.rollback(ledger_mark, appended_keys)
                round_.writer.rollback(spill_mark)
            except BaseException as repair_exc:
                self.failed = repr(exc)
                raise LedgerError(
                    f"commit failed ({exc}) and rolling the spill back "
                    f"failed too ({repair_exc}); refusing further "
                    "commits — restart the service with resume=True"
                ) from exc
            raise
