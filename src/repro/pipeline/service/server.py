"""The multi-tenant, exactly-once collection endpoint.

:class:`CollectionService` hosts one or many concurrent collection
*rounds* and merges producer records into each round's live
:class:`~repro.pipeline.accumulator.CountAccumulator` with guarantees
the plain :class:`~repro.pipeline.collect.collector.Collector` does not
make:

* **authenticated, per producer**: a session must complete the HMAC
  handshake of :mod:`.auth` before any record frame is looked at, and
  the key is the *producer's own* (looked up in the service's
  :class:`~.auth.KeyRegistry` by the HELLO's producer id) — so a
  compromised producer can forge nothing for any other producer;
* **multiplexed**: the HELLO's ``round_id`` routes the session through
  the :class:`~.rounds.RoundRegistry` to one hosted round; every check,
  spill, ledger entry, and merge after that point happens against that
  round's own state, and a scoped round's registration token is bound
  into the session proof (version-3 challenge) so the session cannot
  even in principle be confused with another incarnation of the round;
* **exactly-once**: every merged record is committed to the round's
  :class:`~.ledger.IdempotencyLedger` (spill fsync → ledger fsync →
  merge → ack), so a blind resend after a lost ack is acknowledged as a
  duplicate and not re-merged, and a reused sequence number carrying
  different bytes is refused as equivocation;
* **bounded**: frames over ``limits.max_frame_bytes`` are refused at
  header-parse time; connection, *producer* (cross-connection), and
  *round* quotas shed abusive traffic without rollback; session
  capacity stalls (then sheds) a producer flood instead of OOMing; and
  every reap deadline is monotonic-clock based, measured from the last
  completed frame (:class:`~.quotas.Deadline`) — never from connection
  start;
* **resumable**: ``resume=True`` replays every hosted round's ledger,
  truncates each spill back to its ledger's committed offset, and
  keeps serving the same rounds.

The commit order per record is unchanged from the single-round design
(spill append → spill fsync → ledger append → ledger fsync → merge →
ack), but batching moved from the connection to the round: all active
sessions of a round feed one :class:`~.commit.GroupCommitScheduler`,
and one fsync pair covers everything any of them staged while the
previous commit was in flight — see :mod:`.commit`.
"""

from __future__ import annotations

import asyncio
import os

from ...exceptions import (
    QuotaExceededError,
    ServiceError,
    ValidationError,
    WireFormatError,
)
from ..collect import wire
from ..collect.framing import read_frame_bytes
from ..collect.store import ShardStore
from .auth import KeyRegistry, fresh_nonce, verify_session_mac
from .quotas import ConnectionQuota, Deadline, ServiceLimits
from .rounds import (
    LEDGER_FILENAME,
    SERVICE_SHARD_ID,
    RoundRegistry,
    RoundState,
    round_namespace,
)

__all__ = [
    "CollectionService",
    "LEDGER_FILENAME",
    "SERVICE_SHARD_ID",
]


def _coerce_round_spec(spec) -> tuple[int, int]:
    """``(m, round_id)`` from a dict, mapping-like, or pair."""
    if isinstance(spec, dict):
        try:
            return int(spec["m"]), int(spec["round_id"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(
                f"round spec {spec!r} must carry integer 'm' and 'round_id'"
            ) from exc
    try:
        m, round_id = spec
        return int(m), int(round_id)
    except (TypeError, ValueError) as exc:
        raise ValidationError(
            f"round specs are dicts with integer 'm'/'round_id' or "
            f"(m, round_id) pairs, got {spec!r}"
        ) from exc


class CollectionService:
    """Durable, authenticated, exactly-once collection — single- or
    multi-round.

    Parameters
    ----------
    m:
        Single-round mode: the round's report width.  The round is
        ``round_id`` (default 0), its files live directly under
        *store_root* (the layout of the original single-round service,
        so existing round directories resume unchanged), and its
        challenges stay version-2 wire frames.
    rounds:
        Multi-round mode (mutually exclusive with *m*): an iterable of
        ``{"m": ..., "round_id": ...}`` dicts or ``(m, round_id)``
        pairs.  Each round lives in its own store namespace
        (``<store_root>/round_<id>/``) with its own spill, ledger, and
        commit pipeline, and its sessions are bound to the round's
        registration token (version-3 challenges).
    key:
        Default producer secret (bytes, hex string, or passphrase —
        see :func:`~.auth.derive_round_key`): any producer without an
        individual entry authenticates against it.  Omit it to require
        an individual key for every producer.
    keys:
        Per-producer keys: a :class:`~.auth.KeyRegistry`, a
        ``{producer_id: secret}`` dict, or a keyfile path (hot-reloaded
        on change — rotation without restart).
    store_root:
        Directory for all durable round state.
    limits:
        Resource policy; defaults to :class:`~.quotas.ServiceLimits`.
    resume:
        Recover every configured round from its ledger + spill instead
        of starting fresh.  Starting fresh over existing round files is
        refused — that is how double-counting accidents happen.
    """

    def __init__(
        self,
        m: int | None = None,
        *,
        key=None,
        keys=None,
        store_root: str,
        round_id: int = 0,
        rounds=None,
        limits: ServiceLimits | None = None,
        resume: bool = False,
    ) -> None:
        if (m is None) == (rounds is None):
            raise ValidationError(
                "pass exactly one of m= (single-round) or rounds= "
                "(multi-round)"
            )
        if key is None and keys is None:
            raise ValidationError(
                "the service needs key= (shared default) and/or keys= "
                "(per-producer registry / dict / keyfile path)"
            )
        if isinstance(keys, KeyRegistry):
            if key is not None:
                raise ValidationError(
                    "pass the default key to the KeyRegistry itself when "
                    "supplying one"
                )
            self.keys = keys
        elif isinstance(keys, dict):
            self.keys = KeyRegistry(keys, default_key=key)
        elif keys is not None:
            self.keys = KeyRegistry.from_file(
                os.fspath(keys), default_key=key
            )
        else:
            self.keys = KeyRegistry(default_key=key)

        self.limits = limits or ServiceLimits()
        self.store = ShardStore(store_root)
        self.registry = RoundRegistry()
        self._closed = False
        try:
            if m is not None:
                # Legacy flat layout: the lone round owns store_root.
                self.registry.open_round(
                    int(m),
                    int(round_id),
                    self.store,
                    self.limits,
                    resume=resume,
                    scoped=False,
                )
            else:
                for spec in rounds:
                    self.add_round(*_coerce_round_spec(spec), resume=resume)
            if not len(self.registry):
                raise ValidationError("rounds= must name at least one round")
        except BaseException:
            # A half-configured service must not leak the rounds it
            # already opened: drop their handles and (for rounds that
            # did not exist before this attempt) the files they
            # created, so a corrected rerun starts clean.
            for state in self.registry.rounds():
                state.release()
            raise

        # Service-wide counters (sessions are a service resource; record
        # counters live with their round and aggregate via properties).
        self.sessions_opened = 0
        self.sessions_rejected = 0
        self.sessions_shed = 0
        self.connections_failed = 0
        self.last_connection_error: str | None = None

        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._session_slots = asyncio.Semaphore(self.limits.max_sessions)
        self._waiting_sessions = 0

    # ------------------------------------------------------------------
    # Round management
    # ------------------------------------------------------------------
    def add_round(
        self, m: int, round_id: int, *, resume: bool = False
    ) -> RoundState:
        """Host one more round (usable while the service is serving).

        The round's files live under ``<store_root>/round_<id>/``; its
        sessions are scoped to a fresh registration token.
        """
        if self._closed:
            raise ValidationError("service is closed")
        return self.registry.open_round(
            m,
            round_id,
            self.store.namespaced(round_namespace(round_id)),
            self.limits,
            resume=resume,
            scoped=True,
        )

    def round(self, round_id: int) -> RoundState:
        """The hosted round *round_id* (loud when absent)."""
        state = self.registry.get(round_id)
        if state is None:
            raise ValidationError(
                f"no hosted round {round_id}; hosted: "
                f"{self.registry.round_ids()}"
            )
        return state

    def _single_round(self) -> RoundState:
        rounds = self.registry.rounds()
        if len(rounds) != 1:
            raise ValidationError(
                f"service hosts {len(rounds)} rounds; use "
                ".round(round_id) to address one"
            )
        return rounds[0]

    # Single-round conveniences (and the original service's public
    # surface): each delegates to the lone hosted round.
    @property
    def m(self) -> int:
        return self._single_round().m

    @property
    def round_id(self) -> int:
        return self._single_round().round_id

    @property
    def accumulator(self):
        return self._single_round().accumulator

    @property
    def ledger(self):
        return self._single_round().ledger

    @property
    def _writer(self):
        return self._single_round().writer

    # Aggregate record counters across every hosted round.
    @property
    def records_merged(self) -> int:
        return sum(r.records_merged for r in self.registry.rounds())

    @property
    def records_duplicate(self) -> int:
        return sum(r.records_duplicate for r in self.registry.rounds())

    @property
    def records_refused(self) -> int:
        return sum(r.records_refused for r in self.registry.rounds())

    @property
    def bytes_ingested(self) -> int:
        return sum(r.bytes_ingested for r in self.registry.rounds())

    @property
    def recovered_records(self) -> int:
        return sum(r.recovered_records for r in self.registry.rounds())

    @property
    def recovered_spill_bytes_discarded(self) -> int:
        return sum(
            r.recovered_spill_bytes_discarded
            for r in self.registry.rounds()
        )

    @property
    def producers_seen(self) -> set[str]:
        seen: set[str] = set()
        for state in self.registry.rounds():
            seen |= state.producers_seen
        return seen

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def serve(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Start accepting sessions; returns the bound ``(host, port)``."""
        if self._closed:
            raise ValidationError("service is closed")
        if self._server is not None:
            raise ValidationError("service is already serving")
        self._server = await asyncio.start_server(
            self._handle_connection, host=host, port=port
        )
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def close(self) -> None:
        """Graceful shutdown: stop serving, persist every round.

        In-flight connection handlers are cancelled and awaited (a
        stalled producer cannot hang shutdown); each round's commit
        pipeline is drained, its spill and ledger synced and closed,
        and its snapshot written atomically.  Live accumulators stay
        readable.
        """
        await self._stop_serving()
        if self._closed:
            return
        self._closed = True
        for state in self.registry.rounds():
            await state.close(snapshot=True)

    async def abort(self) -> None:
        """Shutdown without final snapshots (crash-adjacent teardown).

        Everything acknowledged is already fsync'd, so an aborted
        service resumes exactly like a killed one; tests use this to
        exercise the recovery path without process-level kills.
        """
        await self._stop_serving()
        if self._closed:
            return
        self._closed = True
        for state in self.registry.rounds():
            await state.close(snapshot=False)

    async def _stop_serving(self) -> None:
        if self._server is not None:
            server, self._server = self._server, None
            server.close()
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks, return_exceptions=True)
                self._conn_tasks.clear()
            await server.wait_closed()
        # Cancelled handlers may have left submissions queued on round
        # schedulers; those hold durable work, so the rounds' close()
        # (which every shutdown path runs next) drains them before any
        # spill or ledger handle closes.

    def stats(self) -> dict:
        """Operator-facing counters: service-wide plus per round."""
        rounds = self.registry.rounds()
        stats = {
            "records_merged": self.records_merged,
            "records_duplicate": self.records_duplicate,
            "records_refused": self.records_refused,
            "sessions_opened": self.sessions_opened,
            "sessions_rejected": self.sessions_rejected,
            "sessions_shed": self.sessions_shed,
            "connections_failed": self.connections_failed,
            "bytes_ingested": self.bytes_ingested,
            "n": sum(state.accumulator.n for state in rounds),
            "producers": sorted(self.producers_seen),
            "recovered_records": self.recovered_records,
            "recovered_spill_bytes_discarded": (
                self.recovered_spill_bytes_discarded
            ),
            "rounds": {
                state.round_id: state.stats() for state in rounds
            },
        }
        if len(rounds) == 1:
            stats["m"] = rounds[0].m
            stats["round_id"] = rounds[0].round_id
        return stats

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _send(self, writer: asyncio.StreamWriter, obj) -> None:
        writer.write(wire.dumps(obj))
        await writer.drain()

    async def _refuse(
        self,
        writer: asyncio.StreamWriter,
        seq: int,
        detail: str,
        *,
        m: int = 1,
        round_id: int = 0,
    ) -> None:
        await self._send(
            writer,
            wire.Ack(
                m=max(1, int(m)),
                round_id=int(round_id),
                seq=seq,
                status=wire.ACK_REFUSED,
                detail=detail,
            ),
        )

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            # Backpressure gate: stall while the service is at session
            # capacity, shed outright once the wait queue is full too.
            if self._session_slots.locked():
                if self._waiting_sessions >= self.limits.max_waiting_sessions:
                    self.sessions_shed += 1
                    await self._refuse(writer, 0, "service at capacity")
                    return
                self._waiting_sessions += 1
                try:
                    await self._session_slots.acquire()
                finally:
                    self._waiting_sessions -= 1
            else:
                await self._session_slots.acquire()
            try:
                await self._serve_session(reader, writer)
            finally:
                self._session_slots.release()
        except asyncio.CancelledError:
            # Service shutdown cancelled this handler; committed records
            # are durable, the in-flight one was never acked.
            self.connections_failed += 1
            self.last_connection_error = (
                "service closed during an in-flight session"
            )
            return
        except (WireFormatError, ValidationError, ServiceError) as exc:
            # One broken producer must not take the service down.
            self.connections_failed += 1
            self.last_connection_error = str(exc)
            return
        except (ConnectionError, OSError) as exc:
            self.connections_failed += 1
            self.last_connection_error = str(exc)
            return
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_session(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        quota = ConnectionQuota(self.limits)
        try:
            # The anti-slow-loris bound: an unauthenticated connection
            # gets one deadline for the whole handshake, so it cannot
            # hold a session slot by sending nothing (or half a frame).
            resolved = await asyncio.wait_for(
                self._handshake(reader, writer, quota),
                self.limits.handshake_timeout_seconds,
            )
        except asyncio.TimeoutError:
            self.sessions_rejected += 1
            self.last_connection_error = "handshake timed out"
            return
        if resolved is None:
            return
        round_, producer_id = resolved
        producer_quota = round_.producer_quota(producer_id)

        async def refuse_record(seq: int, detail: str) -> None:
            """Count and ack one refusal with this round's geometry.

            Every refusal goes through here so no future site can
            forget the round geometry and fall back to the m=1 default.
            """
            round_.records_refused += 1
            await self._refuse(
                writer, seq, detail, m=round_.m, round_id=round_.round_id
            )
        # The idle reap deadline: monotonic, measured from the last
        # completed frame — a session's age is irrelevant, only its
        # silence.  (Measuring from connection start would reap any
        # legitimately long engagement, e.g. a producer trickling
        # records to several rounds back to back.)
        idle = Deadline(self.limits.session_idle_seconds)
        # Group commit with double buffering: pipelined records stage
        # into `pending` while the previous batch commits through the
        # round's scheduler, so fsyncs overlap the network reads.  A
        # batch closes when it hits max_commit_batch, when the stream
        # goes idle for commit_idle_seconds, or at end of session / any
        # refusal.  This connection's batches commit strictly in order
        # (the next is only scheduled once the previous settled); the
        # round's scheduler interleaves them with other sessions'
        # batches under one fsync pair — acks still always follow the
        # fsyncs covering them.
        pending: list[dict] = []
        pending_bytes = 0
        staged_frames: dict[int, bytes] = {}
        commit_task: asyncio.Task | None = None

        async def settle() -> bool:
            """Await the in-flight batch; True if the session survives.

            ``commit_task`` is cleared only once the task has actually
            finished: if cancellation lands while we are suspended here,
            the still-set reference lets the function's ``finally`` wait
            the task out instead of abandoning it mid-ack.
            """
            nonlocal commit_task
            if commit_task is None:
                return True
            task = commit_task
            try:
                result = await task
            finally:
                if commit_task is task and task.done():
                    commit_task = None
            return result

        async def flush() -> bool:
            """Settle the in-flight batch, then commit `pending` inline."""
            nonlocal pending_bytes
            if not await settle():
                return False
            if not pending:
                return True
            batch, pending[:] = list(pending), []
            pending_bytes = 0
            staged_frames.clear()
            return await self._commit_batch(writer, round_, producer_id, batch)

        try:
            while True:
                if not pending and idle.expired():
                    self.connections_failed += 1
                    self.last_connection_error = "session idle timeout"
                    await self._refuse(
                        writer,
                        0,
                        "session idle timeout",
                        m=round_.m,
                        round_id=round_.round_id,
                    )
                    return
                try:
                    # Header deadline: the group-commit idle signal when
                    # a batch is staged, the remaining monotonic reap
                    # window when nothing is.  Payload deadline: a peer
                    # stalled mid-frame can never recover to a frame
                    # boundary, so that raises WireFormatError (drop),
                    # not the idle TimeoutError (flush / reap).
                    frame = await read_frame_bytes(
                        reader,
                        max_frame_bytes=self.limits.max_frame_bytes,
                        header_timeout=(
                            self.limits.commit_idle_seconds
                            if pending
                            else idle.remaining()
                        ),
                        payload_timeout=self.limits.session_idle_seconds,
                    )
                except asyncio.TimeoutError:
                    if pending:
                        if not await flush():
                            return
                        continue
                    # Idle session: free the slot; everything acked is
                    # durable, so the producer just reconnects.
                    self.connections_failed += 1
                    self.last_connection_error = "session idle timeout"
                    await self._refuse(
                        writer,
                        0,
                        "session idle timeout",
                        m=round_.m,
                        round_id=round_.round_id,
                    )
                    return
                except QuotaExceededError as exc:
                    # A failed flush already sent the connection's last
                    # ack (a commit-time refusal); a second refusal here
                    # would desync the client's positional accounting.
                    if not await flush():
                        return
                    await refuse_record(0, str(exc))
                    return
                if frame is None:
                    await flush()
                    return  # clean end of session
                idle.reset()
                try:
                    quota.charge(len(frame))
                except QuotaExceededError as exc:
                    if not await flush():
                        return
                    await refuse_record(0, str(exc))
                    return
                obj = wire.loads(frame)
                if not isinstance(obj, wire.Record):
                    if not await flush():
                        return
                    await refuse_record(
                        0,
                        f"expected a record frame, got {type(obj).__name__}",
                    )
                    return
                staged = round_.stage_record(producer_id, obj, staged_frames)
                if staged["status"] == "refused":
                    if not await flush():
                        return
                    await refuse_record(obj.seq, staged["detail"])
                    return
                if staged["status"] == "fresh":
                    # Producer and round budgets meter records accepted
                    # for commit — never duplicates — so the blind
                    # resend the exactly-once protocol relies on is
                    # quota-free, before and after a restart.  (The
                    # connection quota above still bounds raw ingest.)
                    # Charges are atomic and paired: a refused or
                    # half-failed attempt leaves both meters untouched,
                    # and charges for records that end up NOT
                    # committing are refunded — see
                    # RoundState.refund_uncommitted.
                    try:
                        producer_quota.charge(len(staged["frame"]))
                        try:
                            round_.quota.charge(len(staged["frame"]))
                        except QuotaExceededError:
                            producer_quota.refund(len(staged["frame"]))
                            raise
                        staged["charged"] = len(staged["frame"])
                    except QuotaExceededError as exc:
                        if not await flush():
                            return
                        await refuse_record(obj.seq, str(exc))
                        return
                pending.append(staged)
                pending_bytes += len(frame)
                if staged["status"] == "fresh":
                    staged_frames[obj.seq] = staged["frame"]
                if (
                    len(pending) >= self.limits.max_commit_batch
                    or pending_bytes >= self.limits.max_commit_batch_bytes
                ):
                    # Hand the full batch to a background commit and keep
                    # reading; if the previous batch refused (equivocation
                    # at commit time), the session is over.
                    if not await settle():
                        return
                    batch, pending = pending, []
                    pending_bytes = 0
                    staged_frames = {}
                    commit_task = asyncio.create_task(
                        self._commit_batch(writer, round_, producer_id, batch)
                    )
        finally:
            # Staged-but-never-submitted records will be resent by the
            # producer; give their quota charges back first.  (Items
            # handed to a commit task are the scheduler's to settle.)
            round_.refund_uncommitted(producer_id, pending)
            # Never abandon an in-flight commit's *ack half*: the
            # durable half lives with the round's scheduler (drained at
            # close), but this task still owes the client its acks.
            # Its writes may fail against a closing socket; swallow
            # that rather than masking the original exit.
            if commit_task is not None:
                try:
                    await commit_task
                except Exception:
                    pass

    async def _handshake(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        quota: ConnectionQuota,
    ) -> tuple[RoundState, str] | None:
        """Run the server side of the HMAC handshake.

        Routes the HELLO through the round registry and authenticates
        against the producer's own key.  Returns ``(round, producer_id)``,
        or ``None`` after a refusal ack (the caller just closes the
        connection).
        """
        frame = await read_frame_bytes(
            reader, max_frame_bytes=self.limits.max_frame_bytes
        )
        if frame is None:
            return None  # connected and left without a word
        quota.charge(len(frame))
        hello = wire.loads(frame)
        if not isinstance(hello, wire.SessionHello):
            self.sessions_rejected += 1
            await self._refuse(
                writer,
                0,
                f"expected a session hello, got {type(hello).__name__}",
            )
            return None
        round_ = self.registry.get(hello.round_id)
        if round_ is None:
            self.sessions_rejected += 1
            await self._refuse(
                writer,
                0,
                f"round mismatch: this service hosts rounds "
                f"{self.registry.round_ids()}, hello claims round "
                f"{hello.round_id}",
                m=hello.m,
                round_id=hello.round_id,
            )
            return None
        if hello.m != round_.m:
            self.sessions_rejected += 1
            await self._refuse(
                writer,
                0,
                f"round mismatch: round {round_.round_id} is "
                f"m={round_.m}, hello claims m={hello.m}",
                m=round_.m,
                round_id=round_.round_id,
            )
            return None
        # Key lookup happens here, but an unknown producer is NOT
        # refused yet: it receives a challenge like anyone else and
        # fails at proof verification with the same message as a
        # wrong key, so an unauthenticated client cannot probe which
        # producer ids are registered (enumeration oracle).
        producer_key = self.keys.lookup(hello.producer_id)
        server_nonce = fresh_nonce()
        await self._send(
            writer,
            wire.SessionChallenge(
                m=round_.m,
                round_id=round_.round_id,
                nonce=server_nonce,
                round_token=round_.token,
            ),
        )
        frame = await read_frame_bytes(
            reader, max_frame_bytes=self.limits.max_frame_bytes
        )
        if frame is None:
            self.sessions_rejected += 1
            return None
        quota.charge(len(frame))
        proof = wire.loads(frame)
        authenticated = (
            producer_key is not None
            and isinstance(proof, wire.SessionProof)
            and verify_session_mac(
                producer_key,
                proof.mac,
                m=round_.m,
                round_id=round_.round_id,
                producer_id=hello.producer_id,
                client_nonce=hello.nonce,
                server_nonce=server_nonce,
                round_token=round_.token,
            )
        )
        if not authenticated:
            self.sessions_rejected += 1
            await self._refuse(
                writer,
                0,
                "authentication failed",
                m=round_.m,
                round_id=round_.round_id,
            )
            return None
        self.sessions_opened += 1
        round_.producers_seen.add(hello.producer_id)
        await self._send(
            writer,
            wire.Ack(
                m=round_.m,
                round_id=round_.round_id,
                seq=0,
                status=wire.ACK_SESSION,
                detail=hello.producer_id,
            ),
        )
        return round_, hello.producer_id

    # ------------------------------------------------------------------
    # The exactly-once record commit
    # ------------------------------------------------------------------
    async def _commit_batch(
        self,
        writer: asyncio.StreamWriter,
        round_: RoundState,
        producer_id: str,
        pending: list[dict],
    ) -> bool:
        """Commit a staged batch through the round's scheduler, then ack.

        The scheduler resolves every item's status under the fsync pair
        covering it (group commit, possibly coalesced with other
        sessions' batches); acks go out here, in this connection's
        stage order, only afterwards — each individual ack still
        certifies durability.  Returns False when an equivocation
        surfaced at commit time (connection must drop).
        """
        await round_.scheduler.submit(producer_id, pending)
        return await self._send_batch_acks(writer, round_, pending)

    async def _send_batch_acks(
        self,
        writer: asyncio.StreamWriter,
        round_: RoundState,
        pending: list[dict],
    ) -> bool:
        survived = True
        for item in pending:
            if item["status"] == "merged":
                status, detail = wire.ACK_MERGED, ""
            elif item["status"] == "duplicate":
                round_.records_duplicate += 1
                status, detail = wire.ACK_DUPLICATE, "already merged"
            else:  # equivocation discovered at commit time
                round_.records_refused += 1
                status = wire.ACK_REFUSED
                detail = (
                    f"equivocation: seq {item['seq']} is already "
                    "committed with different frame bytes"
                )
                survived = False
            await self._send(
                writer,
                wire.Ack(
                    m=round_.m,
                    round_id=round_.round_id,
                    seq=item["seq"],
                    status=status,
                    detail=detail,
                ),
            )
            if not survived:
                break  # refusal is the connection's last ack
        return survived
