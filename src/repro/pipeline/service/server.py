"""The exactly-once collection endpoint.

:class:`CollectionService` merges producer records into one live
:class:`~repro.pipeline.accumulator.CountAccumulator` with four
guarantees the plain :class:`~repro.pipeline.collect.collector.
Collector` does not make:

* **authenticated**: a session must complete the HMAC handshake of
  :mod:`.auth` before any record frame is looked at — unauthenticated
  or wrong-key producers merge nothing;
* **exactly-once**: every merged record is committed to the
  :class:`~.ledger.IdempotencyLedger` (spill fsync → ledger fsync →
  merge → ack), so a blind resend after a lost ack is acknowledged as a
  duplicate and not re-merged, and a reused sequence number carrying
  different bytes is refused as equivocation;
* **bounded**: frames over ``limits.max_frame_bytes`` are refused at
  header-parse time, connections over their byte/frame quota are shed,
  and session capacity stalls (then sheds) a producer flood instead of
  OOMing — see :mod:`.quotas`;
* **resumable**: ``resume=True`` reloads the ledger, truncates the
  spill back to the ledger's committed offset (dropping frames that
  were spilled but never acknowledged — their producers will resend),
  replays the spill into a fresh accumulator, and keeps serving the
  same round.

The commit order is the correctness core::

    spill append → spill fsync → ledger append → ledger fsync
                 → merge into the live round → ack

An ack therefore implies durability; absence of an ack implies the
producer must resend; and the ledger entry's ``spill_end`` makes the
spill truncatable to exactly the acknowledged prefix on restart.

Commits are *group commits*: a connection's pipelined records stage
into a batch (bounded by records, bytes, and stream idleness — see
:class:`~.quotas.ServiceLimits`) and one spill-fsync + ledger-fsync
pair covers the whole batch, with every ack still sent only after both.
Batches run in a background task so the fsyncs overlap the next batch's
network reads, digests are hashed on the executor next to the spill
fsync, and a global lock serializes batches so spill order equals
ledger order — the prefix property recovery depends on.
"""

from __future__ import annotations

import asyncio
import hashlib
import os

import numpy as np

from ...exceptions import (
    LedgerError,
    QuotaExceededError,
    ServiceError,
    ValidationError,
    WireFormatError,
)
from ...kernels import packed_width
from ..accumulator import CountAccumulator
from ..collect import wire
from ..collect.collector import apply_frame_object
from ..collect.store import ShardStore
from .auth import derive_round_key, fresh_nonce, verify_session_mac
from ..collect.framing import read_frame_bytes
from .ledger import IdempotencyLedger
from .quotas import ConnectionQuota, ServiceLimits

__all__ = ["CollectionService", "LEDGER_FILENAME", "SERVICE_SHARD_ID"]

LEDGER_FILENAME = "round.ledger"
SERVICE_SHARD_ID = 0


class CollectionService:
    """Durable, authenticated, exactly-once collection for one round.

    Parameters
    ----------
    m, round_id:
        The round geometry every session and record must match.
    key:
        Shared round secret (bytes, hex string, or passphrase — see
        :func:`~.auth.derive_round_key`).
    store_root:
        Directory for the round's durable state: the record spill
        (``shard_00000.chunks`` + ``.index``), the idempotency ledger
        (``round.ledger``), and the final snapshot.
    limits:
        Resource policy; defaults to :class:`~.quotas.ServiceLimits`.
    resume:
        Recover an interrupted round from ledger + spill instead of
        starting fresh.  Starting fresh over existing round files is
        refused — that is how double-counting accidents happen.
    """

    def __init__(
        self,
        m: int,
        *,
        key,
        store_root: str,
        round_id: int = 0,
        limits: ServiceLimits | None = None,
        resume: bool = False,
    ) -> None:
        self.m = int(m)
        self.round_id = int(round_id)
        self.key = derive_round_key(key)
        self.limits = limits or ServiceLimits()
        self.store = ShardStore(store_root)
        self.ledger = IdempotencyLedger(
            os.path.join(self.store.root, LEDGER_FILENAME)
        )
        self.accumulator = CountAccumulator(self.m, round_id=self.round_id)

        # Counters (stats(), tests, and operator logs).
        self.records_merged = 0
        self.records_duplicate = 0
        self.records_refused = 0
        self.sessions_opened = 0
        self.sessions_rejected = 0
        self.sessions_shed = 0
        self.connections_failed = 0
        self.last_connection_error: str | None = None
        self.bytes_ingested = 0
        self.producers_seen: set[str] = set()
        self.recovered_records = 0
        self.recovered_spill_bytes_discarded = 0

        existing = os.path.exists(self.ledger.path) or os.path.exists(
            self.store.chunk_path(SERVICE_SHARD_ID)
        )
        if existing and not resume:
            raise ValidationError(
                f"{self.store.root} already holds round state "
                f"({LEDGER_FILENAME} / spill); pass resume=True to recover "
                "it, or point the service at a fresh directory"
            )
        self._recover()
        self._writer = self.store.writer(
            SERVICE_SHARD_ID,
            self.m,
            round_id=self.round_id,
            durable=True,
            resume=True,
        )

        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._commit_tasks: set[asyncio.Task] = set()
        self._session_slots = asyncio.Semaphore(self.limits.max_sessions)
        self._waiting_sessions = 0
        self._commit_lock = asyncio.Lock()
        self._commit_failed: str | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Rebuild round state from ledger + spill (both may be absent)."""
        count = self.ledger.load()
        recovered = self.store.recover_shard(
            SERVICE_SHARD_ID, committed_offset=self.ledger.committed_offset
        )
        if recovered["frames"] != count:
            raise LedgerError(
                f"ledger commits {count} records but the recovered spill "
                f"holds {recovered['frames']} frames; round state under "
                f"{self.store.root} is inconsistent"
            )
        self.recovered_spill_bytes_discarded = recovered["discarded_bytes"]
        chunk_path = self.store.chunk_path(SERVICE_SHARD_ID)
        if count and os.path.exists(chunk_path):
            with open(chunk_path, "rb") as handle:
                for obj in wire.iter_frames(handle):
                    apply_frame_object(obj, self.accumulator)
        self.bytes_ingested = recovered["offset"]
        self.records_merged = count
        self.recovered_records = count
        self.producers_seen = {
            entry.producer_id for entry in self.ledger.entries()
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def serve(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Start accepting sessions; returns the bound ``(host, port)``."""
        if self._closed:
            raise ValidationError("service is closed")
        if self._server is not None:
            raise ValidationError("service is already serving")
        self._server = await asyncio.start_server(
            self._handle_connection, host=host, port=port
        )
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def close(self) -> None:
        """Graceful shutdown: stop serving, persist the final snapshot.

        In-flight connection handlers are cancelled and awaited (a
        stalled producer cannot hang shutdown); the spill and ledger are
        synced and closed; the round's snapshot is written atomically
        next to them.  The live accumulator stays readable.
        """
        await self._stop_serving()
        if self._closed:
            return
        self._closed = True
        self._writer.sync()
        self._writer.close()
        self.store.write_snapshot(SERVICE_SHARD_ID, self.accumulator)
        self.ledger.close()

    async def abort(self) -> None:
        """Shutdown without the final snapshot (crash-adjacent teardown).

        Everything acknowledged is already fsync'd, so an aborted
        service resumes exactly like a killed one; tests use this to
        exercise the recovery path without process-level kills.
        """
        await self._stop_serving()
        if self._closed:
            return
        self._closed = True
        self._writer.close()
        self.ledger.close()

    async def _stop_serving(self) -> None:
        if self._server is not None:
            server, self._server = self._server, None
            server.close()
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks, return_exceptions=True)
                self._conn_tasks.clear()
            await server.wait_closed()
        # Cancelled handlers may leave shielded commit batches running;
        # those hold durable work (and the commit lock order), so drain
        # them before anyone closes the spill or ledger handles.
        while self._commit_tasks:
            await asyncio.gather(
                *list(self._commit_tasks), return_exceptions=True
            )

    def stats(self) -> dict:
        """Operator-facing counters for logs and tests."""
        return {
            "m": self.m,
            "round_id": self.round_id,
            "n": self.accumulator.n,
            "records_merged": self.records_merged,
            "records_duplicate": self.records_duplicate,
            "records_refused": self.records_refused,
            "sessions_opened": self.sessions_opened,
            "sessions_rejected": self.sessions_rejected,
            "sessions_shed": self.sessions_shed,
            "connections_failed": self.connections_failed,
            "bytes_ingested": self.bytes_ingested,
            "producers": sorted(self.producers_seen),
            "recovered_records": self.recovered_records,
            "recovered_spill_bytes_discarded": (
                self.recovered_spill_bytes_discarded
            ),
        }

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _send(self, writer: asyncio.StreamWriter, obj) -> None:
        writer.write(wire.dumps(obj))
        await writer.drain()

    async def _refuse(
        self, writer: asyncio.StreamWriter, seq: int, detail: str
    ) -> None:
        await self._send(
            writer,
            wire.Ack(
                m=self.m,
                round_id=self.round_id,
                seq=seq,
                status=wire.ACK_REFUSED,
                detail=detail,
            ),
        )

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            # Backpressure gate: stall while the service is at session
            # capacity, shed outright once the wait queue is full too.
            if self._session_slots.locked():
                if self._waiting_sessions >= self.limits.max_waiting_sessions:
                    self.sessions_shed += 1
                    await self._refuse(writer, 0, "service at capacity")
                    return
                self._waiting_sessions += 1
                try:
                    await self._session_slots.acquire()
                finally:
                    self._waiting_sessions -= 1
            else:
                await self._session_slots.acquire()
            try:
                await self._serve_session(reader, writer)
            finally:
                self._session_slots.release()
        except asyncio.CancelledError:
            # Service shutdown cancelled this handler; committed records
            # are durable, the in-flight one was never acked.
            self.connections_failed += 1
            self.last_connection_error = (
                "service closed during an in-flight session"
            )
            return
        except (WireFormatError, ValidationError, ServiceError) as exc:
            # One broken producer must not take the service down.
            self.connections_failed += 1
            self.last_connection_error = str(exc)
            return
        except (ConnectionError, OSError) as exc:
            self.connections_failed += 1
            self.last_connection_error = str(exc)
            return
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_session(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        quota = ConnectionQuota(self.limits)
        try:
            # The anti-slow-loris bound: an unauthenticated connection
            # gets one deadline for the whole handshake, so it cannot
            # hold a session slot by sending nothing (or half a frame).
            producer_id = await asyncio.wait_for(
                self._handshake(reader, writer, quota),
                self.limits.handshake_timeout_seconds,
            )
        except asyncio.TimeoutError:
            self.sessions_rejected += 1
            self.last_connection_error = "handshake timed out"
            return
        if producer_id is None:
            return
        # Group commit with double buffering: pipelined records stage
        # into `pending` while the previous batch commits in a
        # background task, so the fsyncs overlap the network reads.  A
        # batch closes when it hits max_commit_batch, when the stream
        # goes idle for commit_idle_seconds, or at end of session / any
        # refusal.  Batches commit strictly in order (the next one is
        # only scheduled once the previous is settled), and acks always
        # follow the batch's fsyncs — each individual ack still
        # certifies durability.
        pending: list[dict] = []
        pending_bytes = 0
        staged_frames: dict[int, bytes] = {}
        commit_task: asyncio.Task | None = None

        async def settle() -> bool:
            """Await the in-flight batch; True if the session survives.

            ``commit_task`` is cleared only once the task has actually
            finished: if cancellation lands while we are suspended here,
            the still-set reference lets the function's ``finally`` wait
            the task out instead of abandoning it mid-ack.
            """
            nonlocal commit_task
            if commit_task is None:
                return True
            task = commit_task
            try:
                result = await task
            finally:
                if commit_task is task and task.done():
                    commit_task = None
            return result

        async def flush() -> bool:
            """Settle the in-flight batch, then commit `pending` inline."""
            nonlocal pending_bytes
            if not await settle():
                return False
            if not pending:
                return True
            batch, pending[:] = list(pending), []
            pending_bytes = 0
            staged_frames.clear()
            return await self._commit_batch(writer, producer_id, batch)

        try:
            while True:
                try:
                    # Header deadline: the group-commit idle signal when
                    # a batch is staged, the session reap deadline when
                    # nothing is.  Payload deadline: a peer stalled
                    # mid-frame can never recover to a frame boundary,
                    # so that raises WireFormatError (drop), not the
                    # idle TimeoutError (flush / reap).
                    frame = await read_frame_bytes(
                        reader,
                        max_frame_bytes=self.limits.max_frame_bytes,
                        header_timeout=(
                            self.limits.commit_idle_seconds
                            if pending
                            else self.limits.session_idle_seconds
                        ),
                        payload_timeout=self.limits.session_idle_seconds,
                    )
                except asyncio.TimeoutError:
                    if pending:
                        if not await flush():
                            return
                        continue
                    # Idle session: free the slot; everything acked is
                    # durable, so the producer just reconnects.
                    self.connections_failed += 1
                    self.last_connection_error = "session idle timeout"
                    await self._refuse(writer, 0, "session idle timeout")
                    return
                except QuotaExceededError as exc:
                    # A failed flush already sent the connection's last
                    # ack (a commit-time refusal); a second refusal here
                    # would desync the client's positional accounting.
                    if not await flush():
                        return
                    self.records_refused += 1
                    await self._refuse(writer, 0, str(exc))
                    return
                if frame is None:
                    await flush()
                    return  # clean end of session
                try:
                    quota.charge(len(frame))
                except QuotaExceededError as exc:
                    if not await flush():
                        return
                    self.records_refused += 1
                    await self._refuse(writer, 0, str(exc))
                    return
                obj = wire.loads(frame)
                if not isinstance(obj, wire.Record):
                    if not await flush():
                        return
                    self.records_refused += 1
                    await self._refuse(
                        writer,
                        0,
                        f"expected a record frame, got {type(obj).__name__}",
                    )
                    return
                staged = self._stage_record(producer_id, obj, staged_frames)
                if staged["status"] == "refused":
                    if not await flush():
                        return
                    self.records_refused += 1
                    await self._refuse(writer, obj.seq, staged["detail"])
                    return
                pending.append(staged)
                pending_bytes += len(frame)
                if staged["status"] == "fresh":
                    staged_frames[obj.seq] = staged["frame"]
                if (
                    len(pending) >= self.limits.max_commit_batch
                    or pending_bytes >= self.limits.max_commit_batch_bytes
                ):
                    # Hand the full batch to a background commit and keep
                    # reading; if the previous batch refused (equivocation
                    # at commit time), the session is over.
                    if not await settle():
                        return
                    batch, pending = pending, []
                    pending_bytes = 0
                    staged_frames = {}
                    commit_task = asyncio.create_task(
                        self._commit_batch(writer, producer_id, batch)
                    )
        finally:
            # Never abandon an in-flight commit: it holds durable work
            # (and the commit lock order).  Awaiting here is safe even
            # on cancellation — the task itself was never cancelled.
            # Its ack writes may fail against a closing socket; swallow
            # that (the durable half is separately tracked and drained
            # via _commit_tasks) rather than masking the original exit.
            if commit_task is not None:
                try:
                    await commit_task
                except Exception:
                    pass

    async def _handshake(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        quota: ConnectionQuota,
    ) -> str | None:
        """Run the server side of the HMAC handshake.

        Returns the authenticated producer id, or ``None`` after a
        refusal ack (the caller just closes the connection).
        """
        frame = await read_frame_bytes(
            reader, max_frame_bytes=self.limits.max_frame_bytes
        )
        if frame is None:
            return None  # connected and left without a word
        quota.charge(len(frame))
        hello = wire.loads(frame)
        if not isinstance(hello, wire.SessionHello):
            self.sessions_rejected += 1
            await self._refuse(
                writer,
                0,
                f"expected a session hello, got {type(hello).__name__}",
            )
            return None
        if hello.m != self.m or hello.round_id != self.round_id:
            self.sessions_rejected += 1
            await self._refuse(
                writer,
                0,
                f"round mismatch: service is (m={self.m}, round="
                f"{self.round_id}), hello claims (m={hello.m}, round="
                f"{hello.round_id})",
            )
            return None
        server_nonce = fresh_nonce()
        await self._send(
            writer,
            wire.SessionChallenge(
                m=self.m, round_id=self.round_id, nonce=server_nonce
            ),
        )
        frame = await read_frame_bytes(
            reader, max_frame_bytes=self.limits.max_frame_bytes
        )
        if frame is None:
            self.sessions_rejected += 1
            return None
        quota.charge(len(frame))
        proof = wire.loads(frame)
        authenticated = isinstance(proof, wire.SessionProof) and verify_session_mac(
            self.key,
            proof.mac,
            m=self.m,
            round_id=self.round_id,
            producer_id=hello.producer_id,
            client_nonce=hello.nonce,
            server_nonce=server_nonce,
        )
        if not authenticated:
            self.sessions_rejected += 1
            await self._refuse(writer, 0, "authentication failed")
            return None
        self.sessions_opened += 1
        self.producers_seen.add(hello.producer_id)
        await self._send(
            writer,
            wire.Ack(
                m=self.m,
                round_id=self.round_id,
                seq=0,
                status=wire.ACK_SESSION,
                detail=hello.producer_id,
            ),
        )
        return hello.producer_id

    # ------------------------------------------------------------------
    # The exactly-once record commit
    # ------------------------------------------------------------------
    def _validate_inner(self, obj) -> None:
        """Pre-commit validation, mirroring every check the later merge
        would make — so a record that reaches the ledger can never fail
        to merge (a ledgered-but-unmergeable record would poison every
        subsequent restart's replay)."""
        if isinstance(obj, CountAccumulator):
            matches = obj.m == self.m and obj.round_id == self.round_id
        elif isinstance(obj, wire.PackedChunk):
            matches = obj.m == self.m and obj.round_id == self.round_id
            if matches:
                width = packed_width(self.m)
                pad_bits = 8 * width - self.m
                if (
                    pad_bits
                    and obj.rows.size
                    and np.any(obj.rows[:, -1] & ((1 << pad_bits) - 1))
                ):
                    raise ValidationError(
                        f"record chunk has set bits beyond m={self.m}"
                    )
        else:
            raise ValidationError(
                f"records must wrap a snapshot or packed chunk, got "
                f"{type(obj).__name__}"
            )
        if not matches:
            raise ValidationError(
                f"record is for (m={obj.m}, round={obj.round_id}); this "
                f"service collects (m={self.m}, round={self.round_id})"
            )

    def _stage_record(
        self,
        producer_id: str,
        record: wire.Record,
        staged_frames: dict[int, bytes],
    ) -> dict:
        """Classify one record for its batch: fresh, duplicate, refused.

        Everything that can be decided without the commit lock happens
        here — envelope/round checks, dedup against the ledger *and*
        against records staged earlier in the same batch, and full
        inner validation for fresh records.  The SHA-256 digest is
        *not* computed here on the fresh path: the background commit
        hashes the whole batch on the executor, overlapped with the
        next batch's network reads.  The commit also re-checks the
        ledger under the lock (another connection of the same producer
        may commit the same seq first).
        """
        seq = record.seq
        if record.m != self.m or record.round_id != self.round_id:
            return {
                "status": "refused",
                "seq": seq,
                "detail": (
                    f"record envelope is for (m={record.m}, round="
                    f"{record.round_id}), not this round"
                ),
            }
        equivocation = {
            "status": "refused",
            "seq": seq,
            "detail": (
                f"equivocation: seq {seq} is already committed with "
                "different frame bytes"
            ),
        }
        previous = staged_frames.get(seq)
        if previous is not None:
            # Same seq twice in one burst: byte equality decides.
            if previous != record.frame:
                return equivocation
            return {"status": "duplicate", "seq": seq}
        entry = self.ledger.seen(producer_id, seq)
        if entry is not None:
            # Resend path: the digest comparison against the committed
            # entry is deferred to the batch commit, which hashes on the
            # executor — a producer blind-resending a large round must
            # not stall the event loop for every other session.
            return {
                "status": "verify-dup",
                "seq": seq,
                "frame": record.frame,
                "known_digest": entry.digest,
            }
        try:
            inner = record.decode()
            self._validate_inner(inner)
        except (WireFormatError, ValidationError) as exc:
            return {"status": "refused", "seq": seq, "detail": str(exc)}
        return {
            "status": "fresh",
            "seq": seq,
            "frame": record.frame,
            "inner": inner,
        }

    async def _commit_batch(
        self,
        writer: asyncio.StreamWriter,
        producer_id: str,
        pending: list[dict],
    ) -> bool:
        """Durably commit a batch of staged records, then ack in order.

        One spill fsync and one ledger fsync cover the whole batch
        (group commit); every ack still goes out only after both, so
        per-record durability-on-ack is exactly what it was with
        per-record fsyncs — at a fraction of the cost for pipelined
        producers.  Returns False when an equivocation surfaced at
        commit time (connection must drop).

        The durable half runs as a *shielded, tracked* task: cancelling
        the connection handler (service shutdown, inline flushes
        included) cannot interrupt it between its fsyncs, and
        ``close()``/``abort()`` drain ``_commit_tasks`` before touching
        the spill or ledger handles — so a half-committed batch can
        never be abandoned with spill frames but no ledger entries.
        """
        inner = asyncio.ensure_future(
            self._commit_batch_durable(producer_id, pending)
        )
        self._commit_tasks.add(inner)
        inner.add_done_callback(self._commit_tasks.discard)
        await asyncio.shield(inner)
        return await self._send_batch_acks(writer, pending)

    async def _commit_batch_durable(
        self, producer_id: str, pending: list[dict]
    ) -> None:
        """The commit-lock critical section: spill, fsync, ledger, merge.

        Nothing cancels this coroutine (callers shield it), so its only
        failure mode is a real error — ENOSPC, a dying disk.  On any
        such error the spill (and any staged ledger entries) roll back
        to the pre-batch boundary, preserving the invariant that every
        frame below a ledgered offset is itself ledgered; if even the
        rollback fails, the service fail-stops further commits and
        points the operator at restart-with-resume, which reconciles
        from the last durable prefix.
        """
        loop = asyncio.get_running_loop()
        # Resolve deferred duplicate checks first (no lock needed: a
        # committed ledger entry's digest never changes), hashing on the
        # executor so resend-heavy sessions do not stall the loop.
        to_verify = [item for item in pending if item["status"] == "verify-dup"]
        if to_verify:
            digests = await loop.run_in_executor(
                None,
                lambda: [
                    hashlib.sha256(item["frame"]).digest()
                    for item in to_verify
                ],
            )
            for item, digest in zip(to_verify, digests):
                item["status"] = (
                    "duplicate"
                    if digest == item["known_digest"]
                    else "equivocation"
                )
        async with self._commit_lock:
            if self._commit_failed is not None:
                raise ServiceError(
                    "service refused the commit: a previous commit failed "
                    f"({self._commit_failed}) and the spill could not be "
                    "rolled back; restart the service with resume=True"
                )
            spill_mark = self._writer.end_offset
            ledger_mark = self.ledger.mark()
            appended_keys: list[tuple[str, int]] = []
            to_commit = []
            try:
                for item in pending:
                    if item["status"] != "fresh":
                        continue
                    # Re-check under the lock: another connection of
                    # this producer may have committed the seq while we
                    # staged.
                    entry = self.ledger.seen(producer_id, item["seq"])
                    if entry is not None:
                        digest = hashlib.sha256(item["frame"]).digest()
                        item["status"] = (
                            "duplicate"
                            if entry.digest == digest
                            else "equivocation"
                        )
                        continue
                    self._writer.append_frame(item["frame"])
                    item["spill_end"] = self._writer.end_offset
                    to_commit.append(item)
                if to_commit:
                    # Hash the batch and fsync the spill concurrently on
                    # the executor (sha256 releases the GIL on large
                    # buffers); both must finish before any ledger entry
                    # exists, so a ledger entry can never point past
                    # durable bytes.
                    digests, _ = await asyncio.gather(
                        loop.run_in_executor(
                            None,
                            lambda: [
                                hashlib.sha256(item["frame"]).digest()
                                for item in to_commit
                            ],
                        ),
                        loop.run_in_executor(None, self._writer.sync),
                    )
                    for item, digest in zip(to_commit, digests):
                        self.ledger.append(
                            producer_id,
                            item["seq"],
                            digest,
                            item["spill_end"],
                        )
                        appended_keys.append((producer_id, item["seq"]))
                    await loop.run_in_executor(None, self.ledger.sync)
                    for item in to_commit:
                        apply_frame_object(item["inner"], self.accumulator)
                        self.records_merged += 1
                        self.bytes_ingested += len(item["frame"])
                        item["status"] = "merged"
            except BaseException as exc:
                try:
                    if appended_keys:
                        self.ledger.rollback(ledger_mark, appended_keys)
                    self._writer.rollback(spill_mark)
                except BaseException as repair_exc:
                    self._commit_failed = repr(exc)
                    raise LedgerError(
                        f"commit failed ({exc}) and rolling the spill back "
                        f"failed too ({repair_exc}); refusing further "
                        "commits — restart the service with resume=True"
                    ) from exc
                raise

    async def _send_batch_acks(
        self, writer: asyncio.StreamWriter, pending: list[dict]
    ) -> bool:
        survived = True
        for item in pending:
            if item["status"] == "merged":
                status, detail = wire.ACK_MERGED, ""
            elif item["status"] == "duplicate":
                self.records_duplicate += 1
                status, detail = wire.ACK_DUPLICATE, "already merged"
            else:  # equivocation discovered at commit time
                self.records_refused += 1
                status = wire.ACK_REFUSED
                detail = (
                    f"equivocation: seq {item['seq']} is already "
                    "committed with different frame bytes"
                )
                survived = False
            await self._send(
                writer,
                wire.Ack(
                    m=self.m,
                    round_id=self.round_id,
                    seq=item["seq"],
                    status=status,
                    detail=detail,
                ),
            )
            if not survived:
                break  # refusal is the connection's last ack
        return survived
