"""The multi-tenant, exactly-once collection endpoint.

:class:`CollectionService` hosts one or many concurrent collection
*rounds* and merges producer records into each round's live
:class:`~repro.pipeline.accumulator.CountAccumulator` with guarantees
the plain :class:`~repro.pipeline.collect.collector.Collector` does not
make:

* **authenticated, per producer**: a session must complete the HMAC
  handshake of :mod:`.auth` before any record frame is looked at, and
  the key is the *producer's own* (looked up in the service's
  :class:`~.auth.KeyRegistry` by the HELLO's producer id) — so a
  compromised producer can forge nothing for any other producer;
* **multiplexed**: the HELLO's ``round_id`` routes the session through
  the :class:`~.rounds.RoundRegistry` to one hosted round; every check,
  spill, ledger entry, and merge after that point happens against that
  round's own state, and a scoped round's registration token is bound
  into the session proof (version-3 challenge) so the session cannot
  even in principle be confused with another incarnation of the round;
* **exactly-once**: every merged record is committed to the round's
  :class:`~.ledger.IdempotencyLedger` (spill fsync → ledger fsync →
  merge → ack), so a blind resend after a lost ack is acknowledged as a
  duplicate and not re-merged, and a reused sequence number carrying
  different bytes is refused as equivocation;
* **bounded**: frames over ``limits.max_frame_bytes`` are refused at
  header-parse time; connection, *producer* (cross-connection), and
  *round* quotas shed abusive traffic without rollback; session
  capacity stalls (then sheds) a producer flood instead of OOMing; and
  every reap deadline is monotonic-clock based, measured from the last
  completed frame (:class:`~.quotas.Deadline`) — never from connection
  start;
* **resumable**: ``resume=True`` replays every hosted round's ledger,
  truncates each spill back to its ledger's committed offset, and
  keeps serving the same rounds.

The commit order per record is unchanged from the single-round design
(spill append → spill fsync → ledger append → ledger fsync → merge →
ack), but batching moved from the connection to the round: all active
sessions of a round feed one :class:`~.commit.GroupCommitScheduler`,
and one fsync pair covers everything any of them staged while the
previous commit was in flight — see :mod:`.commit`.

Since the scale-out refactor this class is the *round ownership* layer:
it opens, recovers, drains, closes, and retires rounds, resolves each
round's :class:`~.quotas.ServiceLimits` (service defaults layered with
per-round overrides), and answers the authenticated **control plane**
(version-4 wire frames: drain / close / retire / pull-state /
route-update, MAC'd with a dedicated control key).  Everything
socket-facing — handshakes, the record loop, group-commit acks, MOVED
routing enforcement, revocation reaping — lives in
:class:`~.sessions.SessionHost`, which this service composes over its
round registry.  A shard process is just a ``CollectionService``
configured with a ``shard_name`` + routing table and a store root of
its own; the coordinator and aggregator (:mod:`.coordinator`,
:mod:`.aggregator`) drive fleets of them over the control plane.
"""

from __future__ import annotations

import asyncio
import os

from ...exceptions import ServiceError, ValidationError
from ..collect import wire
from ..collect.store import ShardStore
from .auth import (
    KeyRegistry,
    control_reply_mac,
    derive_round_key,
    verify_control_request_mac,
)
from .quotas import ServiceLimits
from .rounds import (
    LEDGER_FILENAME,
    MODE_COLLECT,
    MODE_KEEPER,
    ROUND_MODES,
    SERVICE_SHARD_ID,
    RoundRegistry,
    RoundState,
    round_namespace,
)
from .routing import RoutingTable
from .sessions import SessionHost
from .shares import encode_member_digest

__all__ = [
    "CollectionService",
    "LEDGER_FILENAME",
    "SERVICE_SHARD_ID",
    "CONTROL_OPS",
]

#: Every control-plane op this service answers (docs and tests pin it).
CONTROL_OPS = (
    "status",
    "drain",
    "close-round",
    "retire-round",
    "open-round",
    "pull-state",
    "route-table",
    "route-update",
    "migrate-out",
    "migrate-in",
)


def _coerce_round_spec(spec) -> tuple[int, int, dict]:
    """``(m, round_id, extras)`` from a dict, mapping-like, or pair.

    *extras* carries the optional per-round keys a dict spec may
    declare: ``limits`` (a ``ServiceLimits`` override mapping),
    ``token`` (a coordinator-minted registration token, hex), and
    ``mode`` (``collect`` | ``blinded`` | ``keeper`` — the round's
    aggregation role, see :mod:`.shares`).
    """
    if isinstance(spec, dict):
        try:
            m, round_id = int(spec["m"]), int(spec["round_id"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(
                f"round spec {spec!r} must carry integer 'm' and 'round_id'"
            ) from exc
        unknown = sorted(
            set(spec) - {"m", "round_id", "limits", "token", "mode"}
        )
        if unknown:
            raise ValidationError(
                f"round {round_id}: unknown round spec key(s) {unknown}; "
                "known keys: m, round_id, limits, token, mode"
            )
        extras: dict = {}
        if spec.get("limits") is not None:
            extras["limits"] = spec["limits"]
        if spec.get("token") is not None:
            extras["token"] = spec["token"]
        if spec.get("mode") is not None:
            extras["mode"] = spec["mode"]
        return m, round_id, extras
    try:
        m, round_id = spec
        return int(m), int(round_id), {}
    except (TypeError, ValueError) as exc:
        raise ValidationError(
            f"round specs are dicts with integer 'm'/'round_id' or "
            f"(m, round_id) pairs, got {spec!r}"
        ) from exc


class CollectionService:
    """Durable, authenticated, exactly-once collection — single- or
    multi-round, standalone or as one shard of a scale-out deployment.

    Parameters
    ----------
    m:
        Single-round mode: the round's report width.  The round is
        ``round_id`` (default 0), its files live directly under
        *store_root* (the layout of the original single-round service,
        so existing round directories resume unchanged), and its
        challenges stay version-2 wire frames.
    rounds:
        Multi-round mode (mutually exclusive with *m*): an iterable of
        ``{"m": ..., "round_id": ...}`` dicts or ``(m, round_id)``
        pairs.  Each round lives in its own store namespace
        (``<store_root>/round_<id>/``) with its own spill, ledger, and
        commit pipeline, and its sessions are bound to the round's
        registration token (version-3 challenges).  A dict spec may
        additionally carry ``"limits"`` — per-round
        :class:`~.quotas.ServiceLimits` overrides layered over the
        service defaults — and ``"token"`` (hex), the coordinator's
        registration token for the round.
    key:
        Default producer secret (bytes, hex string, or passphrase —
        see :func:`~.auth.derive_round_key`): any producer without an
        individual entry authenticates against it.  Omit it to require
        an individual key for every producer.
    keys:
        Per-producer keys: a :class:`~.auth.KeyRegistry`, a
        ``{producer_id: secret}`` dict, or a keyfile path (hot-reloaded
        on change — rotation *and revocation* without restart).
    store_root:
        Directory for all durable round state.
    limits:
        Service-default resource policy; defaults to
        :class:`~.quotas.ServiceLimits`.
    resume:
        Recover every configured round from its ledger + spill instead
        of starting fresh.  Starting fresh over existing round files is
        refused — that is how double-counting accidents happen.
    control_key:
        Secret for the authenticated control plane (same formats as
        *key*).  Without it the service answers no control frames at
        all — a shard that was never given a control key exposes no
        remote drain/close/pull surface.
    shard_name / routing:
        Scale-out membership: this service's stable shard name and the
        :class:`~.routing.RoutingTable` (or its payload dict) to
        enforce.  With both set, handshakes from producers the table
        assigns to another shard are refused with a ``MOVED`` redirect.
    """

    def __init__(
        self,
        m: int | None = None,
        *,
        key=None,
        keys=None,
        store_root: str,
        round_id: int = 0,
        rounds=None,
        limits: ServiceLimits | None = None,
        resume: bool = False,
        control_key=None,
        shard_name: str | None = None,
        routing=None,
        mode: str = MODE_COLLECT,
        keeper_id: str | None = None,
    ) -> None:
        if (m is None) == (rounds is None):
            raise ValidationError(
                "pass exactly one of m= (single-round) or rounds= "
                "(multi-round)"
            )
        if key is None and keys is None:
            raise ValidationError(
                "the service needs key= (shared default) and/or keys= "
                "(per-producer registry / dict / keyfile path)"
            )
        if isinstance(keys, KeyRegistry):
            if key is not None:
                raise ValidationError(
                    "pass the default key to the KeyRegistry itself when "
                    "supplying one"
                )
            self.keys = keys
        elif isinstance(keys, dict):
            self.keys = KeyRegistry(keys, default_key=key)
        elif keys is not None:
            self.keys = KeyRegistry.from_file(
                os.fspath(keys), default_key=key
            )
        else:
            self.keys = KeyRegistry(default_key=key)

        self.limits = limits or ServiceLimits()
        self.control_key = (
            derive_round_key(control_key) if control_key is not None else None
        )
        self.shard_name = shard_name
        if routing is not None and not isinstance(routing, RoutingTable):
            routing = RoutingTable.from_payload(routing)
        # Split-trust identity: mode is the service-wide default for
        # rounds opened without an explicit per-round mode, keeper_id
        # the stable identity producers bind their share streams to.
        # A share-keeper process is just CollectionService(mode="keeper",
        # keeper_id="keeper-a", ...) — every other guarantee (sessions,
        # ledger, group commit, recovery) carries over unchanged.
        if mode not in ROUND_MODES:
            raise ValidationError(
                f"mode must be one of {ROUND_MODES}, got {mode!r}"
            )
        self.default_mode = mode
        self.keeper_id = str(keeper_id) if keeper_id is not None else None
        if mode == MODE_KEEPER and not self.keeper_id:
            raise ValidationError(
                "a keeper-mode service needs keeper_id= (the identity "
                "producers derive this keeper's blinding stream from)"
            )
        if mode != MODE_KEEPER and self.keeper_id is not None:
            raise ValidationError(
                f"keeper_id={self.keeper_id!r} only applies to "
                f"mode={MODE_KEEPER!r} services; a {mode!r} service has no "
                "keeper identity (did you mean mode=\"keeper\"?)"
            )
        self.store = ShardStore(store_root)
        self.registry = RoundRegistry()
        self._closed = False
        try:
            if m is not None:
                # Legacy flat layout: the lone round owns store_root.
                self.registry.open_round(
                    int(m),
                    int(round_id),
                    self.store,
                    self.limits,
                    resume=resume,
                    scoped=False,
                    mode=self.default_mode,
                    keeper_id=(
                        self.keeper_id
                        if self.default_mode == MODE_KEEPER
                        else None
                    ),
                )
            else:
                for spec in rounds:
                    m_, rid, extras = _coerce_round_spec(spec)
                    self.add_round(m_, rid, resume=resume, **extras)
            if not len(self.registry) and control_key is None:
                # A control-plane shard may legitimately start bare and
                # have its rounds registered remotely (open-round); a
                # plain service with no rounds is an operator mistake.
                raise ValidationError("rounds= must name at least one round")
        except BaseException:
            # A half-configured service must not leak the rounds it
            # already opened: drop their handles and (for rounds that
            # did not exist before this attempt) the files they
            # created, so a corrected rerun starts clean.
            for state in self.registry.rounds():
                state.release()
            raise

        # Everything socket-facing lives in the session host; the
        # service keeps round ownership and the control plane.
        self.sessions = SessionHost(
            keys=self.keys,
            limits=self.limits,
            registry=self.registry,
            shard_name=shard_name,
            table=routing,
            control_handler=(
                self._handle_control if self.control_key is not None else None
            ),
        )
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------
    # Round management
    # ------------------------------------------------------------------
    def add_round(
        self,
        m: int,
        round_id: int,
        *,
        resume: bool = False,
        limits=None,
        token=None,
        mode: str | None = None,
    ) -> RoundState:
        """Host one more round (usable while the service is serving).

        The round's files live under ``<store_root>/round_<id>/``; its
        sessions are scoped to a registration token — the caller's
        *token* (hex or 16 bytes, e.g. coordinator-minted so every
        shard of the round shares it) or a fresh one.  *limits* layers
        per-round overrides (a mapping) over the service defaults, or
        substitutes a full :class:`~.quotas.ServiceLimits`; validation
        failures name the offending round.  *mode* picks the round's
        aggregation role (default: the service's own); a keeper round
        takes the service's ``keeper_id`` identity.
        """
        if self._closed:
            raise ValidationError("service is closed")
        round_id = int(round_id)
        mode = self.default_mode if mode is None else str(mode)
        if isinstance(limits, ServiceLimits):
            round_limits = limits
        elif limits is not None:
            if not isinstance(limits, dict):
                raise ValidationError(
                    f"round {round_id}: limits overrides must be a mapping "
                    f"of ServiceLimits fields, got {type(limits).__name__}"
                )
            try:
                round_limits = self.limits.with_overrides(limits)
            except (ValueError, TypeError) as exc:
                raise ValidationError(
                    f"round {round_id}: invalid limits override: {exc}"
                ) from exc
        else:
            round_limits = self.limits
        if isinstance(token, str):
            try:
                token = bytes.fromhex(token)
            except ValueError as exc:
                raise ValidationError(
                    f"round {round_id}: token must be hex, got {token!r}"
                ) from exc
        return self.registry.open_round(
            m,
            round_id,
            self.store.namespaced(round_namespace(round_id)),
            round_limits,
            resume=resume,
            scoped=True,
            token=token,
            mode=mode,
            keeper_id=self.keeper_id if mode == MODE_KEEPER else None,
        )

    def round(self, round_id: int) -> RoundState:
        """The hosted round *round_id* (loud when absent)."""
        state = self.registry.get(round_id)
        if state is None:
            raise ValidationError(
                f"no hosted round {round_id}; hosted: "
                f"{self.registry.round_ids()}"
            )
        return state

    def _single_round(self) -> RoundState:
        rounds = self.registry.rounds()
        if len(rounds) != 1:
            raise ValidationError(
                f"service hosts {len(rounds)} rounds; use "
                ".round(round_id) to address one"
            )
        return rounds[0]

    # Single-round conveniences (and the original service's public
    # surface): each delegates to the lone hosted round.
    @property
    def m(self) -> int:
        return self._single_round().m

    @property
    def round_id(self) -> int:
        return self._single_round().round_id

    @property
    def accumulator(self):
        return self._single_round().accumulator

    @property
    def ledger(self):
        return self._single_round().ledger

    @property
    def _writer(self):
        return self._single_round().writer

    # Aggregate record counters across every hosted round.
    @property
    def records_merged(self) -> int:
        return sum(r.records_merged for r in self.registry.rounds())

    @property
    def records_duplicate(self) -> int:
        return sum(r.records_duplicate for r in self.registry.rounds())

    @property
    def records_refused(self) -> int:
        return sum(r.records_refused for r in self.registry.rounds())

    @property
    def bytes_ingested(self) -> int:
        return sum(r.bytes_ingested for r in self.registry.rounds())

    @property
    def recovered_records(self) -> int:
        return sum(r.recovered_records for r in self.registry.rounds())

    @property
    def recovered_spill_bytes_discarded(self) -> int:
        return sum(
            r.recovered_spill_bytes_discarded
            for r in self.registry.rounds()
        )

    @property
    def producers_seen(self) -> set[str]:
        seen: set[str] = set()
        for state in self.registry.rounds():
            seen |= state.producers_seen
        return seen

    # Session counters live with the session host; these properties
    # keep the original service surface (tests and benches read them).
    @property
    def sessions_opened(self) -> int:
        return self.sessions.sessions_opened

    @property
    def sessions_rejected(self) -> int:
        return self.sessions.sessions_rejected

    @property
    def sessions_shed(self) -> int:
        return self.sessions.sessions_shed

    @property
    def connections_failed(self) -> int:
        return self.sessions.connections_failed

    @property
    def last_connection_error(self) -> str | None:
        return self.sessions.last_connection_error

    # ------------------------------------------------------------------
    # Routing membership
    # ------------------------------------------------------------------
    @property
    def routing(self) -> RoutingTable | None:
        return self.sessions.table

    def install_routing(self, table) -> RoutingTable:
        """Install a newer routing table (accepts a payload dict too).

        Epochs must strictly increase — a stale or replayed
        ``route-update`` is refused, so out-of-order delivery across a
        shard fleet can never roll a shard's table backwards.
        """
        if not isinstance(table, RoutingTable):
            table = RoutingTable.from_payload(table)
        current = self.sessions.table
        if current is not None:
            if (
                table.epoch == current.epoch
                and table.to_payload() == current.to_payload()
            ):
                # Idempotent re-delivery: a resumed coordinator re-pushes
                # the table it had journaled; same epoch + same content
                # is a no-op, not a rollback.
                return current
            if table.epoch <= current.epoch:
                raise ValidationError(
                    f"routing table epoch {table.epoch} is not newer than "
                    f"the installed epoch {current.epoch}"
                )
        self.sessions.table = table
        return table

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def serve(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Start accepting sessions; returns the bound ``(host, port)``."""
        if self._closed:
            raise ValidationError("service is closed")
        if self._server is not None:
            raise ValidationError("service is already serving")
        self._server = await asyncio.start_server(
            self.sessions.handle_connection, host=host, port=port
        )
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def close(self) -> None:
        """Graceful shutdown: stop serving, persist every round.

        In-flight connection handlers are cancelled and awaited (a
        stalled producer cannot hang shutdown); each round's commit
        pipeline is drained, its spill and ledger synced and closed,
        and its snapshot written atomically.  Live accumulators stay
        readable.
        """
        await self._stop_serving()
        if self._closed:
            return
        self._closed = True
        for state in self.registry.rounds():
            await state.close(snapshot=True)

    async def abort(self) -> None:
        """Shutdown without final snapshots (crash-adjacent teardown).

        Everything acknowledged is already fsync'd, so an aborted
        service resumes exactly like a killed one; tests use this to
        exercise the recovery path without process-level kills.
        """
        await self._stop_serving()
        if self._closed:
            return
        self._closed = True
        for state in self.registry.rounds():
            await state.close(snapshot=False)

    async def _stop_serving(self) -> None:
        if self._server is not None:
            server, self._server = self._server, None
            server.close()
            await self.sessions.cancel_connections()
            await server.wait_closed()
        # Cancelled handlers may have left submissions queued on round
        # schedulers; those hold durable work, so the rounds' close()
        # (which every shutdown path runs next) drains them before any
        # spill or ledger handle closes.

    def stats(self) -> dict:
        """Operator-facing counters: service-wide plus per round."""
        rounds = self.registry.rounds()
        stats = {
            "records_merged": self.records_merged,
            "records_duplicate": self.records_duplicate,
            "records_refused": self.records_refused,
            "sessions_opened": self.sessions_opened,
            "sessions_rejected": self.sessions_rejected,
            "sessions_shed": self.sessions_shed,
            "sessions_moved": self.sessions.sessions_moved,
            "sessions_reaped_revoked": self.sessions.sessions_reaped_revoked,
            "control_requests": self.sessions.control_requests,
            "connections_failed": self.connections_failed,
            "bytes_ingested": self.bytes_ingested,
            "n": sum(state.accumulator.n for state in rounds),
            "producers": sorted(self.producers_seen),
            "recovered_records": self.recovered_records,
            "recovered_spill_bytes_discarded": (
                self.recovered_spill_bytes_discarded
            ),
            "rounds": {
                state.round_id: state.stats() for state in rounds
            },
        }
        if self.shard_name is not None:
            stats["shard"] = self.shard_name
        if self.sessions.table is not None:
            stats["routing_epoch"] = self.sessions.table.epoch
        if len(rounds) == 1:
            stats["m"] = rounds[0].m
            stats["round_id"] = rounds[0].round_id
        return stats

    # ------------------------------------------------------------------
    # Control plane (round ownership's remote surface)
    # ------------------------------------------------------------------
    def _control_reply(
        self,
        nonce: bytes,
        body: dict,
        *,
        status: int = wire.CONTROL_OK,
        attachment: bytes = b"",
    ) -> wire.ControlReply:
        mac = control_reply_mac(
            self.control_key,
            status=status,
            nonce=nonce,
            body=body,
            attachment=attachment,
        )
        return wire.ControlReply(
            status=status,
            nonce=nonce,
            body=body,
            attachment=attachment,
            mac=mac,
        )

    def _control_error(self, nonce: bytes, detail: str) -> wire.ControlReply:
        return self._control_reply(
            nonce, {"detail": detail}, status=wire.CONTROL_ERROR
        )

    async def _handle_control(
        self, request: wire.ControlRequest
    ) -> wire.ControlReply:
        """Answer one authenticated control request.

        Every reply — success or error — echoes the request nonce under
        the reply MAC, so the coordinator can trust refusals too.  The
        single exception is a bad request MAC: that refusal carries the
        nonce but proves nothing (an unauthenticated peer learns only
        that it is unauthenticated).
        """
        if not verify_control_request_mac(
            self.control_key,
            request.mac,
            op=request.op,
            nonce=request.nonce,
            body=request.body,
        ):
            return self._control_error(
                request.nonce, "control authentication failed"
            )
        try:
            return await self._dispatch_control(request)
        except (ValidationError, ServiceError, ValueError, KeyError) as exc:
            return self._control_error(request.nonce, str(exc))

    async def _dispatch_control(
        self, request: wire.ControlRequest
    ) -> wire.ControlReply:
        op, body, nonce = request.op, request.body, request.nonce
        if op == "status":
            if body.get("round_id") is not None:
                return self._control_reply(
                    nonce, self.round(int(body["round_id"])).stats()
                )
            return self._control_reply(nonce, self.stats())
        if op == "drain":
            state = self.round(int(body["round_id"]))
            state.drain()
            return self._control_reply(
                nonce,
                {"round_id": state.round_id, "phase": state.lifecycle.phase},
            )
        if op == "close-round":
            state = self.round(int(body["round_id"]))
            await state.close(snapshot=bool(body.get("snapshot", True)))
            return self._control_reply(
                nonce,
                {"round_id": state.round_id, "phase": state.lifecycle.phase},
            )
        if op == "retire-round":
            state = self.registry.retire(int(body["round_id"]))
            return self._control_reply(
                nonce,
                {"round_id": state.round_id, "phase": state.lifecycle.phase},
            )
        if op == "open-round":
            round_id = int(body["round_id"])
            existing = self.registry.get(round_id)
            token = body.get("token")
            if (
                existing is not None
                and token is not None
                and bytes.fromhex(token) == existing.token
                and int(body["m"]) == existing.m
                and (body.get("mode") or self.default_mode) == existing.mode
            ):
                # Idempotent re-open: the same coordinator (it proved
                # itself by knowing the token) registering the same
                # round again — a resumed coordinator reconciling, or a
                # retried broadcast.  Acknowledge instead of refusing so
                # recovery never wedges on work already done.
                return self._control_reply(
                    nonce,
                    {
                        "round_id": existing.round_id,
                        "m": existing.m,
                        "mode": existing.mode,
                        "phase": existing.lifecycle.phase,
                        "recovered_records": existing.recovered_records,
                        "already": True,
                    },
                )
            state = self.add_round(
                int(body["m"]),
                round_id,
                resume=bool(body.get("resume", False)),
                limits=body.get("limits"),
                token=token,
                mode=body.get("mode"),
            )
            return self._control_reply(
                nonce,
                {
                    "round_id": state.round_id,
                    "m": state.m,
                    "mode": state.mode,
                    "phase": state.lifecycle.phase,
                    "recovered_records": state.recovered_records,
                },
            )
        if op == "pull-state":
            state = self.round(int(body["round_id"]))
            # The attachment is the round's accumulated state: a core
            # wire snapshot for a collect round (the same frame bytes a
            # single-process round would spill), or the party's v5
            # state-transfer share frame for a blinded/keeper round.
            # The body carries its digest so the aggregator verifies
            # what it decodes before merging — and, for split-trust
            # rounds, the membership digest the combine reconciles
            # across parties before any decode is attempted.
            if state.mode == MODE_COLLECT:
                attachment = wire.dump_snapshot(state.accumulator)
            else:
                attachment = wire.dumps(state.accumulator.state_frame())
            return self._control_reply(
                nonce,
                {
                    "round_id": state.round_id,
                    "m": state.m,
                    "mode": state.mode,
                    "n": state.accumulator.n,
                    "digest": state.accumulator.digest(),
                    "member_digest": encode_member_digest(
                        state.member_digest
                    ),
                    "records_merged": state.records_merged,
                    "phase": state.lifecycle.phase,
                },
                attachment=attachment,
            )
        if op == "route-table":
            table = self.sessions.table
            return self._control_reply(
                nonce,
                {"table": table.to_payload() if table is not None else None},
            )
        if op == "route-update":
            table = self.install_routing(body["table"])
            return self._control_reply(nonce, {"epoch": table.epoch})
        if op == "migrate-out":
            table = self.sessions.table
            if table is None or self.shard_name is None:
                raise ValidationError(
                    "migrate-out requires a routed shard (shard_name + "
                    "installed routing table)"
                )
            state = self.round(int(body["round_id"]))
            if state.mode == MODE_KEEPER:
                raise ValidationError(
                    f"round {state.round_id} is a keeper round; keeper "
                    "shares are producer-addressed and never migrate"
                )
            epoch = int(body["epoch"])
            if epoch != table.epoch:
                raise ValidationError(
                    f"migrate-out names routing epoch {epoch} but this "
                    f"shard has epoch {table.epoch} installed; push the "
                    "table first"
                )
            known = state.producers_seen | {
                entry.producer_id for entry in state.ledger.entries()
            }
            movers = sorted(
                producer
                for producer in known
                if table.owner(producer).name != self.shard_name
            )
            async with state.scheduler.paused():
                moved = state.migrate_out(movers, epoch)
            return self._control_reply(
                nonce,
                {
                    "round_id": state.round_id,
                    "epoch": epoch,
                    "producers": movers,
                    "entries": [
                        {
                            "producer": producer_id,
                            "seq": seq,
                            "digest": digest.hex(),
                            "length": len(frame),
                        }
                        for producer_id, seq, digest, frame in moved
                    ],
                },
                attachment=b"".join(frame for *_rest, frame in moved),
            )
        if op == "migrate-in":
            state = self.round(int(body["round_id"]))
            if state.mode == MODE_KEEPER:
                raise ValidationError(
                    f"round {state.round_id} is a keeper round; keeper "
                    "shares are producer-addressed and never migrate"
                )
            # Control *requests* carry no attachment (only replies do),
            # so inbound frames ride the body hex-encoded.
            records = [
                (
                    str(entry["producer"]),
                    int(entry["seq"]),
                    bytes.fromhex(entry["digest"]),
                    bytes.fromhex(entry["frame"]),
                )
                for entry in body["entries"]
            ]
            async with state.scheduler.paused():
                result = state.absorb_migrated(records)
            return self._control_reply(
                nonce, {"round_id": state.round_id, **result}
            )
        return self._control_error(
            nonce, f"unknown control op {op!r}; ops: {', '.join(CONTROL_OPS)}"
        )
