"""Append-only coordinator journal: the round table's durable memory.

The :class:`~.coordinator.RoundCoordinator` is the round lifecycle
authority for a shard fleet — it mints registration tokens, owns the
routing-table epoch, and drives every round's phase transitions.  All
of that used to live only in coordinator memory: kill the coordinator
process and the fleet kept serving, but nobody could ever again drain,
close, or aggregate the open rounds, because the tokens and the round
table died with it.

:class:`CoordinatorJournal` fixes that with the same discipline the
ingest path uses (:mod:`.ledger`): an append-only file of CRC-framed
records, fsync'd *before* the action they describe takes effect on the
fleet.  A restarted coordinator replays the journal, rebuilds its round
table (tokens included), re-learns shard addresses over the control
plane, and resumes ownership of every open round — a ``kill -9``
mid-round is recoverable.

On-disk format: self-delimiting binary records

``[ u32 CRC32 of the rest ][ u32 body_len ][ canonical JSON body ]``

The JSON body is one event dict with a ``"kind"`` key; everything else
is event-specific.  Kinds the coordinator writes today:

* ``fleet`` — the shard membership snapshot: ``shards`` (name →
  ``[host, port]``), ``epoch``, ``replicas``.  Re-written on every
  membership or epoch change, so replay only needs the *last* one.
* ``keepers`` — the share-keeper membership snapshot (same shape).
* ``register`` — one round registration: ``round_id``, ``m``,
  ``token`` (hex — the secret the whole recovery story exists to
  preserve), ``mode``, optional ``limits``.
* ``phase`` — a lifecycle transition: ``round_id``, ``phase``.
* ``migrate`` — a producer-migration marker: ``state`` (``pending`` |
  ``done``), ``epoch``, and (on ``pending``) ``shards``, the union
  fleet of the move — a shard being removed appears in no later fleet
  snapshot, yet the re-run must still dial it.  A ``pending`` without
  a matching ``done`` means the coordinator died mid-migration and
  resume must re-run it (the migration ops are idempotent, see
  ``docs/service.md``).

A torn tail (crash mid-append) fails the length or CRC check and is
truncated away on load; records before it are untouched.  Little-endian
throughout, matching the wire format and the ledger.
"""

from __future__ import annotations

import json
import os
import struct
import zlib

from ...exceptions import LedgerError

__all__ = ["CoordinatorJournal", "JOURNAL_MAX_BODY"]

_HEAD = struct.Struct("<II")  # crc32(body), body length

#: Refuse absurd record lengths outright — a corrupt length field must
#: not make replay attempt a multi-gigabyte allocation.
JOURNAL_MAX_BODY = 1 << 20


def _encode(event: dict) -> bytes:
    """Canonical JSON bytes for *event* (sorted keys, no whitespace).

    Canonical form keeps the CRC meaningful across Python versions and
    makes journal diffs stable in tests.
    """
    return json.dumps(
        event, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


class CoordinatorJournal:
    """Crash-safe, replayable event log for one coordinator.

    Usage: :meth:`load` once (recovering a torn tail), then
    :meth:`append` per event — each append is flushed and fsync'd
    before it returns, because the whole point is that an event the
    coordinator *acted on* must survive the coordinator.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._events: list[dict] = []
        self._handle = None
        self.recovered_bytes_discarded = 0

    # ------------------------------------------------------------------
    # Loading / recovery
    # ------------------------------------------------------------------
    def _parse(self, blob: bytes) -> int:
        """Fill the event list from *blob*; returns the valid length."""
        offset = 0
        while offset < len(blob):
            head = blob[offset : offset + _HEAD.size]
            if len(head) < _HEAD.size:
                break  # torn mid-head
            crc, body_len = _HEAD.unpack(head)
            if body_len > JOURNAL_MAX_BODY:
                break  # corrupt length; nothing after is trusted
            end = offset + _HEAD.size + body_len
            if end > len(blob):
                break  # torn mid-record
            body = blob[offset + _HEAD.size : end]
            if crc != zlib.crc32(body):
                break  # torn (or corrupted) record
            try:
                event = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                break
            if not isinstance(event, dict) or "kind" not in event:
                raise LedgerError(
                    f"journal {self.path} record at offset {offset} is "
                    "valid JSON but not an event dict with a 'kind' key; "
                    "the file is not a coordinator journal"
                )
            self._events.append(event)
            offset = end
        return offset

    def load(self) -> int:
        """Read the journal, truncating a torn tail; returns event count.

        Opens the file for appending afterwards, so the journal is
        ready for new events as soon as it has loaded.
        """
        if self._handle is not None:
            raise LedgerError(f"journal {self.path} is already open")
        blob = b""
        if os.path.exists(self.path):
            with open(self.path, "rb") as handle:
                blob = handle.read()
        valid = self._parse(blob)
        self.recovered_bytes_discarded = len(blob) - valid
        if self.recovered_bytes_discarded:
            with open(self.path, "r+b") as handle:
                handle.truncate(valid)
        self._handle = open(self.path, "ab")
        return len(self._events)

    # ------------------------------------------------------------------
    # Event flow
    # ------------------------------------------------------------------
    def append(self, event: dict) -> None:
        """Durably record one event (flushed and fsync'd on return)."""
        if self._handle is None:
            raise LedgerError(f"journal {self.path} is not open; call load()")
        if not isinstance(event, dict) or "kind" not in event:
            raise LedgerError(
                f"journal events are dicts with a 'kind' key, got {event!r}"
            )
        body = _encode(event)
        if len(body) > JOURNAL_MAX_BODY:
            raise LedgerError(
                f"journal event of {len(body)} bytes exceeds the "
                f"{JOURNAL_MAX_BODY}-byte record limit"
            )
        self._handle.write(struct.pack("<II", zlib.crc32(body), len(body)))
        self._handle.write(body)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._events.append(event)

    def events(self) -> list[dict]:
        """Every journaled event, in append order."""
        return list(self._events)

    def close(self) -> None:
        if self._handle is None:
            return
        handle, self._handle = self._handle, None
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()

    def __len__(self) -> int:
        return len(self._events)
