"""Exactly-once, authenticated collection service.

The :class:`~repro.pipeline.collect.collector.Collector` of
:mod:`repro.pipeline.collect` is a lab endpoint: producers are
anonymous, delivery is at-least-once (a lost ack after a successful
merge makes a blind resend double-count), and a crash mid-round loses
the live state.  This package is the deployment-shaped endpoint layered
on the same wire format, PrivCount-style:

* :mod:`.auth` — the HMAC-keyed session handshake: only producers
  holding the shared round key can open a session, and every session
  carries a producer identity.
* :mod:`.ledger` — :class:`IdempotencyLedger`, the append-only
  write-ahead ledger of ``(producer_id, seq, digest, spill_end)``
  records, fsync'd before every ack, that turns at-least-once transport
  into exactly-once ingestion: a blind resend is acked but not
  re-merged, and a reused sequence number with different bytes is
  refused as equivocation.
* :mod:`.quotas` — :class:`ServiceLimits`, per-connection byte/frame
  quotas and session capacity, so a flood of producers stalls or is
  shed instead of OOMing the service.
* :mod:`.server` — :class:`CollectionService`, the asyncio endpoint
  tying it together: durable spill (via a durable
  :class:`~repro.pipeline.collect.store.ShardChunkWriter`), ledger,
  live accumulator, and crash recovery (``resume=True`` truncates the
  spill to the ledger's committed offset and replays it, so a restart
  loses nothing and double-counts nothing).
* :mod:`.client` — :class:`ServiceSession` / :func:`send_records`, the
  producer side of the handshake and record protocol.

See ``docs/service.md`` for the protocol, ledger format, and recovery
semantics.
"""

from .auth import derive_round_key, session_mac
from .client import ServiceSession, send_records
from .ledger import IdempotencyLedger, LedgerEntry
from .quotas import ServiceLimits
from .server import CollectionService

__all__ = [
    "CollectionService",
    "ServiceSession",
    "send_records",
    "IdempotencyLedger",
    "LedgerEntry",
    "ServiceLimits",
    "session_mac",
    "derive_round_key",
]
