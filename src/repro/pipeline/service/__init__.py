"""Exactly-once, authenticated collection service.

The :class:`~repro.pipeline.collect.collector.Collector` of
:mod:`repro.pipeline.collect` is a lab endpoint: producers are
anonymous, delivery is at-least-once (a lost ack after a successful
merge makes a blind resend double-count), and a crash mid-round loses
the live state.  This package is the deployment-shaped endpoint layered
on the same wire format, PrivCount-style:

* :mod:`.auth` — the HMAC-keyed session handshake and the
  :class:`KeyRegistry` of per-producer keys (keyfile-loadable,
  hot-rotatable): every session authenticates with *its own
  producer's* key, so one compromised producer can forge nothing for
  another.
* :mod:`.rounds` — :class:`RoundState` / :class:`RoundRegistry`, the
  multi-round multiplexing layer: each hosted round owns its geometry,
  store namespace, ledger, accumulator, quota meters, registration
  token, and commit pipeline; sessions are routed by the HELLO's
  ``round_id`` and can never cross-merge.
* :mod:`.commit` — :class:`GroupCommitScheduler`, cross-connection
  group commit: one spill-fsync + ledger-fsync pair covers everything
  *every* session of a round staged while the previous commit was in
  flight.
* :mod:`.ledger` — :class:`IdempotencyLedger`, the append-only
  write-ahead ledger of ``(producer_id, seq, digest, spill_end)``
  records, fsync'd before every ack, that turns at-least-once transport
  into exactly-once ingestion: a blind resend is acked but not
  re-merged, and a reused sequence number with different bytes is
  refused as equivocation.
* :mod:`.quotas` — :class:`ServiceLimits`, per-connection byte/frame
  quotas and session capacity, so a flood of producers stalls or is
  shed instead of OOMing the service.
* :mod:`.server` — :class:`CollectionService`, the asyncio endpoint
  tying it together: durable spill (via a durable
  :class:`~repro.pipeline.collect.store.ShardChunkWriter`), ledger,
  live accumulator, and crash recovery (``resume=True`` truncates the
  spill to the ledger's committed offset and replays it, so a restart
  loses nothing and double-counts nothing).
* :mod:`.client` — :class:`ServiceSession` / :func:`send_records`, the
  producer side of the handshake and record protocol.

See ``docs/service.md`` for the protocol, ledger format, and recovery
semantics.
"""

from .auth import (
    KeyRegistry,
    derive_producer_key,
    derive_round_key,
    session_mac,
)
from .client import ServiceSession, send_records
from .commit import GroupCommitScheduler
from .ledger import IdempotencyLedger, LedgerEntry
from .quotas import ServiceLimits
from .rounds import RoundRegistry, RoundState
from .server import CollectionService

__all__ = [
    "CollectionService",
    "ServiceSession",
    "send_records",
    "IdempotencyLedger",
    "LedgerEntry",
    "KeyRegistry",
    "RoundRegistry",
    "RoundState",
    "GroupCommitScheduler",
    "ServiceLimits",
    "session_mac",
    "derive_round_key",
    "derive_producer_key",
]
