"""Exactly-once, authenticated collection service.

The :class:`~repro.pipeline.collect.collector.Collector` of
:mod:`repro.pipeline.collect` is a lab endpoint: producers are
anonymous, delivery is at-least-once (a lost ack after a successful
merge makes a blind resend double-count), and a crash mid-round loses
the live state.  This package is the deployment-shaped endpoint layered
on the same wire format, PrivCount-style:

* :mod:`.auth` — the HMAC-keyed session handshake and the
  :class:`KeyRegistry` of per-producer keys (keyfile-loadable,
  hot-rotatable): every session authenticates with *its own
  producer's* key, so one compromised producer can forge nothing for
  another.
* :mod:`.rounds` — :class:`RoundState` / :class:`RoundRegistry`, the
  multi-round multiplexing layer: each hosted round owns its geometry,
  store namespace, ledger, accumulator, quota meters, registration
  token, and commit pipeline; sessions are routed by the HELLO's
  ``round_id`` and can never cross-merge.
* :mod:`.commit` — :class:`GroupCommitScheduler`, cross-connection
  group commit: one spill-fsync + ledger-fsync pair covers everything
  *every* session of a round staged while the previous commit was in
  flight.
* :mod:`.ledger` — :class:`IdempotencyLedger`, the append-only
  write-ahead ledger of ``(producer_id, seq, digest, spill_end)``
  records, fsync'd before every ack, that turns at-least-once transport
  into exactly-once ingestion: a blind resend is acked but not
  re-merged, and a reused sequence number with different bytes is
  refused as equivocation.
* :mod:`.quotas` — :class:`ServiceLimits`, per-connection byte/frame
  quotas and session capacity, so a flood of producers stalls or is
  shed instead of OOMing the service.
* :mod:`.server` — :class:`CollectionService`, the asyncio endpoint
  tying it together: durable spill (via a durable
  :class:`~repro.pipeline.collect.store.ShardChunkWriter`), ledger,
  live accumulator, and crash recovery (``resume=True`` truncates the
  spill to the ledger's committed offset and replays it, so a restart
  loses nothing and double-counts nothing).
* :mod:`.client` — :class:`ServiceSession` / :func:`send_records` /
  :func:`send_records_routed`, the producer side of the handshake and
  record protocol (routing-aware against a shard fleet), plus
  :func:`control_call`, the authenticated control-plane client.

The scale-out tier splits the endpoint into three roles:

* :mod:`.lifecycle` — :class:`RoundLifecycle`, the explicit round
  state machine (``open → serving → draining → closed → retired``).
* :mod:`.routing` — :class:`RoutingTable` / :class:`ShardInfo`,
  consistent-hash assignment of producers to named shards, with
  ``MOVED`` redirects for stale clients.
* :mod:`.sessions` — :class:`SessionHost`, the connection-handling
  half of the original server (handshakes, the record loop, group
  commit acks, revocation reaping, routing enforcement).
* :mod:`.server` — :class:`CollectionService` is now the round
  *ownership* layer composing a session host, and answers the
  authenticated control plane (drain / close / retire / pull-state /
  route-update).
* :mod:`.coordinator` — :class:`RoundCoordinator`, the round lifecycle
  authority for a fleet: mints registration tokens, registers rounds
  fleet-wide, pushes routing tables, drives drains and closes.
* :mod:`.aggregator` — pull per-shard accumulator state over the
  control plane (digest-verified) and merge it — exactly — into the
  round estimate via :mod:`repro.estimation.merge`.
* :mod:`.topology` — :class:`ShardProcess` / :class:`ShardFleet`,
  shard services as real OS processes with crash (SIGKILL) and
  resume semantics.

The **split-trust tier** removes the last single point of trust — a
collector that sees what it aggregates:

* :mod:`.shares` — additive mod-2^64 blinding of per-chunk packed
  counts against per-keeper transcript-derived secrets
  (:func:`blind_report_chunk`), the per-party
  :class:`BlindedAccumulator`, and the membership digest that makes a
  missing keeper loud.  A share keeper is just a
  :class:`CollectionService` in ``mode="keeper"``; the blinded
  collector runs ``mode="blinded"``; neither can decode anything alone.
* :func:`combine_round` (in :mod:`.aggregator`) — the only place a
  split-trust round's plain tally comes into existence: all keeper
  states plus the blinded collector state, membership-reconciled, then
  decoded via :func:`repro.estimation.merge.combine_shares` —
  bit-identical to the direct unblinded tally.

See ``docs/service.md`` for the protocol, ledger format, recovery
semantics, the scale-out topology, and the split-trust trust model.
"""

from .aggregator import (
    AggregateResult,
    PartyPull,
    ShardPull,
    SplitTrustResult,
    aggregate_round,
    combine_round,
    merge_tree,
    pull_party_state,
    pull_shard_state,
)
from .auth import (
    KeyRegistry,
    derive_producer_key,
    derive_round_key,
    derive_share_secret,
    keeper_party_label,
    session_mac,
)
from .client import (
    ServiceSession,
    control_call,
    refresh_routing_table,
    send_records,
    send_records_routed,
)
from .commit import GroupCommitScheduler
from .coordinator import CoordinatedRound, RoundCoordinator
from .journal import CoordinatorJournal
from .ledger import IdempotencyLedger, LedgerEntry
from .lifecycle import RoundLifecycle
from .quotas import ServiceLimits
from .rounds import (
    MODE_BLINDED,
    MODE_COLLECT,
    MODE_KEEPER,
    RoundRegistry,
    RoundState,
)
from .routing import RoutingTable, ShardInfo
from .server import CollectionService
from .sessions import SessionHost
from .shares import (
    ROLE_BLINDED,
    ROLE_KEEPER,
    BlindedAccumulator,
    blind_report_chunk,
    blinding_words,
    combine_accumulators,
    send_split_trust,
)
from .topology import ShardFleet, ShardProcess

__all__ = [
    "AggregateResult",
    "BlindedAccumulator",
    "CollectionService",
    "CoordinatedRound",
    "CoordinatorJournal",
    "GroupCommitScheduler",
    "IdempotencyLedger",
    "KeyRegistry",
    "LedgerEntry",
    "MODE_BLINDED",
    "MODE_COLLECT",
    "MODE_KEEPER",
    "PartyPull",
    "ROLE_BLINDED",
    "ROLE_KEEPER",
    "RoundCoordinator",
    "RoundLifecycle",
    "RoundRegistry",
    "RoundState",
    "RoutingTable",
    "ServiceLimits",
    "ServiceSession",
    "SessionHost",
    "ShardFleet",
    "ShardInfo",
    "ShardPull",
    "SplitTrustResult",
    "aggregate_round",
    "blind_report_chunk",
    "blinding_words",
    "combine_accumulators",
    "combine_round",
    "control_call",
    "derive_producer_key",
    "derive_round_key",
    "derive_share_secret",
    "keeper_party_label",
    "merge_tree",
    "pull_party_state",
    "pull_shard_state",
    "refresh_routing_table",
    "send_records",
    "send_records_routed",
    "send_split_trust",
    "session_mac",
]
