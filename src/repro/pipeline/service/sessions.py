"""Connection and session handling for the collection service.

This is the half of the original ``server.py`` that talks to sockets,
split out so round *ownership* (what rounds exist, their lifecycle,
their durable state) and connection *handling* (handshakes, record
streaming, group-commit acks) are separate layers — a shard process
hosts a subset of rounds by composing a :class:`SessionHost` over its
own :class:`~.rounds.RoundRegistry`, and the coordinator can host zero
rounds while still speaking the control plane.

:class:`SessionHost` owns everything connection-scoped:

* the backpressure gate (session slots + bounded wait queue);
* the HMAC handshake, including round routing through the registry and
  the enumeration-safe key lookup;
* **producer routing enforcement**: a host configured with a shard name
  and a :class:`~.routing.RoutingTable` refuses handshakes from
  producers the table assigns elsewhere, with a ``MOVED`` detail naming
  the owning shard (the routing-aware client reconnects there);
* **revocation reaping**: an open session whose producer lands on the
  key registry's (hot-reloaded) revocation list is refused and dropped
  at its next frame — or within :data:`REAP_POLL_SECONDS` while idle —
  after committing what it already staged;
* the record loop with double-buffered group commit, quota charging,
  and in-order acks;
* **control-plane dispatch**: a version-4 control request arriving
  where a HELLO would is handed to the host's ``control_handler`` (the
  service layer, which owns the control key and the rounds), and its
  reply is the connection's only response.
"""

from __future__ import annotations

import asyncio

from ...exceptions import (
    QuotaExceededError,
    ServiceError,
    ValidationError,
    WireFormatError,
)
from ..collect import wire
from ..collect.framing import read_frame_bytes
from .auth import KeyRegistry, fresh_nonce, verify_session_mac
from .quotas import ConnectionQuota, Deadline, ServiceLimits
from .rounds import RoundRegistry, RoundState
from .routing import RoutingTable, format_moved

__all__ = ["SessionHost", "REAP_POLL_SECONDS"]

#: How often an *idle* session re-checks the revocation list.  Active
#: sessions are checked on every frame; this bound only matters for a
#: producer that goes silent after being revoked.
REAP_POLL_SECONDS = 1.0


class SessionHost:
    """Serves producer connections against a round registry.

    Parameters
    ----------
    keys:
        The :class:`~.auth.KeyRegistry` handshakes authenticate against
        (and whose revocation list reaps open sessions).
    limits:
        Connection-scoped resource policy (session slots, frame caps,
        timeouts).  Per-round limits ride on each
        :class:`~.rounds.RoundState` and govern batching/quotas once a
        session has resolved its round.
    registry:
        The :class:`~.rounds.RoundRegistry` HELLOs route through.
    shard_name / table:
        When both are set, this host is one shard of a scale-out
        deployment: handshakes from producers the table assigns to a
        different shard are refused with a ``MOVED`` redirect.  The
        table is swappable mid-flight (``route-update`` control op);
        established sessions are never redirected — only new
        handshakes consult the table, which is what makes a rebalance
        safe to roll out shard by shard.
    control_handler:
        ``async (ControlRequest) -> ControlReply`` supplied by the
        owning service; ``None`` refuses control frames outright.
    """

    def __init__(
        self,
        *,
        keys: KeyRegistry,
        limits: ServiceLimits,
        registry: RoundRegistry,
        shard_name: str | None = None,
        table: RoutingTable | None = None,
        control_handler=None,
    ) -> None:
        self.keys = keys
        self.limits = limits
        self.registry = registry
        self.shard_name = shard_name
        self.table = table
        self.control_handler = control_handler

        self.sessions_opened = 0
        self.sessions_rejected = 0
        self.sessions_shed = 0
        self.sessions_reaped_revoked = 0
        self.sessions_moved = 0
        self.control_requests = 0
        self.connections_failed = 0
        self.last_connection_error: str | None = None

        self._conn_tasks: set[asyncio.Task] = set()
        self._session_slots = asyncio.Semaphore(limits.max_sessions)
        self._waiting_sessions = 0

    # ------------------------------------------------------------------
    # Shutdown support (the owning service stops the listener itself)
    # ------------------------------------------------------------------
    async def cancel_connections(self) -> None:
        """Cancel and await every in-flight connection handler."""
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
            self._conn_tasks.clear()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _moved_owner(self, producer_id: str):
        """The shard now owning *producer_id* — when it is not this one.

        ``None`` means the producer is (still) ours, or this host is not
        a routed shard at all.  Consulted at handshake time AND inside
        the record loop: a ``route-update`` that lands mid-session (a
        live rebalance) must drain the moved producer's session, not
        let it keep committing records the new owner was just handed.
        """
        if self.table is None or self.shard_name is None:
            return None
        owner = self.table.owner(producer_id)
        return None if owner.name == self.shard_name else owner

    async def _send(self, writer: asyncio.StreamWriter, obj) -> None:
        writer.write(wire.dumps(obj))
        await writer.drain()

    async def _refuse(
        self,
        writer: asyncio.StreamWriter,
        seq: int,
        detail: str,
        *,
        m: int = 1,
        round_id: int = 0,
    ) -> None:
        await self._send(
            writer,
            wire.Ack(
                m=max(1, int(m)),
                round_id=int(round_id),
                seq=seq,
                status=wire.ACK_REFUSED,
                detail=detail,
            ),
        )

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            # Backpressure gate: stall while the service is at session
            # capacity, shed outright once the wait queue is full too.
            if self._session_slots.locked():
                if self._waiting_sessions >= self.limits.max_waiting_sessions:
                    self.sessions_shed += 1
                    await self._refuse(writer, 0, "service at capacity")
                    return
                self._waiting_sessions += 1
                try:
                    await self._session_slots.acquire()
                finally:
                    self._waiting_sessions -= 1
            else:
                await self._session_slots.acquire()
            try:
                await self._serve_session(reader, writer)
            finally:
                self._session_slots.release()
        except asyncio.CancelledError:
            # Service shutdown cancelled this handler; committed records
            # are durable, the in-flight one was never acked.
            self.connections_failed += 1
            self.last_connection_error = (
                "service closed during an in-flight session"
            )
            return
        except (WireFormatError, ValidationError, ServiceError) as exc:
            # One broken producer must not take the service down.
            self.connections_failed += 1
            self.last_connection_error = str(exc)
            return
        except (ConnectionError, OSError) as exc:
            self.connections_failed += 1
            self.last_connection_error = str(exc)
            return
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_session(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        quota = ConnectionQuota(self.limits)
        try:
            # The anti-slow-loris bound: an unauthenticated connection
            # gets one deadline for the whole handshake, so it cannot
            # hold a session slot by sending nothing (or half a frame).
            resolved = await asyncio.wait_for(
                self._handshake(reader, writer, quota),
                self.limits.handshake_timeout_seconds,
            )
        except asyncio.TimeoutError:
            self.sessions_rejected += 1
            self.last_connection_error = "handshake timed out"
            return
        if resolved is None:
            return
        round_, producer_id = resolved
        producer_quota = round_.producer_quota(producer_id)

        async def refuse_record(seq: int, detail: str) -> None:
            """Count and ack one refusal with this round's geometry.

            Every refusal goes through here so no future site can
            forget the round geometry and fall back to the m=1 default.
            """
            round_.records_refused += 1
            await self._refuse(
                writer, seq, detail, m=round_.m, round_id=round_.round_id
            )
        # The idle reap deadline: monotonic, measured from the last
        # completed frame — a session's age is irrelevant, only its
        # silence.  (Measuring from connection start would reap any
        # legitimately long engagement, e.g. a producer trickling
        # records to several rounds back to back.)
        idle = Deadline(self.limits.session_idle_seconds)
        # Group commit with double buffering: pipelined records stage
        # into `pending` while the previous batch commits through the
        # round's scheduler, so fsyncs overlap the network reads.  A
        # batch closes when it hits max_commit_batch, when the stream
        # goes idle for commit_idle_seconds, or at end of session / any
        # refusal.  This connection's batches commit strictly in order
        # (the next is only scheduled once the previous settled); the
        # round's scheduler interleaves them with other sessions'
        # batches under one fsync pair — acks still always follow the
        # fsyncs covering them.
        pending: list[dict] = []
        pending_bytes = 0
        staged_frames: dict[int, bytes] = {}
        commit_task: asyncio.Task | None = None

        async def settle() -> bool:
            """Await the in-flight batch; True if the session survives.

            ``commit_task`` is cleared only once the task has actually
            finished: if cancellation lands while we are suspended here,
            the still-set reference lets the function's ``finally`` wait
            the task out instead of abandoning it mid-ack.
            """
            nonlocal commit_task
            if commit_task is None:
                return True
            task = commit_task
            try:
                result = await task
            finally:
                if commit_task is task and task.done():
                    commit_task = None
            return result

        async def flush() -> bool:
            """Settle the in-flight batch, then commit `pending` inline."""
            nonlocal pending_bytes
            if not await settle():
                return False
            if not pending:
                return True
            batch, pending[:] = list(pending), []
            pending_bytes = 0
            staged_frames.clear()
            return await self._commit_batch(writer, round_, producer_id, batch)

        try:
            while True:
                # Revocation reap: checked before every read, so an
                # active producer is cut off at its next frame and an
                # idle one within REAP_POLL_SECONDS.  What it already
                # staged still commits (like a drain) — those records
                # were accepted from an authenticated session and the
                # acks for them may already be owed.
                if self.keys.is_revoked(producer_id):
                    self.sessions_reaped_revoked += 1
                    self.last_connection_error = (
                        f"producer {producer_id!r} revoked"
                    )
                    if not await flush():
                        return
                    await refuse_record(0, "authentication failed")
                    return
                # Ownership re-check, same cadence as revocation: a
                # rebalance that moved this producer drains the session
                # at its next frame (or within the idle poll).  What it
                # already staged still commits *here* — those records
                # precede the move and the migration transfer picks
                # them up — then the MOVED refusal redirects the
                # producer to the new owner.
                owner = self._moved_owner(producer_id)
                if owner is not None:
                    self.sessions_moved += 1
                    self.last_connection_error = (
                        f"producer {producer_id!r} moved to {owner.name}"
                    )
                    if not await flush():
                        return
                    await refuse_record(
                        0, format_moved(self.table.epoch, owner)
                    )
                    return
                if not pending and idle.expired():
                    self.connections_failed += 1
                    self.last_connection_error = "session idle timeout"
                    await self._refuse(
                        writer,
                        0,
                        "session idle timeout",
                        m=round_.m,
                        round_id=round_.round_id,
                    )
                    return
                try:
                    # Header deadline: the group-commit idle signal when
                    # a batch is staged, the revocation-poll-capped
                    # remaining monotonic reap window when nothing is.
                    # Payload deadline: a peer stalled mid-frame can
                    # never recover to a frame boundary, so that raises
                    # WireFormatError (drop), not the idle TimeoutError
                    # (flush / poll / reap).
                    frame = await read_frame_bytes(
                        reader,
                        max_frame_bytes=self.limits.max_frame_bytes,
                        header_timeout=(
                            self.limits.commit_idle_seconds
                            if pending
                            else min(idle.remaining(), REAP_POLL_SECONDS)
                        ),
                        payload_timeout=self.limits.session_idle_seconds,
                    )
                except asyncio.TimeoutError:
                    if pending:
                        if not await flush():
                            return
                        continue
                    if not idle.expired():
                        continue  # revocation poll tick; loop re-checks
                    # Idle session: free the slot; everything acked is
                    # durable, so the producer just reconnects.
                    self.connections_failed += 1
                    self.last_connection_error = "session idle timeout"
                    await self._refuse(
                        writer,
                        0,
                        "session idle timeout",
                        m=round_.m,
                        round_id=round_.round_id,
                    )
                    return
                except QuotaExceededError as exc:
                    # A failed flush already sent the connection's last
                    # ack (a commit-time refusal); a second refusal here
                    # would desync the client's positional accounting.
                    if not await flush():
                        return
                    await refuse_record(0, str(exc))
                    return
                if frame is None:
                    await flush()
                    return  # clean end of session
                idle.reset()
                # Re-check after the read: a revocation that landed
                # while this frame was in flight still refuses it — the
                # loop-top check ran before the frame existed, and
                # "reaped at its next frame" is the contract.
                if self.keys.is_revoked(producer_id):
                    self.sessions_reaped_revoked += 1
                    self.last_connection_error = (
                        f"producer {producer_id!r} revoked"
                    )
                    if not await flush():
                        return
                    await refuse_record(0, "authentication failed")
                    return
                # Same post-read re-check for ownership: a route-update
                # installed while this frame was in flight refuses it
                # with MOVED instead of committing it on the wrong side
                # of the migration cut.
                owner = self._moved_owner(producer_id)
                if owner is not None:
                    self.sessions_moved += 1
                    self.last_connection_error = (
                        f"producer {producer_id!r} moved to {owner.name}"
                    )
                    if not await flush():
                        return
                    await refuse_record(
                        0, format_moved(self.table.epoch, owner)
                    )
                    return
                try:
                    quota.charge(len(frame))
                except QuotaExceededError as exc:
                    if not await flush():
                        return
                    await refuse_record(0, str(exc))
                    return
                obj = wire.loads(frame)
                if not isinstance(obj, wire.Record):
                    if not await flush():
                        return
                    await refuse_record(
                        0,
                        f"expected a record frame, got {type(obj).__name__}",
                    )
                    return
                staged = round_.stage_record(producer_id, obj, staged_frames)
                if staged["status"] == "refused":
                    if not await flush():
                        return
                    await refuse_record(obj.seq, staged["detail"])
                    return
                if staged["status"] == "fresh":
                    # Producer and round budgets meter records accepted
                    # for commit — never duplicates — so the blind
                    # resend the exactly-once protocol relies on is
                    # quota-free, before and after a restart.  (The
                    # connection quota above still bounds raw ingest.)
                    # Charges are atomic and paired: a refused or
                    # half-failed attempt leaves both meters untouched,
                    # and charges for records that end up NOT
                    # committing are refunded — see
                    # RoundState.refund_uncommitted.
                    try:
                        producer_quota.charge(len(staged["frame"]))
                        try:
                            round_.quota.charge(len(staged["frame"]))
                        except QuotaExceededError:
                            producer_quota.refund(len(staged["frame"]))
                            raise
                        staged["charged"] = len(staged["frame"])
                    except QuotaExceededError as exc:
                        if not await flush():
                            return
                        await refuse_record(obj.seq, str(exc))
                        return
                pending.append(staged)
                pending_bytes += len(frame)
                if staged["status"] == "fresh":
                    staged_frames[obj.seq] = staged["frame"]
                if (
                    len(pending) >= self.limits.max_commit_batch
                    or pending_bytes >= self.limits.max_commit_batch_bytes
                ):
                    # Hand the full batch to a background commit and keep
                    # reading; if the previous batch refused (equivocation
                    # at commit time), the session is over.
                    if not await settle():
                        return
                    batch, pending = pending, []
                    pending_bytes = 0
                    staged_frames = {}
                    commit_task = asyncio.create_task(
                        self._commit_batch(writer, round_, producer_id, batch)
                    )
        finally:
            # Staged-but-never-submitted records will be resent by the
            # producer; give their quota charges back first.  (Items
            # handed to a commit task are the scheduler's to settle.)
            round_.refund_uncommitted(producer_id, pending)
            # Never abandon an in-flight commit's *ack half*: the
            # durable half lives with the round's scheduler (drained at
            # close), but this task still owes the client its acks.
            # Its writes may fail against a closing socket; swallow
            # that rather than masking the original exit.
            if commit_task is not None:
                try:
                    await commit_task
                except Exception:
                    pass

    async def _handshake(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        quota: ConnectionQuota,
    ) -> tuple[RoundState, str] | None:
        """Run the server side of the HMAC handshake.

        Routes the HELLO through the round registry and authenticates
        against the producer's own key.  Returns ``(round, producer_id)``,
        or ``None`` after a refusal ack (the caller just closes the
        connection).  A control request in HELLO position is dispatched
        to the control handler instead; its reply ends the connection.
        """
        frame = await read_frame_bytes(
            reader, max_frame_bytes=self.limits.max_frame_bytes
        )
        if frame is None:
            return None  # connected and left without a word
        quota.charge(len(frame))
        hello = wire.loads(frame)
        if isinstance(hello, wire.ControlRequest):
            await self._serve_control(writer, hello)
            return None
        if not isinstance(hello, wire.SessionHello):
            self.sessions_rejected += 1
            await self._refuse(
                writer,
                0,
                f"expected a session hello, got {type(hello).__name__}",
            )
            return None
        round_ = self.registry.get(hello.round_id)
        if round_ is None:
            self.sessions_rejected += 1
            await self._refuse(
                writer,
                0,
                f"round mismatch: this service hosts rounds "
                f"{self.registry.round_ids()}, hello claims round "
                f"{hello.round_id}",
                m=hello.m,
                round_id=hello.round_id,
            )
            return None
        if hello.m != round_.m:
            self.sessions_rejected += 1
            await self._refuse(
                writer,
                0,
                f"round mismatch: round {round_.round_id} is "
                f"m={round_.m}, hello claims m={hello.m}",
                m=round_.m,
                round_id=round_.round_id,
            )
            return None
        if not round_.lifecycle.accepts_sessions:
            self.sessions_rejected += 1
            await self._refuse(
                writer,
                0,
                f"round {round_.round_id} is {round_.lifecycle.phase}; "
                "sessions are only accepted while serving",
                m=round_.m,
                round_id=round_.round_id,
            )
            return None
        if self.table is not None and self.shard_name is not None:
            owner = self.table.owner(hello.producer_id)
            if owner.name != self.shard_name:
                # Mis-routed producer (stale table, or a rebalance in
                # flight): refuse with a MOVED redirect *before* the
                # challenge, so the producer loses one round trip, not
                # a handshake.  The redirect leaks only the routing
                # table, which every producer holds anyway.
                self.sessions_moved += 1
                await self._refuse(
                    writer,
                    0,
                    format_moved(self.table.epoch, owner),
                    m=round_.m,
                    round_id=round_.round_id,
                )
                return None
        # Key lookup happens here, but an unknown producer is NOT
        # refused yet: it receives a challenge like anyone else and
        # fails at proof verification with the same message as a
        # wrong key, so an unauthenticated client cannot probe which
        # producer ids are registered (enumeration oracle).  A
        # *revoked* producer takes the same path: lookup returns None,
        # so revocation is indistinguishable from an unknown key.
        producer_key = self.keys.lookup(hello.producer_id)
        server_nonce = fresh_nonce()
        await self._send(
            writer,
            wire.SessionChallenge(
                m=round_.m,
                round_id=round_.round_id,
                nonce=server_nonce,
                round_token=round_.token,
            ),
        )
        frame = await read_frame_bytes(
            reader, max_frame_bytes=self.limits.max_frame_bytes
        )
        if frame is None:
            self.sessions_rejected += 1
            return None
        quota.charge(len(frame))
        proof = wire.loads(frame)
        authenticated = (
            producer_key is not None
            and isinstance(proof, wire.SessionProof)
            and verify_session_mac(
                producer_key,
                proof.mac,
                m=round_.m,
                round_id=round_.round_id,
                producer_id=hello.producer_id,
                client_nonce=hello.nonce,
                server_nonce=server_nonce,
                round_token=round_.token,
                party=round_.party,
            )
        )
        if not authenticated:
            self.sessions_rejected += 1
            await self._refuse(
                writer,
                0,
                "authentication failed",
                m=round_.m,
                round_id=round_.round_id,
            )
            return None
        self.sessions_opened += 1
        round_.producers_seen.add(hello.producer_id)
        await self._send(
            writer,
            wire.Ack(
                m=round_.m,
                round_id=round_.round_id,
                seq=0,
                status=wire.ACK_SESSION,
                detail=hello.producer_id,
            ),
        )
        return round_, hello.producer_id

    async def _serve_control(
        self, writer: asyncio.StreamWriter, request: wire.ControlRequest
    ) -> None:
        """Dispatch one control request; its reply ends the connection.

        The handler (the owning service) verifies the request MAC and
        MACs the reply — this layer only moves frames.  A host without
        a control handler refuses with an ordinary ack, so a shard that
        was never given a control key exposes no control surface at
        all.
        """
        self.control_requests += 1
        if self.control_handler is None:
            await self._refuse(writer, 0, "control plane not enabled")
            return
        reply = await self.control_handler(request)
        await self._send(writer, reply)

    # ------------------------------------------------------------------
    # The exactly-once record commit
    # ------------------------------------------------------------------
    async def _commit_batch(
        self,
        writer: asyncio.StreamWriter,
        round_: RoundState,
        producer_id: str,
        pending: list[dict],
    ) -> bool:
        """Commit a staged batch through the round's scheduler, then ack.

        The scheduler resolves every item's status under the fsync pair
        covering it (group commit, possibly coalesced with other
        sessions' batches); acks go out here, in this connection's
        stage order, only afterwards — each individual ack still
        certifies durability.  Returns False when an equivocation
        surfaced at commit time (connection must drop).
        """
        await round_.scheduler.submit(producer_id, pending)
        return await self._send_batch_acks(writer, round_, producer_id, pending)

    async def _send_batch_acks(
        self,
        writer: asyncio.StreamWriter,
        round_: RoundState,
        producer_id: str,
        pending: list[dict],
    ) -> bool:
        survived = True
        for item in pending:
            if item["status"] == "merged":
                status, detail = wire.ACK_MERGED, ""
            elif item["status"] == "duplicate":
                round_.records_duplicate += 1
                status, detail = wire.ACK_DUPLICATE, "already merged"
            elif item["status"] == "moved":
                # Staged before the producer was migrated off this
                # shard, caught at commit time: refuse with MOVED so
                # the producer resends to the new owner (the transfer
                # carried its committed prefix there already).
                round_.records_refused += 1
                status = wire.ACK_REFUSED
                if self.table is not None:
                    detail = format_moved(
                        self.table.epoch, self.table.owner(producer_id)
                    )
                else:
                    detail = (
                        f"producer {producer_id!r} was migrated off "
                        "this shard"
                    )
                survived = False
            else:  # equivocation discovered at commit time
                round_.records_refused += 1
                status = wire.ACK_REFUSED
                detail = (
                    f"equivocation: seq {item['seq']} is already "
                    "committed with different frame bytes"
                )
                survived = False
            await self._send(
                writer,
                wire.Ack(
                    m=round_.m,
                    round_id=round_.round_id,
                    seq=item["seq"],
                    status=status,
                    detail=detail,
                ),
            )
            if not survived:
                break  # refusal is the connection's last ack
        return survived
