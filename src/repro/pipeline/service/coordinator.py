"""The coordinator: round lifecycle authority for a shard fleet.

In a scale-out deployment no shard owns a round — each hosts a *slice*
(the producers the routing table assigns to it).  Someone must own the
round itself: decide when it starts serving, when it drains, when it is
closed and safe to aggregate, and what registration token scopes its
sessions.  :class:`RoundCoordinator` is that owner:

* it holds the fleet's :class:`~.routing.RoutingTable` and pushes
  epoch-bumped tables to every shard (``route-update``);
* it **mints one registration token per round** and registers the round
  on every shard with it (``open-round``) — which is why a session
  proof minted against any shard of the round is scoped to the same
  incarnation, and why a retired round id can be re-registered without
  any old proof coming back to life;
* it drives the round's lifecycle state machine
  (:mod:`~.lifecycle`: ``open → serving → draining → closed →
  retired``) and keeps its own authoritative
  :class:`~.lifecycle.RoundLifecycle` per round, transitioning it only
  after every shard acknowledged the matching control op — so the
  coordinator's answer to "what is round 7 doing?" is never *ahead* of
  any shard;
* it is primarily a control-plane *client*: all its verbs ride
  :func:`~.client.control_call` (authenticated, nonce-bound).  It can
  additionally :meth:`~RoundCoordinator.serve` a small control
  endpoint of its own so shards announce themselves
  (``hello-coordinator`` after a restart, ``join-fleet`` to enter the
  ring) instead of an operator re-wiring addresses by hand.

The coordinator deliberately does not proxy record traffic — producers
talk straight to their shard.  And it need not be a single point of
failure: given a ``journal`` path it writes every durable decision
(registrations, tokens, lifecycle transitions, fleet snapshots,
migration markers) to an fsync'd append-only log
(:class:`~.journal.CoordinatorJournal`) *before* acting on the fleet.
:meth:`RoundCoordinator.resume` replays that log after a crash —
``kill -9`` included — rebuilding the round table with its tokens, and
:meth:`~RoundCoordinator.reconcile` re-asserts ownership of every open
round (idempotently, so work the dead coordinator finished is simply
acknowledged) and re-runs any migration that was cut off mid-flight.

It also owns **live rebalancing**: :meth:`~RoundCoordinator.migrate`
pushes an epoch-bumped table and then moves every migrated producer's
*committed records* shard-to-shard (``migrate-out`` / ``migrate-in``,
digest-verified), so a rebalance under traffic loses nothing and
double-counts nothing — blind resends land on the new owner's
transferred ledger entries as duplicates.

A coordinator given *keepers* also owns **split-trust rounds**
(:mod:`.shares`): ``register_round(..., mode="blinded")`` opens the
round as a blinded collector on every shard and as a keeper round on
every share keeper — all under the same registration token — and every
lifecycle verb (drain / close / retire / status) spans both fleets, so
no party can be left serving a round the others closed.
"""

from __future__ import annotations

import asyncio
import hashlib
from dataclasses import dataclass, field

from ...exceptions import ValidationError, WireFormatError
from ..collect import wire
from ..collect.framing import read_frame_bytes
from .auth import (
    control_reply_mac,
    derive_round_key,
    fresh_nonce,
    verify_control_request_mac,
)
from .client import control_call
from .journal import CoordinatorJournal
from .lifecycle import (
    CLOSED,
    DRAINING,
    OPEN,
    RETIRED,
    SERVING,
    RoundLifecycle,
)
from .rounds import MODE_BLINDED, MODE_COLLECT, MODE_KEEPER
from .routing import RoutingTable, ShardInfo

__all__ = ["CoordinatedRound", "RoundCoordinator", "COORDINATOR_OPS"]

#: Ops the coordinator's own control endpoint answers (shards dial in).
COORDINATOR_OPS = ("hello-coordinator", "join-fleet")

#: Cap per migrate-in call: frames ride the request body hex-encoded
#: (control requests carry no attachment), so batches stay well under
#: the service frame limit.
_MIGRATE_BATCH_BYTES = 1 << 21


@dataclass
class CoordinatedRound:
    """The coordinator's authoritative record of one round."""

    round_id: int
    m: int
    token: bytes
    mode: str = MODE_COLLECT
    lifecycle: RoundLifecycle = field(init=False)

    def __post_init__(self) -> None:
        self.lifecycle = RoundLifecycle(self.round_id)

    @property
    def phase(self) -> str:
        return self.lifecycle.phase


class RoundCoordinator:
    """Owns rounds across a fleet of shard services.

    Parameters
    ----------
    shards:
        The fleet: :class:`~.routing.ShardInfo` entries (stable names,
        current addresses).
    control_key:
        The fleet's control-plane secret; every verb authenticates
        with it.
    replicas / epoch:
        Routing-table construction knobs (see
        :class:`~.routing.RoutingTable`).
    keepers:
        Share-keeper services (:class:`~.routing.ShardInfo` entries)
        for split-trust rounds.  Keepers are *not* part of the routing
        ring — every producer sends its share stream to every keeper —
        they are a second fleet the coordinator drives through the same
        control plane.
    """

    def __init__(
        self,
        shards,
        *,
        control_key,
        replicas: int | None = None,
        epoch: int = 1,
        keepers=(),
        journal=None,
    ) -> None:
        kwargs = {} if replicas is None else {"replicas": replicas}
        self.table = RoutingTable(shards, epoch=epoch, **kwargs)
        self.control_key = control_key
        self.keepers: tuple[ShardInfo, ...] = tuple(keepers)
        names = [keeper.name for keeper in self.keepers]
        if len(set(names)) != len(names):
            raise ValidationError(
                f"share keeper names must be unique, got {names}"
            )
        self.rounds: dict[int, CoordinatedRound] = {}
        #: The ``migrate pending`` journal event (epoch + union fleet)
        #: of a migration not yet journaled ``done`` — :meth:`reconcile`
        #: re-runs it.
        self.pending_migration: dict | None = None
        self._server: asyncio.AbstractServer | None = None
        self._endpoint_key = None
        self._address: tuple[str, int] | None = None
        self.journal: CoordinatorJournal | None = None
        if journal is not None:
            if not isinstance(journal, CoordinatorJournal):
                journal = CoordinatorJournal(str(journal))
            events = (
                journal.load() if journal._handle is None else len(journal)
            )
            if events:
                raise ValidationError(
                    f"journal {journal.path} already holds {events} "
                    "events; use RoundCoordinator.resume() to recover "
                    "from it"
                )
            self.journal = journal
            self._journal(self._fleet_event())
            if self.keepers:
                self._journal(self._keepers_event())

    # ------------------------------------------------------------------
    # Durability (the journal is written BEFORE the fleet is acted on)
    # ------------------------------------------------------------------
    def _journal(self, event: dict) -> None:
        if self.journal is not None:
            self.journal.append(event)

    def _fleet_event(self) -> dict:
        return {
            "kind": "fleet",
            "epoch": self.table.epoch,
            "replicas": self.table.replicas,
            "shards": {
                shard.name: [shard.host, shard.port]
                for shard in self.table.shards()
            },
        }

    def _keepers_event(self) -> dict:
        return {
            "kind": "keepers",
            "shards": {
                keeper.name: [keeper.host, keeper.port]
                for keeper in self.keepers
            },
        }

    @classmethod
    def resume(cls, journal, *, control_key) -> "RoundCoordinator":
        """Rebuild a coordinator from its journal after a crash.

        Replays the log: the last ``fleet`` / ``keepers`` snapshots fix
        the membership and epoch, ``register`` events restore the round
        table (tokens included), ``phase`` events restore each round's
        lifecycle, and an unmatched ``migrate pending`` is remembered
        for :meth:`reconcile` to re-run.  The journal stays attached —
        the resumed coordinator keeps appending to it.

        Replay is pure bookkeeping; call :meth:`reconcile` afterwards
        to re-assert round ownership on the (still running) fleet.
        """
        if not isinstance(journal, CoordinatorJournal):
            journal = CoordinatorJournal(str(journal))
        if journal._handle is None:
            journal.load()
        events = journal.events()
        fleet_event = keepers_event = None
        for event in events:
            if event["kind"] == "fleet":
                fleet_event = event
            elif event["kind"] == "keepers":
                keepers_event = event
        if fleet_event is None:
            raise ValidationError(
                f"journal {journal.path} holds no fleet snapshot; "
                "nothing to resume"
            )
        shards = [
            ShardInfo(name, host, int(port))
            for name, (host, port) in sorted(fleet_event["shards"].items())
        ]
        keepers = (
            [
                ShardInfo(name, host, int(port))
                for name, (host, port) in sorted(
                    keepers_event["shards"].items()
                )
            ]
            if keepers_event is not None
            else ()
        )
        coordinator = cls(
            shards,
            control_key=control_key,
            replicas=int(fleet_event["replicas"]),
            epoch=int(fleet_event["epoch"]),
            keepers=keepers,
        )
        coordinator.journal = journal
        for event in events:
            kind = event["kind"]
            if kind == "register":
                record = CoordinatedRound(
                    round_id=int(event["round_id"]),
                    m=int(event["m"]),
                    token=bytes.fromhex(event["token"]),
                    mode=event.get("mode", MODE_COLLECT),
                )
                coordinator.rounds[record.round_id] = record
            elif kind == "phase":
                round_id = int(event["round_id"])
                if event["phase"] == RETIRED:
                    coordinator.rounds.pop(round_id, None)
                elif round_id in coordinator.rounds:
                    coordinator.rounds[round_id].lifecycle = RoundLifecycle(
                        round_id, event["phase"]
                    )
            elif kind == "migrate":
                coordinator.pending_migration = (
                    event if event["state"] == "pending" else None
                )
        return coordinator

    async def reconcile(self) -> dict:
        """Re-assert ownership of every live round after :meth:`resume`.

        Re-registers each ``open``/``serving`` round fleet-wide with
        its original token — shards that never died answer with their
        idempotent "already hosting it" acknowledgement, shards that
        restarted resume from their own ledger + spill — and re-runs a
        migration the crash cut off (``migrate-out``/``migrate-in`` are
        idempotent, so a half-applied transfer completes exactly).
        """
        reopened: list[int] = []
        for record in sorted(
            self.rounds.values(), key=lambda r: r.round_id
        ):
            if record.phase not in (OPEN, SERVING):
                continue
            body: dict = {
                "m": record.m,
                "round_id": record.round_id,
                "token": record.token.hex(),
                "resume": True,
            }
            if record.mode == MODE_BLINDED:
                body["mode"] = MODE_BLINDED
            await self._broadcast("open-round", body)
            if record.mode == MODE_BLINDED:
                keeper_body = dict(body)
                keeper_body["mode"] = MODE_KEEPER
                await self._broadcast(
                    "open-round", keeper_body, fleet=list(self.keepers)
                )
            if record.phase == OPEN:
                record.lifecycle.transition(SERVING)
                self._journal(
                    {
                        "kind": "phase",
                        "round_id": record.round_id,
                        "phase": SERVING,
                    }
                )
            reopened.append(record.round_id)
        migration_rerun = False
        if self.pending_migration is not None:
            in_table = {shard.name for shard in self.table.shards()}
            extra = [
                ShardInfo(name, host, int(port))
                for name, (host, port) in sorted(
                    self.pending_migration.get("shards", {}).items()
                )
                if name not in in_table
            ]
            await self.migrate(self.table, extra_sources=extra)
            migration_rerun = True
        return {"rounds": reopened, "migration_rerun": migration_rerun}

    # ------------------------------------------------------------------
    # Fleet plumbing
    # ------------------------------------------------------------------
    async def _call_shard(
        self, shard: ShardInfo, op: str, body: dict
    ) -> tuple[dict, bytes]:
        return await control_call(
            shard.host, shard.port, key=self.control_key, op=op, body=body
        )

    async def _broadcast(
        self, op: str, body: dict, *, fleet=None
    ) -> list[dict]:
        """Run one op against every shard, concurrently, all-or-error.

        Any shard failure raises after all calls settle (the error
        names the shard), so a partially applied broadcast is loud —
        the caller decides whether to retry (every shard op here is
        idempotent-or-loud, never silently divergent).  *fleet*
        overrides the target set (default: the routing table's shards;
        split-trust verbs pass shards + keepers).
        """
        shards = list(self.table.shards()) if fleet is None else list(fleet)
        results = await asyncio.gather(
            *(self._call_shard(shard, op, body) for shard in shards),
            return_exceptions=True,
        )
        failures = [
            f"{shard.name}: {result}"
            for shard, result in zip(shards, results)
            if isinstance(result, BaseException)
        ]
        if failures:
            raise ValidationError(
                f"control op {op!r} failed on {len(failures)} of "
                f"{len(shards)} shards: {'; '.join(failures)}"
            )
        return [body for body, _attachment in results]

    def _round_fleet(self, record: CoordinatedRound) -> list[ShardInfo]:
        """Every service hosting *record*: shards, plus keepers for a
        split-trust round — lifecycle verbs must span both fleets."""
        fleet = list(self.table.shards())
        if record.mode == MODE_BLINDED:
            fleet.extend(self.keepers)
        return fleet

    async def push_routing(self, table: RoutingTable | None = None) -> int:
        """Install *table* (default: the current one) on every shard."""
        if table is not None:
            self.table = table
        self._journal(self._fleet_event())
        await self._broadcast(
            "route-update", {"table": self.table.to_payload()}
        )
        return self.table.epoch

    async def rebalance(self, *, add=None, remove=None) -> RoutingTable:
        """Add and/or remove shards; push the next-epoch table.

        Consistent hashing keeps the move minimal: only producers owned
        by a removed shard, or newly claimed by an added one, change
        shards.  Producers mid-session are untouched (tables gate
        handshakes only); their next reconnect follows a MOVED
        redirect.
        """
        table = self.table
        for shard in add or ():
            table = table.with_shard(shard)
        for name in remove or ():
            table = table.without_shard(name)
        await self.push_routing(table)
        return table

    # ------------------------------------------------------------------
    # Live rebalancing (records follow their producers, under traffic)
    # ------------------------------------------------------------------
    async def migrate(self, table: RoutingTable, *, extra_sources=()) -> dict:
        """Move the fleet to *table* without losing a record.

        :meth:`rebalance` only repoints *future* sessions; records a
        moved producer already committed would stay marooned on the old
        owner — and its blind resends (the MOVED recovery path resends
        whole batches) would double-count on the new one.  ``migrate``
        closes both holes, live:

        1. journal the new fleet and a ``migrate pending`` marker —
           *before* any shard sees the table, so a coordinator crash
           anywhere past this point re-runs the (idempotent) transfer;
        2. push *table* to the union of old and new fleets — old owners
           begin refusing moved producers with MOVED at their next
           frame (their in-flight batch still commits);
        3. per live round, per shard: ``migrate-out`` evicts every
           moved producer's committed records (pausing that round's
           commit pipeline for the copy — the only stop-the-world
           window, measured by ``make bench-rebalance-smoke``), then
           ``migrate-in`` installs them on their new owners,
           digest-verified and ledger-deduped;
        4. journal ``migrate done``.

        Producers keep sending throughout: sessions on unaffected
        shards never notice, moved producers reconnect via MOVED and
        their resends dedup against the transferred ledger entries.

        *extra_sources* names shards to migrate OUT of beyond the two
        tables' union — the resume path passes the journaled union so a
        shard being REMOVED (absent from the post-crash table) is still
        drained on the re-run.
        """
        old = {shard.name: shard for shard in self.table.shards()}
        for shard in extra_sources:
            old.setdefault(shard.name, shard)
        new = {shard.name: shard for shard in table.shards()}
        union = {**old, **new}  # same name → prefer the new address
        self.table = table
        pending = {
            "kind": "migrate",
            "state": "pending",
            "epoch": table.epoch,
            # The union fleet rides the marker: a removed shard is not
            # in any later fleet snapshot, and the re-run must still
            # dial it to finish draining its records.
            "shards": {
                shard.name: [shard.host, shard.port]
                for shard in union.values()
            },
        }
        self.pending_migration = pending
        self._journal(self._fleet_event())
        self._journal(pending)
        await self._broadcast(
            "route-update",
            {"table": table.to_payload()},
            fleet=list(union.values()),
        )
        installed = duplicates = 0
        for record in sorted(
            self.rounds.values(), key=lambda r: r.round_id
        ):
            if record.phase not in (OPEN, SERVING):
                continue
            for shard in union.values():
                body, attachment = await self._call_shard(
                    shard,
                    "migrate-out",
                    {"round_id": record.round_id, "epoch": table.epoch},
                )
                moved = self._slice_migrated(shard, body, attachment)
                by_target: dict[str, list[dict]] = {}
                for entry in moved:
                    target = table.owner(entry["producer"]).name
                    by_target.setdefault(target, []).append(entry)
                for target_name, entries in sorted(by_target.items()):
                    target = new[target_name]
                    for chunk in self._migrate_chunks(entries):
                        reply, _ = await self._call_shard(
                            target,
                            "migrate-in",
                            {
                                "round_id": record.round_id,
                                "entries": chunk,
                            },
                        )
                        installed += int(reply["installed"])
                        duplicates += int(reply["duplicates"])
        self.pending_migration = None
        self._journal(
            {"kind": "migrate", "state": "done", "epoch": table.epoch}
        )
        return {
            "epoch": table.epoch,
            "installed": installed,
            "duplicates": duplicates,
        }

    @staticmethod
    def _slice_migrated(
        shard: ShardInfo, body: dict, attachment: bytes
    ) -> list[dict]:
        """Split a migrate-out reply attachment into per-record entries,
        verifying every frame against its declared digest (the reply MAC
        authenticated the bytes; the digest pins each slice)."""
        moved: list[dict] = []
        offset = 0
        for entry in body["entries"]:
            length = int(entry["length"])
            frame = attachment[offset : offset + length]
            offset += length
            if hashlib.sha256(frame).hexdigest() != entry["digest"]:
                raise ValidationError(
                    f"migrate-out from {shard.name!r}: record "
                    f"{entry['producer']!r}/{entry['seq']} failed its "
                    "digest check"
                )
            moved.append(
                {
                    "producer": entry["producer"],
                    "seq": int(entry["seq"]),
                    "digest": entry["digest"],
                    "frame": frame.hex(),
                }
            )
        if offset != len(attachment):
            raise ValidationError(
                f"migrate-out from {shard.name!r}: attachment holds "
                f"{len(attachment)} bytes but the entries describe "
                f"{offset}"
            )
        return moved

    @staticmethod
    def _migrate_chunks(entries: list[dict]):
        """Yield entry batches whose frames total ≤ the migrate budget
        (always at least one entry per batch)."""
        chunk: list[dict] = []
        chunk_bytes = 0
        for entry in entries:
            frame_bytes = len(entry["frame"]) // 2
            if chunk and chunk_bytes + frame_bytes > _MIGRATE_BATCH_BYTES:
                yield chunk
                chunk, chunk_bytes = [], 0
            chunk.append(entry)
            chunk_bytes += frame_bytes
        if chunk:
            yield chunk

    async def join_shard(self, shard: ShardInfo) -> dict:
        """Admit *shard* to the ring (or re-admit it after a restart).

        A known name is the restart path: re-address it, resume its
        rounds, hand it the current table.  A new name first opens
        every live round on the newcomer (it owns nothing until the
        table lands, so this is invisible), then runs a full
        :meth:`migrate` onto the epoch-bumped table that includes it.
        """
        if any(
            existing.name == shard.name for existing in self.table.shards()
        ):
            recovered = await self.recover_shard(shard)
            await self._call_shard(
                shard, "route-update", {"table": self.table.to_payload()}
            )
            return {
                "joined": False,
                "epoch": self.table.epoch,
                "rounds": recovered,
            }
        for record in sorted(
            self.rounds.values(), key=lambda r: r.round_id
        ):
            if record.phase not in (OPEN, SERVING):
                continue
            body = {
                "m": record.m,
                "round_id": record.round_id,
                "token": record.token.hex(),
                "resume": False,
            }
            if record.mode == MODE_BLINDED:
                body["mode"] = MODE_BLINDED
            await self._call_shard(shard, "open-round", body)
        stats = await self.migrate(self.table.with_shard(shard))
        return {"joined": True, **stats}

    # ------------------------------------------------------------------
    # The coordinator's own control endpoint (shards announce here)
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int] | None:
        """The serving endpoint's ``(host, port)``, if bound."""
        return self._address

    async def serve(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Accept shard announcements; returns the bound address.

        The endpoint speaks the same MAC'd control frames as the
        shards' control plane (same control key), answering
        ``hello-coordinator`` (a restarted shard re-announcing its
        address) and ``join-fleet`` (a new shard asking to enter the
        ring, which triggers a live :meth:`migrate`).
        """
        if self._server is not None:
            raise ValidationError("coordinator endpoint is already serving")
        self._endpoint_key = derive_round_key(self.control_key)
        self._server = await asyncio.start_server(
            self._handle_announcement, host=host, port=port
        )
        sockname = self._server.sockets[0].getsockname()
        self._address = (sockname[0], sockname[1])
        return self._address

    async def close(self) -> None:
        """Stop the endpoint (if serving) and close the journal."""
        if self._server is not None:
            server, self._server = self._server, None
            server.close()
            await server.wait_closed()
            self._address = None
        if self.journal is not None:
            self.journal.close()

    def _endpoint_reply(
        self, nonce: bytes, body: dict, *, status=None
    ) -> wire.ControlReply:
        status = wire.CONTROL_OK if status is None else status
        mac = control_reply_mac(
            self._endpoint_key,
            status=status,
            nonce=nonce,
            body=body,
            attachment=b"",
        )
        return wire.ControlReply(
            status=status, nonce=nonce, body=body, attachment=b"", mac=mac
        )

    async def _handle_announcement(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            frame = await read_frame_bytes(
                reader, max_frame_bytes=1 << 20
            )
            if frame is None:
                return
            request = wire.loads(frame)
            if not isinstance(request, wire.ControlRequest):
                return
            if not verify_control_request_mac(
                self._endpoint_key,
                request.mac,
                op=request.op,
                nonce=request.nonce,
                body=request.body,
            ):
                reply = self._endpoint_reply(
                    request.nonce,
                    {"detail": "control authentication failed"},
                    status=wire.CONTROL_ERROR,
                )
            else:
                try:
                    body = await self._dispatch_announcement(
                        request.op, request.body
                    )
                    reply = self._endpoint_reply(request.nonce, body)
                except (ValidationError, ValueError, KeyError) as exc:
                    reply = self._endpoint_reply(
                        request.nonce,
                        {"detail": str(exc)},
                        status=wire.CONTROL_ERROR,
                    )
            writer.write(wire.dumps(reply))
            await writer.drain()
        except (ConnectionError, OSError, WireFormatError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch_announcement(self, op: str, body: dict) -> dict:
        if op in ("hello-coordinator", "join-fleet"):
            shard = ShardInfo(
                str(body["name"]), str(body["host"]), int(body["port"])
            )
            known = any(
                existing.name == shard.name
                for existing in self.table.shards()
            )
            if op == "hello-coordinator" and not known:
                return {"known": False, "epoch": self.table.epoch}
            result = await self.join_shard(shard)
            if op == "hello-coordinator":
                return {
                    "known": True,
                    "epoch": self.table.epoch,
                    "rounds": result.get("rounds", []),
                }
            return result

        raise ValidationError(
            f"unknown coordinator op {op!r}; ops: "
            f"{', '.join(COORDINATOR_OPS)}"
        )

    # ------------------------------------------------------------------
    # Round lifecycle verbs
    # ------------------------------------------------------------------
    def _round(self, round_id: int) -> CoordinatedRound:
        record = self.rounds.get(int(round_id))
        if record is None:
            raise ValidationError(
                f"round {round_id} is not coordinated here; rounds: "
                f"{sorted(self.rounds)}"
            )
        return record

    def phase(self, round_id: int) -> str:
        """The authoritative lifecycle phase of *round_id*."""
        return self._round(round_id).phase

    async def register_round(
        self,
        m: int,
        round_id: int,
        *,
        limits=None,
        resume: bool = False,
        mode: str = MODE_COLLECT,
    ) -> CoordinatedRound:
        """Register one round on every shard and start it serving.

        Mints the round's registration token and opens the round with
        it fleet-wide, so all shards challenge with the same token.
        The coordinator's lifecycle record passes through ``open``
        (while shards are being registered) and lands on ``serving``
        only after every shard acknowledged.

        ``mode="blinded"`` registers a **split-trust round**: every
        shard opens it as a blinded collector and every configured
        keeper opens it as a keeper round — same token, so a producer's
        proofs across all parties are scoped to one incarnation (and
        distinguished per party by the keeper labels in the transcript).
        """
        round_id = int(round_id)
        if round_id in self.rounds:
            raise ValidationError(
                f"round {round_id} is already coordinated; retire it first"
            )
        if mode not in (MODE_COLLECT, MODE_BLINDED):
            raise ValidationError(
                f"coordinated rounds are {MODE_COLLECT!r} or "
                f"{MODE_BLINDED!r} (keeper rounds are opened implicitly "
                f"on the keeper fleet), got {mode!r}"
            )
        if mode == MODE_BLINDED and not self.keepers:
            raise ValidationError(
                "a blinded round needs share keepers; construct the "
                "coordinator with keepers=[...] or register a plain "
                "collect round"
            )
        record = CoordinatedRound(
            round_id=round_id, m=int(m), token=fresh_nonce(), mode=mode
        )
        # Journal the registration (token included) BEFORE any shard
        # learns of it: a crash mid-broadcast must never leave rounds
        # open on some shards under a token nobody remembers.
        register_event: dict = {
            "kind": "register",
            "round_id": round_id,
            "m": int(m),
            "token": record.token.hex(),
            "mode": mode,
        }
        if limits is not None:
            register_event["limits"] = dict(limits)
        self._journal(register_event)
        body: dict = {
            "m": int(m),
            "round_id": round_id,
            "token": record.token.hex(),
            "resume": bool(resume),
        }
        if limits is not None:
            body["limits"] = dict(limits)
        if mode == MODE_BLINDED:
            body["mode"] = MODE_BLINDED
        await self._broadcast("open-round", body)
        if mode == MODE_BLINDED:
            keeper_body = dict(body)
            keeper_body["mode"] = MODE_KEEPER
            await self._broadcast(
                "open-round", keeper_body, fleet=list(self.keepers)
            )
        record.lifecycle.transition(SERVING)
        self._journal(
            {"kind": "phase", "round_id": round_id, "phase": SERVING}
        )
        self.rounds[round_id] = record
        return record

    async def recover_shard(self, shard: ShardInfo) -> list[int]:
        """Re-register every coordinated round on a restarted shard.

        The shard resumes each round from its own ledger + spill
        (``resume=True``) under the round's *original* token, so the
        recovered slice is the same incarnation — sessions against the
        other shards never noticed anything.  Returns the round ids
        recovered.
        """
        if any(
            existing.name == shard.name for existing in self.table.shards()
        ):
            # A restarted shard keeps its name (the ring is unmoved) but
            # may bind a new port; broadcasts must dial the live address.
            self.table = RoutingTable(
                [
                    shard if existing.name == shard.name else existing
                    for existing in self.table.shards()
                ],
                epoch=self.table.epoch,
                replicas=self.table.replicas,
            )
            self._journal(self._fleet_event())
        recovered = []
        for record in sorted(self.rounds.values(), key=lambda r: r.round_id):
            body = {
                "m": record.m,
                "round_id": record.round_id,
                "token": record.token.hex(),
                "resume": True,
            }
            if record.mode == MODE_BLINDED:
                body["mode"] = MODE_BLINDED
            await self._call_shard(shard, "open-round", body)
            recovered.append(record.round_id)
        return recovered

    async def recover_keeper(self, keeper: ShardInfo) -> list[int]:
        """Re-register split-trust rounds on a restarted share keeper.

        The keeper resumes each blinded round's keeper state from its
        own ledger + spill under the original token; its blinding
        stream replays to exactly the sums it held (derivation is
        transcript-stable, see :mod:`.shares`), so the eventual combine
        is bit-identical to a crash-free run.  Returns the round ids
        recovered.
        """
        if not any(
            existing.name == keeper.name for existing in self.keepers
        ):
            raise ValidationError(
                f"{keeper.name!r} is not a configured share keeper; "
                f"keepers: {[k.name for k in self.keepers]}"
            )
        # A restarted keeper keeps its name but may bind a new port.
        self.keepers = tuple(
            keeper if existing.name == keeper.name else existing
            for existing in self.keepers
        )
        self._journal(self._keepers_event())
        recovered = []
        for record in sorted(self.rounds.values(), key=lambda r: r.round_id):
            if record.mode != MODE_BLINDED:
                continue
            await self._call_shard(
                keeper,
                "open-round",
                {
                    "m": record.m,
                    "round_id": record.round_id,
                    "token": record.token.hex(),
                    "resume": True,
                    "mode": MODE_KEEPER,
                },
            )
            recovered.append(record.round_id)
        return recovered

    async def drain(self, round_id: int) -> str:
        """Fleet-wide drain: no new sessions or records anywhere;
        batches already in flight on any shard still commit."""
        record = self._round(round_id)
        record.lifecycle.require(SERVING)
        await self._broadcast(
            "drain",
            {"round_id": record.round_id},
            fleet=self._round_fleet(record),
        )
        record.lifecycle.transition(DRAINING)
        self._journal(
            {"kind": "phase", "round_id": record.round_id, "phase": DRAINING}
        )
        return record.phase

    async def close_round(
        self, round_id: int, *, snapshot: bool = True
    ) -> str:
        """Durably close the round on every shard (drains each shard's
        commit pipeline; with *snapshot*, writes final snapshots)."""
        record = self._round(round_id)
        await self._broadcast(
            "close-round",
            {"round_id": record.round_id, "snapshot": bool(snapshot)},
            fleet=self._round_fleet(record),
        )
        if record.lifecycle.phase != CLOSED:
            record.lifecycle.transition(CLOSED)
            self._journal(
                {
                    "kind": "phase",
                    "round_id": record.round_id,
                    "phase": CLOSED,
                }
            )
        return record.phase

    async def retire(self, round_id: int) -> str:
        """Retire the closed round fleet-wide and forget it here; the
        id becomes re-registrable (a fresh token, so old proofs stay
        dead)."""
        record = self._round(round_id)
        record.lifecycle.require(CLOSED)
        await self._broadcast(
            "retire-round",
            {"round_id": record.round_id},
            fleet=self._round_fleet(record),
        )
        record.lifecycle.transition(RETIRED)
        self._journal(
            {"kind": "phase", "round_id": record.round_id, "phase": RETIRED}
        )
        del self.rounds[record.round_id]
        return record.phase

    async def status(self, round_id: int | None = None) -> dict:
        """Fleet status: per-shard stats plus the coordinator's view."""
        body = {} if round_id is None else {"round_id": int(round_id)}
        shards = self.table.shards()
        replies = await self._broadcast("status", body)
        status: dict = {
            "epoch": self.table.epoch,
            "shards": {
                shard.name: reply for shard, reply in zip(shards, replies)
            },
        }
        if self.keepers and (
            round_id is None
            or self._round(round_id).mode == MODE_BLINDED
        ):
            keeper_replies = await self._broadcast(
                "status", body, fleet=list(self.keepers)
            )
            status["keepers"] = {
                keeper.name: reply
                for keeper, reply in zip(self.keepers, keeper_replies)
            }
        if round_id is not None:
            status["round_id"] = int(round_id)
            status["phase"] = self.phase(round_id)
        else:
            status["rounds"] = {
                rid: record.phase for rid, record in sorted(self.rounds.items())
            }
        return status
