"""The coordinator: round lifecycle authority for a shard fleet.

In a scale-out deployment no shard owns a round — each hosts a *slice*
(the producers the routing table assigns to it).  Someone must own the
round itself: decide when it starts serving, when it drains, when it is
closed and safe to aggregate, and what registration token scopes its
sessions.  :class:`RoundCoordinator` is that owner:

* it holds the fleet's :class:`~.routing.RoutingTable` and pushes
  epoch-bumped tables to every shard (``route-update``);
* it **mints one registration token per round** and registers the round
  on every shard with it (``open-round``) — which is why a session
  proof minted against any shard of the round is scoped to the same
  incarnation, and why a retired round id can be re-registered without
  any old proof coming back to life;
* it drives the round's lifecycle state machine
  (:mod:`~.lifecycle`: ``open → serving → draining → closed →
  retired``) and keeps its own authoritative
  :class:`~.lifecycle.RoundLifecycle` per round, transitioning it only
  after every shard acknowledged the matching control op — so the
  coordinator's answer to "what is round 7 doing?" is never *ahead* of
  any shard;
* it is a pure control-plane *client*: all its verbs ride
  :func:`~.client.control_call` (authenticated, nonce-bound), and it
  binds no socket of its own.

The coordinator deliberately does not proxy record traffic — producers
talk straight to their shard.  Losing the coordinator mid-round loses
nothing durable: shards keep serving, and a new coordinator rebuilds
its view from ``status`` calls.

A coordinator given *keepers* also owns **split-trust rounds**
(:mod:`.shares`): ``register_round(..., mode="blinded")`` opens the
round as a blinded collector on every shard and as a keeper round on
every share keeper — all under the same registration token — and every
lifecycle verb (drain / close / retire / status) spans both fleets, so
no party can be left serving a round the others closed.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from ...exceptions import ValidationError
from .auth import fresh_nonce
from .client import control_call
from .lifecycle import CLOSED, DRAINING, RETIRED, SERVING, RoundLifecycle
from .rounds import MODE_BLINDED, MODE_COLLECT, MODE_KEEPER
from .routing import RoutingTable, ShardInfo

__all__ = ["CoordinatedRound", "RoundCoordinator"]


@dataclass
class CoordinatedRound:
    """The coordinator's authoritative record of one round."""

    round_id: int
    m: int
    token: bytes
    mode: str = MODE_COLLECT
    lifecycle: RoundLifecycle = field(init=False)

    def __post_init__(self) -> None:
        self.lifecycle = RoundLifecycle(self.round_id)

    @property
    def phase(self) -> str:
        return self.lifecycle.phase


class RoundCoordinator:
    """Owns rounds across a fleet of shard services.

    Parameters
    ----------
    shards:
        The fleet: :class:`~.routing.ShardInfo` entries (stable names,
        current addresses).
    control_key:
        The fleet's control-plane secret; every verb authenticates
        with it.
    replicas / epoch:
        Routing-table construction knobs (see
        :class:`~.routing.RoutingTable`).
    keepers:
        Share-keeper services (:class:`~.routing.ShardInfo` entries)
        for split-trust rounds.  Keepers are *not* part of the routing
        ring — every producer sends its share stream to every keeper —
        they are a second fleet the coordinator drives through the same
        control plane.
    """

    def __init__(
        self,
        shards,
        *,
        control_key,
        replicas: int | None = None,
        epoch: int = 1,
        keepers=(),
    ) -> None:
        kwargs = {} if replicas is None else {"replicas": replicas}
        self.table = RoutingTable(shards, epoch=epoch, **kwargs)
        self.control_key = control_key
        self.keepers: tuple[ShardInfo, ...] = tuple(keepers)
        names = [keeper.name for keeper in self.keepers]
        if len(set(names)) != len(names):
            raise ValidationError(
                f"share keeper names must be unique, got {names}"
            )
        self.rounds: dict[int, CoordinatedRound] = {}

    # ------------------------------------------------------------------
    # Fleet plumbing
    # ------------------------------------------------------------------
    async def _call_shard(
        self, shard: ShardInfo, op: str, body: dict
    ) -> tuple[dict, bytes]:
        return await control_call(
            shard.host, shard.port, key=self.control_key, op=op, body=body
        )

    async def _broadcast(
        self, op: str, body: dict, *, fleet=None
    ) -> list[dict]:
        """Run one op against every shard, concurrently, all-or-error.

        Any shard failure raises after all calls settle (the error
        names the shard), so a partially applied broadcast is loud —
        the caller decides whether to retry (every shard op here is
        idempotent-or-loud, never silently divergent).  *fleet*
        overrides the target set (default: the routing table's shards;
        split-trust verbs pass shards + keepers).
        """
        shards = list(self.table.shards()) if fleet is None else list(fleet)
        results = await asyncio.gather(
            *(self._call_shard(shard, op, body) for shard in shards),
            return_exceptions=True,
        )
        failures = [
            f"{shard.name}: {result}"
            for shard, result in zip(shards, results)
            if isinstance(result, BaseException)
        ]
        if failures:
            raise ValidationError(
                f"control op {op!r} failed on {len(failures)} of "
                f"{len(shards)} shards: {'; '.join(failures)}"
            )
        return [body for body, _attachment in results]

    def _round_fleet(self, record: CoordinatedRound) -> list[ShardInfo]:
        """Every service hosting *record*: shards, plus keepers for a
        split-trust round — lifecycle verbs must span both fleets."""
        fleet = list(self.table.shards())
        if record.mode == MODE_BLINDED:
            fleet.extend(self.keepers)
        return fleet

    async def push_routing(self, table: RoutingTable | None = None) -> int:
        """Install *table* (default: the current one) on every shard."""
        if table is not None:
            self.table = table
        await self._broadcast(
            "route-update", {"table": self.table.to_payload()}
        )
        return self.table.epoch

    async def rebalance(self, *, add=None, remove=None) -> RoutingTable:
        """Add and/or remove shards; push the next-epoch table.

        Consistent hashing keeps the move minimal: only producers owned
        by a removed shard, or newly claimed by an added one, change
        shards.  Producers mid-session are untouched (tables gate
        handshakes only); their next reconnect follows a MOVED
        redirect.
        """
        table = self.table
        for shard in add or ():
            table = table.with_shard(shard)
        for name in remove or ():
            table = table.without_shard(name)
        await self.push_routing(table)
        return table

    # ------------------------------------------------------------------
    # Round lifecycle verbs
    # ------------------------------------------------------------------
    def _round(self, round_id: int) -> CoordinatedRound:
        record = self.rounds.get(int(round_id))
        if record is None:
            raise ValidationError(
                f"round {round_id} is not coordinated here; rounds: "
                f"{sorted(self.rounds)}"
            )
        return record

    def phase(self, round_id: int) -> str:
        """The authoritative lifecycle phase of *round_id*."""
        return self._round(round_id).phase

    async def register_round(
        self,
        m: int,
        round_id: int,
        *,
        limits=None,
        resume: bool = False,
        mode: str = MODE_COLLECT,
    ) -> CoordinatedRound:
        """Register one round on every shard and start it serving.

        Mints the round's registration token and opens the round with
        it fleet-wide, so all shards challenge with the same token.
        The coordinator's lifecycle record passes through ``open``
        (while shards are being registered) and lands on ``serving``
        only after every shard acknowledged.

        ``mode="blinded"`` registers a **split-trust round**: every
        shard opens it as a blinded collector and every configured
        keeper opens it as a keeper round — same token, so a producer's
        proofs across all parties are scoped to one incarnation (and
        distinguished per party by the keeper labels in the transcript).
        """
        round_id = int(round_id)
        if round_id in self.rounds:
            raise ValidationError(
                f"round {round_id} is already coordinated; retire it first"
            )
        if mode not in (MODE_COLLECT, MODE_BLINDED):
            raise ValidationError(
                f"coordinated rounds are {MODE_COLLECT!r} or "
                f"{MODE_BLINDED!r} (keeper rounds are opened implicitly "
                f"on the keeper fleet), got {mode!r}"
            )
        if mode == MODE_BLINDED and not self.keepers:
            raise ValidationError(
                "a blinded round needs share keepers; construct the "
                "coordinator with keepers=[...] or register a plain "
                "collect round"
            )
        record = CoordinatedRound(
            round_id=round_id, m=int(m), token=fresh_nonce(), mode=mode
        )
        body: dict = {
            "m": int(m),
            "round_id": round_id,
            "token": record.token.hex(),
            "resume": bool(resume),
        }
        if limits is not None:
            body["limits"] = dict(limits)
        if mode == MODE_BLINDED:
            body["mode"] = MODE_BLINDED
        await self._broadcast("open-round", body)
        if mode == MODE_BLINDED:
            keeper_body = dict(body)
            keeper_body["mode"] = MODE_KEEPER
            await self._broadcast(
                "open-round", keeper_body, fleet=list(self.keepers)
            )
        record.lifecycle.transition(SERVING)
        self.rounds[round_id] = record
        return record

    async def recover_shard(self, shard: ShardInfo) -> list[int]:
        """Re-register every coordinated round on a restarted shard.

        The shard resumes each round from its own ledger + spill
        (``resume=True``) under the round's *original* token, so the
        recovered slice is the same incarnation — sessions against the
        other shards never noticed anything.  Returns the round ids
        recovered.
        """
        if any(
            existing.name == shard.name for existing in self.table.shards()
        ):
            # A restarted shard keeps its name (the ring is unmoved) but
            # may bind a new port; broadcasts must dial the live address.
            self.table = RoutingTable(
                [
                    shard if existing.name == shard.name else existing
                    for existing in self.table.shards()
                ],
                epoch=self.table.epoch,
                replicas=self.table.replicas,
            )
        recovered = []
        for record in sorted(self.rounds.values(), key=lambda r: r.round_id):
            body = {
                "m": record.m,
                "round_id": record.round_id,
                "token": record.token.hex(),
                "resume": True,
            }
            if record.mode == MODE_BLINDED:
                body["mode"] = MODE_BLINDED
            await self._call_shard(shard, "open-round", body)
            recovered.append(record.round_id)
        return recovered

    async def recover_keeper(self, keeper: ShardInfo) -> list[int]:
        """Re-register split-trust rounds on a restarted share keeper.

        The keeper resumes each blinded round's keeper state from its
        own ledger + spill under the original token; its blinding
        stream replays to exactly the sums it held (derivation is
        transcript-stable, see :mod:`.shares`), so the eventual combine
        is bit-identical to a crash-free run.  Returns the round ids
        recovered.
        """
        if not any(
            existing.name == keeper.name for existing in self.keepers
        ):
            raise ValidationError(
                f"{keeper.name!r} is not a configured share keeper; "
                f"keepers: {[k.name for k in self.keepers]}"
            )
        # A restarted keeper keeps its name but may bind a new port.
        self.keepers = tuple(
            keeper if existing.name == keeper.name else existing
            for existing in self.keepers
        )
        recovered = []
        for record in sorted(self.rounds.values(), key=lambda r: r.round_id):
            if record.mode != MODE_BLINDED:
                continue
            await self._call_shard(
                keeper,
                "open-round",
                {
                    "m": record.m,
                    "round_id": record.round_id,
                    "token": record.token.hex(),
                    "resume": True,
                    "mode": MODE_KEEPER,
                },
            )
            recovered.append(record.round_id)
        return recovered

    async def drain(self, round_id: int) -> str:
        """Fleet-wide drain: no new sessions or records anywhere;
        batches already in flight on any shard still commit."""
        record = self._round(round_id)
        record.lifecycle.require(SERVING)
        await self._broadcast(
            "drain",
            {"round_id": record.round_id},
            fleet=self._round_fleet(record),
        )
        record.lifecycle.transition(DRAINING)
        return record.phase

    async def close_round(
        self, round_id: int, *, snapshot: bool = True
    ) -> str:
        """Durably close the round on every shard (drains each shard's
        commit pipeline; with *snapshot*, writes final snapshots)."""
        record = self._round(round_id)
        await self._broadcast(
            "close-round",
            {"round_id": record.round_id, "snapshot": bool(snapshot)},
            fleet=self._round_fleet(record),
        )
        if record.lifecycle.phase != CLOSED:
            record.lifecycle.transition(CLOSED)
        return record.phase

    async def retire(self, round_id: int) -> str:
        """Retire the closed round fleet-wide and forget it here; the
        id becomes re-registrable (a fresh token, so old proofs stay
        dead)."""
        record = self._round(round_id)
        record.lifecycle.require(CLOSED)
        await self._broadcast(
            "retire-round",
            {"round_id": record.round_id},
            fleet=self._round_fleet(record),
        )
        record.lifecycle.transition(RETIRED)
        del self.rounds[record.round_id]
        return record.phase

    async def status(self, round_id: int | None = None) -> dict:
        """Fleet status: per-shard stats plus the coordinator's view."""
        body = {} if round_id is None else {"round_id": int(round_id)}
        shards = self.table.shards()
        replies = await self._broadcast("status", body)
        status: dict = {
            "epoch": self.table.epoch,
            "shards": {
                shard.name: reply for shard, reply in zip(shards, replies)
            },
        }
        if self.keepers and (
            round_id is None
            or self._round(round_id).mode == MODE_BLINDED
        ):
            keeper_replies = await self._broadcast(
                "status", body, fleet=list(self.keepers)
            )
            status["keepers"] = {
                keeper.name: reply
                for keeper, reply in zip(self.keepers, keeper_replies)
            }
        if round_id is not None:
            status["round_id"] = int(round_id)
            status["phase"] = self.phase(round_id)
        else:
            status["rounds"] = {
                rid: record.phase for rid, record in sorted(self.rounds.items())
            }
        return status
