"""Process topology for the scale-out collection tier.

:class:`ShardProcess` runs one :class:`~.server.CollectionService` in a
child OS process — its own event loop, its own store root, its own
spill/ledger fsyncs — and :class:`ShardFleet` runs K of them as one
deployment: start them all, collect their bound ports, build the
:class:`~.routing.RoutingTable`, and push it to every shard over the
control plane.

Crash semantics are the point of the exercise:

* :meth:`ShardProcess.kill` is ``SIGKILL`` — no drain, no snapshot, no
  goodbye.  Whatever the shard acked is on disk (that is the service's
  per-ack durability contract), and nothing else is;
* :meth:`ShardFleet.restart` brings a shard back **under the same
  name** on its old store root with ``resume=True`` — the ledger
  replays, the spill truncates to the committed offset, and because
  ring points hash the shard *name* (never the address), the re-bound
  port moves zero producers.  The fleet pushes a next-epoch table so
  clients holding the dead address get redirected;
* producers blind-resend on reconnect, the idempotency ledger eats the
  duplicates, and the aggregated round is bit-identical to a run with
  no crash at all — the integration suite pins exactly this.

Children are forked (the start method this platform's tests rely on),
with a module-level entry point so the configuration crossing the
process boundary is an explicit, picklable dict — nothing closes over
live service objects.
"""

from __future__ import annotations

import multiprocessing
import os
import signal

from ...exceptions import ServiceError, ValidationError
from .quotas import ServiceLimits
from .routing import RoutingTable, ShardInfo

__all__ = ["ShardProcess", "ShardFleet", "shard_store_root"]

_START_TIMEOUT_SECONDS = 30.0


def shard_store_root(fleet_root: str, shard_name: str) -> str:
    """Where one shard's durable state lives under the fleet root."""
    return os.path.join(fleet_root, shard_name)


def _shard_child_main(config: dict, ready) -> None:
    """Child-process entry: serve one shard until SIGTERM.

    Runs in a fresh interpreter state (post-fork); builds the service
    from the picklable *config*, reports the bound address through the
    *ready* queue, then serves until a SIGTERM asks for a graceful
    close (drain commit pipelines, write snapshots).  SIGKILL is the
    crash path — by design nothing here runs for it.
    """
    import asyncio

    from .server import CollectionService

    async def main() -> None:
        try:
            service = CollectionService(
                rounds=config["rounds"],
                key=config.get("key"),
                keys=config.get("keys"),
                store_root=config["store_root"],
                limits=config.get("limits") or ServiceLimits(),
                resume=bool(config.get("resume", False)),
                control_key=config.get("control_key"),
                shard_name=config["shard_name"],
            )
            host, port = await service.serve(
                config.get("host", "127.0.0.1"), int(config.get("port", 0))
            )
            coordinator = config.get("coordinator")
            if coordinator is not None:
                # Auto-discovery: announce this shard to the
                # coordinator's endpoint.  join-fleet covers both the
                # cold join (triggers a live rebalance onto us) and the
                # restart (re-address + round resume); either way the
                # shard serves nothing it should not until the
                # coordinator pushes a table that says otherwise.
                from .client import control_call

                await control_call(
                    coordinator[0],
                    int(coordinator[1]),
                    key=config.get("control_key"),
                    op="join-fleet",
                    body={
                        "name": config["shard_name"],
                        "host": host,
                        "port": port,
                    },
                )
        except BaseException as exc:  # the parent needs the reason
            ready.put({"error": f"{type(exc).__name__}: {exc}"})
            raise
        ready.put({"shard": config["shard_name"], "host": host, "port": port})

        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        loop.add_signal_handler(signal.SIGTERM, stop.set)
        await stop.wait()
        await service.close()

    asyncio.run(main())


class ShardProcess:
    """One shard service in its own OS process."""

    def __init__(
        self,
        name: str,
        *,
        store_root: str,
        rounds,
        key=None,
        keys=None,
        control_key=None,
        limits: ServiceLimits | None = None,
        host: str = "127.0.0.1",
        resume: bool = False,
        coordinator: tuple[str, int] | None = None,
    ) -> None:
        self.name = name
        self.config = {
            "shard_name": name,
            "store_root": store_root,
            "rounds": list(rounds),
            "key": key,
            "keys": keys,
            "control_key": control_key,
            "limits": limits,
            "host": host,
            "resume": resume,
            "coordinator": coordinator,
        }
        self.info: ShardInfo | None = None
        self._process: multiprocessing.Process | None = None
        self._ctx = multiprocessing.get_context("fork")

    def start(self) -> ShardInfo:
        """Fork the shard and block until it reports its bound address."""
        if self._process is not None and self._process.is_alive():
            raise ValidationError(f"shard {self.name} is already running")
        ready = self._ctx.Queue()
        self._process = self._ctx.Process(
            target=_shard_child_main,
            args=(self.config, ready),
            daemon=True,
            name=f"shard-{self.name}",
        )
        self._process.start()
        try:
            report = ready.get(timeout=_START_TIMEOUT_SECONDS)
        except Exception as exc:
            self.kill()
            raise ServiceError(
                f"shard {self.name} did not report a bound address: {exc}"
            ) from exc
        if "error" in report:
            self._process.join(timeout=5.0)
            raise ServiceError(
                f"shard {self.name} failed to start: {report['error']}"
            )
        self.info = ShardInfo(
            name=self.name, host=report["host"], port=int(report["port"])
        )
        return self.info

    @property
    def is_alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    @property
    def pid(self) -> int | None:
        return self._process.pid if self._process is not None else None

    def kill(self) -> None:
        """SIGKILL — the crash path.  Nothing is drained or snapshot."""
        if self._process is not None:
            self._process.kill()
            self._process.join(timeout=10.0)

    def terminate(self, timeout: float = 30.0) -> None:
        """SIGTERM — graceful close (drain, snapshot) then exit."""
        if self._process is None:
            return
        if self._process.is_alive():
            self._process.terminate()
        self._process.join(timeout=timeout)
        if self._process.is_alive():  # wedged child; don't hang the parent
            self._process.kill()
            self._process.join(timeout=10.0)


class ShardFleet:
    """K shard processes plus the routing table that spans them.

    The fleet is the deployment unit the coordinator and aggregator
    drive.  Construction is cheap; :meth:`start` forks the shards,
    learns their ports, builds the table, and (when a control key is
    configured) pushes it fleet-wide so every shard enforces the same
    epoch from its first handshake.
    """

    def __init__(
        self,
        shard_names,
        *,
        fleet_root: str,
        rounds,
        key=None,
        keys=None,
        control_key=None,
        limits: ServiceLimits | None = None,
        host: str = "127.0.0.1",
    ) -> None:
        names = list(shard_names)
        if len(names) < 1:
            raise ValidationError("a fleet needs at least one shard")
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate shard names: {sorted(names)}")
        self.fleet_root = fleet_root
        self.control_key = control_key
        self._spec = {
            "rounds": list(rounds),
            "key": key,
            "keys": keys,
            "control_key": control_key,
            "limits": limits,
            "host": host,
        }
        self.shards: dict[str, ShardProcess] = {
            name: ShardProcess(
                name,
                store_root=shard_store_root(fleet_root, name),
                **self._spec,
            )
            for name in names
        }
        self.table: RoutingTable | None = None
        self._epoch = 0

    # ------------------------------------------------------------------
    async def start(self) -> RoutingTable:
        """Start every shard, build the table, push it fleet-wide."""
        infos = [shard.start() for shard in self.shards.values()]
        self._epoch += 1
        self.table = RoutingTable(infos, epoch=self._epoch)
        await self._push_table()
        return self.table

    async def _push_table(self) -> None:
        if self.control_key is None:
            return
        from .client import control_call

        for info in self.table.shards():
            await control_call(
                info.host,
                info.port,
                key=self.control_key,
                op="route-update",
                body={"table": self.table.to_payload()},
            )

    def kill(self, name: str) -> None:
        """Crash one shard (SIGKILL).  The table is left as-is: clients
        see dead-connection errors or, after :meth:`restart`, MOVED-free
        resumption at the shard's new port."""
        self._shard(name).kill()

    async def restart(self, name: str, *, resume: bool = True) -> ShardInfo:
        """Bring a crashed shard back on its old store root.

        ``resume=True`` replays its ledger and truncates its spill to
        the committed offset — every acked record survives, nothing
        unacked does.  The shard keeps its name (so the ring does not
        move) but may bind a new port; the next-epoch table is pushed
        to the whole fleet.
        """
        old = self._shard(name)
        if old.is_alive:
            raise ValidationError(f"shard {name} is still alive; kill it first")
        fresh = ShardProcess(
            name,
            store_root=shard_store_root(self.fleet_root, name),
            resume=resume,
            **self._spec,
        )
        info = fresh.start()
        self.shards[name] = fresh
        if self.table is not None:
            self._epoch += 1
            self.table = RoutingTable(
                [
                    info if existing.name == name else existing
                    for existing in self.table.shards()
                ],
                epoch=self._epoch,
            )
            await self._push_table()
        return info

    async def add_shard(
        self, name: str, *, coordinator: tuple[str, int] | None = None
    ) -> ShardInfo:
        """Fork one more shard on a fresh store root and return its
        address — WITHOUT touching the routing table.

        Growing the ring is the coordinator's job
        (:meth:`~.coordinator.RoundCoordinator.join_shard` opens the
        live rounds on the newcomer and runs the record migration);
        this just provides the process.  With *coordinator* set the
        child announces itself over ``join-fleet`` and no parent-side
        wiring is needed at all.
        """
        if name in self.shards:
            raise ValidationError(
                f"shard {name!r} already exists; use restart() to "
                "re-fork it"
            )
        fresh = ShardProcess(
            name,
            store_root=shard_store_root(self.fleet_root, name),
            coordinator=coordinator,
            **self._spec,
        )
        # start() blocks on the child's ready report, and with
        # *coordinator* set the child first dials the coordinator
        # endpoint — which may be served by THIS event loop.  Run the
        # wait off-loop so the announcement can be answered.
        import asyncio

        info = await asyncio.to_thread(fresh.start)
        self.shards[name] = fresh
        return info

    def stop(self) -> None:
        """Gracefully terminate every live shard (drain + snapshot)."""
        for shard in self.shards.values():
            shard.terminate()

    # ------------------------------------------------------------------
    def _shard(self, name: str) -> ShardProcess:
        shard = self.shards.get(name)
        if shard is None:
            raise ValidationError(
                f"no shard {name!r}; shards: {sorted(self.shards)}"
            )
        return shard

    def infos(self) -> list[ShardInfo]:
        """Every shard's current address, name-ordered."""
        infos = []
        for name in sorted(self.shards):
            info = self.shards[name].info
            if info is None:
                raise ValidationError(f"shard {name} was never started")
            infos.append(info)
        return infos

    def __len__(self) -> int:
        return len(self.shards)
