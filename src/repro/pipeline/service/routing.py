"""Producer → shard routing for the scale-out collection tier.

One logical round spans K independent shard services, each with its own
spill namespace, ledger, and commit pipeline.  What makes that safe is
that any one producer's records all land on *one* shard — the
idempotency ledger keys on ``(producer_id, seq)``, so exactly-once
holds as long as a producer never splits its sequence space across
shards.  :class:`RoutingTable` is that assignment:

* **consistent hashing** over a ring of virtual points per shard
  (:data:`DEFAULT_REPLICAS` each), keyed by the shard's stable *name* —
  never its list position — so adding or removing a shard moves only
  the producers that must move (the hypothesis suite pins this:
  adding shard X changes ownership only *to* X, removing X changes
  ownership only *for* X's producers);
* an **epoch** that increases on every rebalance, so a shard can tell
  a producer holding a stale table *which* table to refetch, and two
  tables can be ordered without comparing their contents;
* a wire-portable payload (:meth:`to_payload` / :meth:`from_payload`)
  shipped in coordinator control frames.

Shards enforce the table at handshake time: a producer that connects to
the wrong shard is refused with a ``MOVED`` detail naming the owning
shard's address and the table epoch (:func:`format_moved` /
:func:`parse_moved`), Redis-cluster style, and the routing-aware client
reconnects there.
"""

from __future__ import annotations

import bisect
import hashlib
import re
from dataclasses import dataclass

from ...exceptions import ValidationError

__all__ = [
    "DEFAULT_REPLICAS",
    "ShardInfo",
    "RoutingTable",
    "format_moved",
    "parse_moved",
]

DEFAULT_REPLICAS = 64


@dataclass(frozen=True)
class ShardInfo:
    """One shard service's stable identity and address.

    ``name`` is the routing identity — it must survive restarts and
    address changes, because ring points hash the name.  Moving a shard
    to a new host/port (same name) moves zero producers.
    """

    name: str
    host: str
    port: int

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValidationError("shard name must be a non-empty string")
        if "=" in self.name or any(c.isspace() for c in self.name):
            raise ValidationError(
                f"shard name {self.name!r} may not contain '=' or whitespace"
            )
        if not self.host:
            raise ValidationError("shard host must be non-empty")
        if not 0 <= int(self.port) <= 65535:
            raise ValidationError(f"shard port {self.port} is out of range")

    @property
    def address(self) -> str:
        """``host:port``, bracketing IPv6 hosts (``[::1]:9000``).

        The bracketed form keeps the MOVED grammar parseable: a bare
        IPv6 host is full of colons, so ``host:port`` would be ambiguous.
        """
        if ":" in self.host:
            return f"[{self.host}]:{self.port}"
        return f"{self.host}:{self.port}"


def _ring_point(label: bytes) -> int:
    """A point on the 2^64 ring from a stable hash of *label*."""
    return int.from_bytes(
        hashlib.sha256(label).digest()[:8], "big", signed=False
    )


class RoutingTable:
    """Consistent-hash assignment of producers to named shards."""

    def __init__(
        self,
        shards,
        *,
        epoch: int = 1,
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        shards = list(shards)
        if not shards:
            raise ValidationError("a routing table needs at least one shard")
        names = [shard.name for shard in shards]
        if len(set(names)) != len(names):
            raise ValidationError(
                f"duplicate shard names in routing table: {sorted(names)}"
            )
        if int(epoch) <= 0:
            raise ValidationError(f"table epoch must be positive, got {epoch}")
        if int(replicas) <= 0:
            raise ValidationError(
                f"replicas per shard must be positive, got {replicas}"
            )
        self.epoch = int(epoch)
        self.replicas = int(replicas)
        self._shards = {shard.name: shard for shard in shards}
        # The ring: sorted virtual points, each owned by one shard name.
        points: list[tuple[int, str]] = []
        for shard in shards:
            for replica in range(self.replicas):
                label = f"{shard.name}\x00{replica}".encode("utf-8")
                points.append((_ring_point(label), shard.name))
        points.sort()
        self._points = [point for point, _name in points]
        self._owners = [name for _point, name in points]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def owner(self, producer_id: str) -> ShardInfo:
        """The shard that owns *producer_id*'s records."""
        if not producer_id:
            raise ValidationError("producer_id must be a non-empty string")
        point = _ring_point(producer_id.encode("utf-8"))
        index = bisect.bisect_right(self._points, point) % len(self._points)
        return self._shards[self._owners[index]]

    def shard(self, name: str) -> ShardInfo:
        info = self._shards.get(name)
        if info is None:
            raise ValidationError(
                f"no shard {name!r} in routing table; shards: "
                f"{sorted(self._shards)}"
            )
        return info

    def shards(self) -> list[ShardInfo]:
        """All shards, ordered by name."""
        return [self._shards[name] for name in sorted(self._shards)]

    def names(self) -> list[str]:
        return sorted(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, name: str) -> bool:
        return name in self._shards

    # ------------------------------------------------------------------
    # Rebalancing (new table, next epoch; tables are immutable)
    # ------------------------------------------------------------------
    def with_shard(self, shard: ShardInfo) -> "RoutingTable":
        """A next-epoch table with *shard* added (or re-addressed)."""
        shards = {**self._shards, shard.name: shard}
        return RoutingTable(
            shards.values(), epoch=self.epoch + 1, replicas=self.replicas
        )

    def without_shard(self, name: str) -> "RoutingTable":
        """A next-epoch table with shard *name* removed."""
        if name not in self._shards:
            raise ValidationError(
                f"no shard {name!r} to remove; shards: {sorted(self._shards)}"
            )
        remaining = [
            shard for shard in self._shards.values() if shard.name != name
        ]
        return RoutingTable(
            remaining, epoch=self.epoch + 1, replicas=self.replicas
        )

    # ------------------------------------------------------------------
    # Wire portability (control-frame JSON payload)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        return {
            "epoch": self.epoch,
            "replicas": self.replicas,
            "shards": [
                {"name": s.name, "host": s.host, "port": s.port}
                for s in self.shards()
            ],
        }

    @classmethod
    def from_payload(cls, payload) -> "RoutingTable":
        if not isinstance(payload, dict):
            raise ValidationError(
                f"routing table payload must be a dict, got "
                f"{type(payload).__name__}"
            )
        try:
            shards = [
                ShardInfo(
                    name=str(entry["name"]),
                    host=str(entry["host"]),
                    port=int(entry["port"]),
                )
                for entry in payload["shards"]
            ]
            return cls(
                shards,
                epoch=int(payload["epoch"]),
                replicas=int(payload.get("replicas", DEFAULT_REPLICAS)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(
                f"malformed routing table payload: {exc}"
            ) from exc


# ----------------------------------------------------------------------
# MOVED redirects
# ----------------------------------------------------------------------
# Hosts with colons (IPv6) travel bracketed — ``addr=[::1]:9000`` —
# because an unbracketed ``host:port`` split is ambiguous when the host
# itself contains colons.  The legacy unbracketed form is still parsed
# for plain (colon-free) hosts so old shards keep redirecting clients.
_MOVED_RE = re.compile(
    r"^MOVED epoch=(\d+) shard=(\S+) "
    r"addr=(?:\[([^\s\]]+)\]|([^\s:\[\]]+)):(\d+)$"
)


def format_moved(epoch: int, shard: ShardInfo) -> str:
    """The refusal detail a shard sends a mis-routed producer."""
    return f"MOVED epoch={int(epoch)} shard={shard.name} addr={shard.address}"


def parse_moved(detail: str) -> tuple[int, str, str, int] | None:
    """``(epoch, shard_name, host, port)`` from a MOVED detail, or None.

    Tolerant by design: any non-matching detail returns ``None`` so the
    client treats it as an ordinary refusal — a hostile or buggy server
    cannot crash a producer with a malformed redirect.
    """
    match = _MOVED_RE.match(detail or "")
    if match is None:
        return None
    epoch, name, bracketed, bare, port = match.groups()
    return int(epoch), name, bracketed if bracketed is not None else bare, int(port)
