"""Split-trust aggregation: additive blinding across a share-keeper tier.

The collection tier through PR 6 is durable and scaled out, but every
collector still *sees* what it aggregates: a single compromised shard
leaks each producer's packed report beyond the LDP guarantee.  This
module removes that single point of trust with a PrivCount-style
additive secret-sharing tally over the existing machinery:

* The producer popcounts each packed chunk into a length-``m`` count
  vector and **blinds it word-wise mod 2^64**: for every share keeper
  ``j`` it derives a secret ``K_pj`` (HMAC over the stable round
  transcript, :func:`~.auth.derive_share_secret`, keyed by the
  producer's key at *keeper j's own registry* — a key the collector
  never holds) and adds the keeper's per-seq blinding words.  The
  collector receives only ``counts + sum_j R_j``; keeper ``j`` receives
  only ``R_j``.
* Each party accumulates its stream in a :class:`BlindedAccumulator`
  mod 2^64 — plain uint64 addition, so the whole exactly-once stack
  (sessions, idempotency ledger, group commit, spill recovery) carries
  share frames unchanged.
* The tally decodes **only** when all N keeper states combine with the
  blinded collector state (:func:`combine_accumulators`, backed by
  :func:`repro.estimation.merge.combine_shares`): the blinding cancels
  exactly and the result is bit-identical to a direct unblinded tally.
  Any single party's complete state — spill, ledger, accumulator —
  is a sum of uniformly random words, indistinguishable from noise.

Blinding words are derived from *stable* transcript fields only
(``m``, ``round_id``, ``producer_id``, ``keeper_id``, ``seq``) — never
session nonces or round tokens — so a blind resend is byte-identical
(the ledger's equivocation check keeps working) and a keeper restart
replays to exactly the same state.

The *membership digest* (:func:`member_stamp`) is the loudness
mechanism: every party folds a per-record stamp
``sha256(producer_id, seq)`` into four mod-2^64 lanes.  Equal digests
across all parties certify they committed exactly the same record set;
a keeper that lost a record (or is missing entirely) fails the combine
with a clear error instead of decoding uniform garbage as counts.
"""

from __future__ import annotations

import asyncio
import hashlib
import hmac
import struct

import numpy as np

from ...exceptions import ValidationError
from ...kernels import get_compute_backend, packed_width
from ..accumulator import CountAccumulator
from ..collect import wire
from .auth import derive_share_secret, keeper_party_label
from .client import send_records

__all__ = [
    "ROLE_BLINDED",
    "ROLE_KEEPER",
    "BlindedAccumulator",
    "blinding_words",
    "chunk_count_words",
    "blind_report_chunk",
    "member_stamp",
    "empty_member_digest",
    "add_member",
    "encode_member_digest",
    "decode_member_digest",
    "combine_accumulators",
    "send_split_trust",
]

ROLE_BLINDED = "blinded"
ROLE_KEEPER = "keeper"
_ROLES = (ROLE_BLINDED, ROLE_KEEPER)

_SEQ_LABEL = b"IDLP-share-seq"
_MEMBER_LABEL = b"IDLP-member-v5"
MEMBER_DIGEST_LANES = 4


# ----------------------------------------------------------------------
# Blinding streams
# ----------------------------------------------------------------------
def blinding_words(secret: bytes, seq: int, m: int) -> np.ndarray:
    """The length-``m`` uint64 blinding vector for one ``(secret, seq)``.

    Deterministic: producer and auditor derive identical words from the
    same share secret, which is what makes blind resends byte-identical
    and the combine exact.  The per-seq seed is
    ``HMAC(secret, "IDLP-share-seq" || LE64(seq))`` fed through numpy's
    ``SeedSequence``/PCG64, yielding full-range uniform uint64 words —
    each word individually a perfect one-time pad mod 2^64.
    """
    secret = bytes(secret)
    if not secret:
        raise ValidationError("share secret must be non-empty bytes")
    seq = int(seq)
    if seq < 0:
        raise ValidationError(f"seq must be non-negative, got {seq}")
    m = int(m)
    if m <= 0:
        raise ValidationError(f"m must be positive, got {m}")
    seed_bytes = hmac.new(
        secret, _SEQ_LABEL + struct.pack("<Q", seq), hashlib.sha256
    ).digest()
    seed = int.from_bytes(seed_bytes, "little")
    rng = np.random.Generator(np.random.PCG64(np.random.SeedSequence(seed)))
    return rng.integers(0, 1 << 64, size=m, dtype=np.uint64)


def chunk_count_words(rows, m: int, *, compute: str = "numpy") -> np.ndarray:
    """Popcount a packed chunk into uint64 per-bit count words.

    The same vertical-counting kernel the plain accumulator uses
    (:meth:`~repro.pipeline.accumulator.CountAccumulator.
    add_packed_reports`), with the same shape/dtype/pad-bit validation,
    but returning the counts as uint64 words ready for mod-2^64
    blinding.
    """
    m = int(m)
    if m <= 0:
        raise ValidationError(f"m must be positive, got {m}")
    matrix = np.asarray(rows)
    width = packed_width(m)
    if matrix.ndim != 2 or matrix.shape[1] != width:
        raise ValidationError(
            f"packed reports must have shape (k, {width}), got {matrix.shape}"
        )
    if matrix.dtype != np.uint8:
        raise ValidationError(
            f"packed reports must be uint8, got dtype {matrix.dtype}"
        )
    pad_bits = 8 * width - m
    if pad_bits and matrix.size and np.any(matrix[:, -1] & ((1 << pad_bits) - 1)):
        raise ValidationError(
            f"packed reports have set bits beyond m={m}; producer and "
            "round widths disagree"
        )
    backend = get_compute_backend(compute)
    return backend.packed_column_counts(matrix, m).astype(np.uint64)


def blind_report_chunk(
    rows,
    *,
    m: int,
    round_id: int,
    seq: int,
    secrets: dict,
    compute: str = "numpy",
) -> tuple:
    """Split one packed chunk into a blinded frame plus keeper shares.

    Parameters
    ----------
    rows:
        ``k x ceil(m/8)`` uint8 packed report chunk (never transmitted;
        only its blinded popcount leaves the producer).
    secrets:
        ``keeper_id -> share secret`` (:func:`~.auth.derive_share_secret`
        output), one entry per share keeper.  Must be non-empty — a
        zero-keeper "split" would ship the plain counts.

    Returns
    -------
    ``(blinded, shares)`` where *blinded* is the
    :class:`~repro.pipeline.collect.wire.BlindedCounts` destined for the
    collector and *shares* maps ``keeper_id`` to that keeper's
    :class:`~repro.pipeline.collect.wire.BlindingShare`.  Word-wise mod
    2^64: ``blinded.words - sum(shares[j].words) == popcounts`` exactly.
    """
    if not isinstance(secrets, dict) or not secrets:
        raise ValidationError(
            "secrets must map at least one keeper_id to a share secret; "
            "blinding with zero keepers would ship the plain counts"
        )
    counts = chunk_count_words(rows, m, compute=compute)
    n = int(np.asarray(rows).shape[0])
    blinded_words = counts.copy()
    shares: dict[str, wire.BlindingShare] = {}
    with np.errstate(over="ignore"):
        for keeper_id in sorted(secrets):
            words = blinding_words(secrets[keeper_id], seq, m)
            blinded_words += words
            shares[keeper_id] = wire.BlindingShare(
                m=int(m), round_id=int(round_id), n=n, words=words
            )
    blinded = wire.BlindedCounts(
        m=int(m), round_id=int(round_id), n=n, words=blinded_words
    )
    return blinded, shares


# ----------------------------------------------------------------------
# Membership digest
# ----------------------------------------------------------------------
def member_stamp(producer_id: str, seq: int) -> np.ndarray:
    """Four uint64 lanes stamping one committed ``(producer, seq)``.

    Folding these into a mod-2^64 lane sum gives an order-independent
    digest of a party's committed record *set*; equal sums across the
    collector and every keeper certify the streams cover identical
    records, which is the precondition for the blinding to cancel.
    """
    pid = str(producer_id).encode("utf-8")
    if not pid:
        raise ValidationError("producer_id must be non-empty")
    if len(pid) > 0xFFFF:
        raise ValidationError("producer_id exceeds 65535 UTF-8 bytes")
    digest = hashlib.sha256(
        _MEMBER_LABEL + struct.pack("<H", len(pid)) + pid
        + struct.pack("<Q", int(seq))
    ).digest()
    return np.frombuffer(digest, dtype="<u8").astype(np.uint64)


def empty_member_digest() -> np.ndarray:
    """The digest of the empty record set."""
    return np.zeros(MEMBER_DIGEST_LANES, dtype=np.uint64)


def add_member(digest: np.ndarray, producer_id: str, seq: int) -> np.ndarray:
    """Fold one committed record's stamp into *digest* in place."""
    with np.errstate(over="ignore"):
        digest += member_stamp(producer_id, seq)
    return digest


def encode_member_digest(digest) -> str:
    """Hex form for control-plane bodies (covered by the reply MAC)."""
    digest = np.asarray(digest)
    if digest.shape != (MEMBER_DIGEST_LANES,) or digest.dtype != np.uint64:
        raise ValidationError(
            f"member digest must be {MEMBER_DIGEST_LANES} uint64 lanes, "
            f"got shape {digest.shape} dtype {digest.dtype}"
        )
    return np.ascontiguousarray(digest, dtype="<u8").tobytes().hex()


def decode_member_digest(text: str) -> np.ndarray:
    """Inverse of :func:`encode_member_digest` (loud on malformed input)."""
    try:
        raw = bytes.fromhex(str(text))
    except ValueError as exc:
        raise ValidationError(f"member digest is not hex: {text!r}") from exc
    if len(raw) != 8 * MEMBER_DIGEST_LANES:
        raise ValidationError(
            f"member digest must be {8 * MEMBER_DIGEST_LANES} bytes, "
            f"got {len(raw)}"
        )
    return np.frombuffer(raw, dtype="<u8").astype(np.uint64)


# ----------------------------------------------------------------------
# Per-party accumulated state
# ----------------------------------------------------------------------
class BlindedAccumulator:
    """One party's mod-2^64 word sums: blinded collector or share keeper.

    The split-trust sibling of
    :class:`~repro.pipeline.accumulator.CountAccumulator`: same exact
    mergeable-counter discipline, but over uint64 words that wrap mod
    2^64 by construction (numpy's native uint64 arithmetic *is* the
    ring).  The ``role`` pins which frame kind the party may absorb —
    a keeper fed a blinded frame (or vice versa) is a topology bug and
    refuses loudly rather than silently poisoning the combine.
    """

    def __init__(
        self, m: int, *, round_id: int = 0, role: str = ROLE_BLINDED
    ) -> None:
        self.m = int(m)
        if self.m <= 0:
            raise ValidationError(f"m must be positive, got {m}")
        self.round_id = int(round_id)
        if role not in _ROLES:
            raise ValidationError(
                f"role must be one of {_ROLES}, got {role!r}"
            )
        self.role = role
        self._words = np.zeros(self.m, dtype=np.uint64)
        self._n = 0

    @property
    def n(self) -> int:
        """Total report rows the absorbed frames cover."""
        return self._n

    def words(self) -> np.ndarray:
        """Copy of the accumulated uint64 word sums."""
        return self._words.copy()

    def _expected_kind(self):
        return wire.BlindedCounts if self.role == ROLE_BLINDED else (
            wire.BlindingShare
        )

    def absorb_frame(self, obj) -> None:
        """Absorb one share frame of this party's role (loud otherwise)."""
        expected = self._expected_kind()
        if not isinstance(obj, expected):
            raise ValidationError(
                f"a {self.role} accumulator absorbs {expected.__name__} "
                f"frames, got {type(obj).__name__}"
            )
        if obj.m != self.m or obj.round_id != self.round_id:
            raise ValidationError(
                f"frame is for (m={obj.m}, round={obj.round_id}); this "
                f"accumulator holds (m={self.m}, round={self.round_id})"
            )
        with np.errstate(over="ignore"):
            self._words += np.asarray(obj.words, dtype=np.uint64)
        self._n += int(obj.n)

    def merge(self, other: "BlindedAccumulator") -> "BlindedAccumulator":
        """Absorb another shard's same-role state (exact mod 2^64)."""
        if not isinstance(other, BlindedAccumulator):
            raise ValidationError(
                f"can only merge BlindedAccumulator, got "
                f"{type(other).__name__}"
            )
        if other.role != self.role:
            raise ValidationError(
                f"cannot merge {other.role} state into {self.role} state"
            )
        if other.m != self.m or other.round_id != self.round_id:
            raise ValidationError(
                f"cannot merge (m={other.m}, round={other.round_id}) into "
                f"(m={self.m}, round={self.round_id})"
            )
        with np.errstate(over="ignore"):
            self._words += other._words
        self._n += other._n
        return self

    def digest(self) -> str:
        """SHA-256 hex digest of the canonical ``(role, m, round, n,
        words)`` state, the transfer-integrity check the aggregator
        compares against the control reply."""
        state = hashlib.sha256()
        state.update(self.role.encode("ascii") + b"\x00")
        state.update(struct.pack("<QqQ", self.m, self.round_id, self._n))
        state.update(np.ascontiguousarray(self._words, dtype="<u8").tobytes())
        return state.hexdigest()

    def state_frame(self):
        """This party's whole accumulated state as one share frame.

        The same v5 frames double as state transfer: ``n`` is the total
        rows covered, the payload the accumulated word sums.  Used for
        snapshots and pull-state replies.
        """
        cls = self._expected_kind()
        return cls(
            m=self.m,
            round_id=self.round_id,
            n=self._n,
            words=self._words.copy(),
        )

    @classmethod
    def from_frame(cls, obj) -> "BlindedAccumulator":
        """Rebuild a party's state from its state-transfer frame."""
        if isinstance(obj, wire.BlindedCounts):
            role = ROLE_BLINDED
        elif isinstance(obj, wire.BlindingShare):
            role = ROLE_KEEPER
        else:
            raise ValidationError(
                "state frame must be BlindedCounts or BlindingShare, got "
                f"{type(obj).__name__}"
            )
        acc = cls(obj.m, round_id=obj.round_id, role=role)
        acc.absorb_frame(obj)
        return acc

    def __repr__(self) -> str:
        return (
            f"BlindedAccumulator(role={self.role!r}, m={self.m}, "
            f"n={self._n}, round_id={self.round_id})"
        )


# ----------------------------------------------------------------------
# Combine (decode)
# ----------------------------------------------------------------------
def combine_accumulators(blinded, keepers) -> CountAccumulator:
    """Decode the tally: blinded collector state minus every keeper.

    The only code path that ever produces plain counts in a split-trust
    round.  Refuses loudly when the parties disagree about geometry or
    coverage (``n``), and — via
    :func:`repro.estimation.merge.combine_shares` — when the residual
    words are not a valid count vector (the signature of a missing or
    corrupt keeper stream).
    """
    from ...estimation.merge import combine_shares

    if not isinstance(blinded, BlindedAccumulator) or (
        blinded.role != ROLE_BLINDED
    ):
        raise ValidationError(
            f"blinded must be a role-{ROLE_BLINDED!r} BlindedAccumulator, "
            f"got {blinded!r}"
        )
    keepers = list(keepers)
    for keeper in keepers:
        if not isinstance(keeper, BlindedAccumulator) or (
            keeper.role != ROLE_KEEPER
        ):
            raise ValidationError(
                f"every keeper must be a role-{ROLE_KEEPER!r} "
                f"BlindedAccumulator, got {keeper!r}"
            )
        if keeper.m != blinded.m or keeper.round_id != blinded.round_id:
            raise ValidationError(
                f"keeper state is for (m={keeper.m}, round="
                f"{keeper.round_id}); the blinded state holds "
                f"(m={blinded.m}, round={blinded.round_id})"
            )
        if keeper.n != blinded.n:
            raise ValidationError(
                f"keeper covers {keeper.n} rows but the blinded collector "
                f"covers {blinded.n}; the share streams are incomplete — "
                "refusing to decode"
            )
    counts = combine_shares(
        blinded.words(), [keeper.words() for keeper in keepers], n=blinded.n
    )
    return CountAccumulator.from_state(
        blinded.m, counts, blinded.n, round_id=blinded.round_id
    )


# ----------------------------------------------------------------------
# Producer orchestration
# ----------------------------------------------------------------------
async def send_split_trust(
    collector: tuple,
    keepers: dict,
    chunks,
    *,
    collector_key,
    keeper_keys: dict,
    producer_id: str,
    m: int,
    round_id: int = 0,
    start_seq: int = 0,
    compute: str = "numpy",
    max_inflight: int = 64,
) -> dict:
    """Blind *chunks* and ship each stream to its party, exactly-once.

    Parameters
    ----------
    collector:
        ``(host, port)`` of the blinded collector (or its routed shard).
    keepers:
        ``keeper_id -> (host, port)`` of every share keeper.  Must be
        non-empty.
    chunks:
        Iterable of packed uint8 report chunks; chunk ``i`` becomes
        record ``start_seq + i`` *on every party*, so the per-party
        idempotency ledgers line up and a blind resend of the whole
        call is free everywhere.
    collector_key / keeper_keys:
        The producer's key at the collector's registry, and its key at
        each keeper's own registry (``keeper_id -> key``).  Blinding
        secrets derive from the *keeper* keys only — the collector's key
        authenticates but can never unblind.

    Returns
    -------
    ``{"collector": [acks], "keepers": {keeper_id: [acks]}}``.
    """
    keepers = dict(keepers)
    if not keepers:
        raise ValidationError("split-trust needs at least one share keeper")
    keeper_keys = dict(keeper_keys)
    missing = sorted(set(keepers) - set(keeper_keys))
    if missing:
        raise ValidationError(
            f"no producer key supplied for share keeper(s) {missing}"
        )
    secrets = {
        keeper_id: derive_share_secret(
            keeper_keys[keeper_id],
            m=m,
            round_id=round_id,
            producer_id=producer_id,
            keeper_id=keeper_id,
        )
        for keeper_id in keepers
    }
    blinded_frames: list = []
    share_frames: dict[str, list] = {keeper_id: [] for keeper_id in keepers}
    for offset, rows in enumerate(chunks):
        blinded, shares = blind_report_chunk(
            rows,
            m=m,
            round_id=round_id,
            seq=int(start_seq) + offset,
            secrets=secrets,
            compute=compute,
        )
        blinded_frames.append(blinded)
        for keeper_id, share in shares.items():
            share_frames[keeper_id].append(share)

    host, port = collector

    async def ship_collector():
        return await send_records(
            host,
            port,
            blinded_frames,
            key=collector_key,
            producer_id=producer_id,
            m=m,
            round_id=round_id,
            start_seq=start_seq,
            max_inflight=max_inflight,
        )

    async def ship_keeper(keeper_id: str):
        keeper_host, keeper_port = keepers[keeper_id]
        return await send_records(
            keeper_host,
            keeper_port,
            share_frames[keeper_id],
            key=keeper_keys[keeper_id],
            producer_id=producer_id,
            m=m,
            round_id=round_id,
            start_seq=start_seq,
            max_inflight=max_inflight,
            party=keeper_party_label(keeper_id),
        )

    keeper_ids = sorted(keepers)
    results = await asyncio.gather(
        ship_collector(), *(ship_keeper(keeper_id) for keeper_id in keeper_ids)
    )
    return {
        "collector": results[0],
        "keepers": dict(zip(keeper_ids, results[1:])),
    }
