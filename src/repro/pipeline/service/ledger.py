"""Append-only idempotency ledger: the service's exactly-once memory.

Every merged record leaves one entry — ``(producer_id, seq, digest,
spill_end)`` — appended and fsync'd *before* the producer's ack goes
out.  That ordering is the whole protocol:

* ack received by a producer ⟹ the entry (and, because the spill is
  fsync'd first, the frame bytes it points at) survive a crash;
* entry present ⟹ a resend of the same ``(producer_id, seq)`` is
  acknowledged as a duplicate and **not** re-merged;
* entry absent ⟹ the frame was never acked, so the producer's blind
  resend merges exactly once.

``spill_end`` records the spill-file offset after the frame was
appended, making the ledger the round's commit log: on restart,
:meth:`IdempotencyLedger.committed_offset` is the high-water mark the
spill is truncated back to — frames spilled but never ledgered (crash
in the window between the two fsyncs) are dropped and will be resent.

On-disk format: self-delimiting binary entries

``[ u32 CRC32 of the rest ][ u16 producer_len ][ u64 seq ]
  [ u64 spill_end ][ 32 B frame digest ][ producer utf-8 ]``

A torn tail (crash mid-append) fails the length or CRC check and is
truncated away on load; entries before it are untouched.  Everything is
little-endian, matching the wire format.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass

from ...exceptions import LedgerError

__all__ = ["IdempotencyLedger", "LedgerEntry", "DIGEST_SIZE"]

DIGEST_SIZE = 32  # SHA-256 of the record's core-frame bytes
_HEAD = struct.Struct("<IHQQ")  # crc, producer_len, seq, spill_end


@dataclass(frozen=True)
class LedgerEntry:
    """One committed record: who sent it, which slot, which bytes."""

    producer_id: str
    seq: int
    digest: bytes
    spill_end: int


class IdempotencyLedger:
    """Crash-safe dedup index over ``(producer_id, seq)``.

    Usage: :meth:`load` once (recovering a torn tail), then
    :meth:`seen` / :meth:`append` / :meth:`sync` per record.  The
    in-memory index is a dict, so dedup lookups are O(1) regardless of
    round size; the file is only ever appended to or tail-truncated.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._entries: dict[tuple[str, int], LedgerEntry] = {}
        self._handle = None
        self.committed_offset = 0
        self.recovered_bytes_discarded = 0

    # ------------------------------------------------------------------
    # Loading / recovery
    # ------------------------------------------------------------------
    def _parse(self, blob: bytes) -> int:
        """Fill the index from *blob*; returns the valid byte length."""
        offset = 0
        while offset < len(blob):
            head = blob[offset : offset + _HEAD.size]
            if len(head) < _HEAD.size:
                break  # torn mid-head
            crc, producer_len, seq, spill_end = _HEAD.unpack(head)
            end = offset + _HEAD.size + DIGEST_SIZE + producer_len
            if end > len(blob):
                break  # torn mid-entry
            body = blob[offset + 4 : end]
            if crc != zlib.crc32(body):
                break  # torn (or corrupted) entry; nothing after is trusted
            digest = blob[
                offset + _HEAD.size : offset + _HEAD.size + DIGEST_SIZE
            ]
            try:
                producer_id = blob[offset + _HEAD.size + DIGEST_SIZE : end].decode(
                    "utf-8"
                )
            except UnicodeDecodeError:
                break
            entry = LedgerEntry(
                producer_id=producer_id,
                seq=seq,
                digest=digest,
                spill_end=spill_end,
            )
            key = (producer_id, seq)
            if key in self._entries:
                raise LedgerError(
                    f"ledger {self.path} holds two entries for producer "
                    f"{producer_id!r} seq {seq}; the file is corrupt beyond "
                    "tail-truncation repair"
                )
            self._entries[key] = entry
            self.committed_offset = max(self.committed_offset, spill_end)
            offset = end
        return offset

    def load(self) -> int:
        """Read the ledger, truncating a torn tail; returns entry count.

        Opens the file for appending afterwards, so the ledger is ready
        for new records as soon as it has loaded.
        """
        if self._handle is not None:
            raise LedgerError(f"ledger {self.path} is already open")
        blob = b""
        if os.path.exists(self.path):
            with open(self.path, "rb") as handle:
                blob = handle.read()
        valid = self._parse(blob)
        self.recovered_bytes_discarded = len(blob) - valid
        if self.recovered_bytes_discarded:
            with open(self.path, "r+b") as handle:
                handle.truncate(valid)
        self._handle = open(self.path, "ab")
        return len(self._entries)

    # ------------------------------------------------------------------
    # Record flow
    # ------------------------------------------------------------------
    def seen(self, producer_id: str, seq: int) -> LedgerEntry | None:
        """The committed entry for ``(producer_id, seq)``, if any."""
        return self._entries.get((producer_id, int(seq)))

    def append(
        self, producer_id: str, seq: int, digest: bytes, spill_end: int
    ) -> LedgerEntry:
        """Stage one committed record (call :meth:`sync` before acking)."""
        if self._handle is None:
            raise LedgerError(f"ledger {self.path} is not open; call load()")
        digest = bytes(digest)
        if len(digest) != DIGEST_SIZE:
            raise LedgerError(
                f"ledger digests are {DIGEST_SIZE} bytes, got {len(digest)}"
            )
        key = (producer_id, int(seq))
        if key in self._entries:
            raise LedgerError(
                f"producer {producer_id!r} seq {seq} is already ledgered; "
                "check seen() before append()"
            )
        producer = producer_id.encode("utf-8")
        body = (
            struct.pack("<HQQ", len(producer), int(seq), int(spill_end))
            + digest
            + producer
        )
        self._handle.write(struct.pack("<I", zlib.crc32(body)) + body)
        entry = LedgerEntry(
            producer_id=producer_id,
            seq=int(seq),
            digest=digest,
            spill_end=int(spill_end),
        )
        self._entries[key] = entry
        self.committed_offset = max(self.committed_offset, int(spill_end))
        return entry

    def sync(self) -> None:
        """Flush and fsync staged entries; the commit point before ack."""
        if self._handle is None:
            raise LedgerError(f"ledger {self.path} is not open; call load()")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def mark(self) -> int:
        """Flushed file size now — a rollback point for a batch append."""
        if self._handle is None:
            raise LedgerError(f"ledger {self.path} is not open; call load()")
        self._handle.flush()
        return os.fstat(self._handle.fileno()).st_size

    def rollback(self, mark: int, keys) -> None:
        """Undo a failed batch: drop *keys* from the index and truncate
        the file back to *mark* (from :meth:`mark` before the batch).

        The repair path when an append/fsync fails partway through a
        group commit — without it, entries for frames that were never
        acknowledged (or file bytes that never fsync'd) would poison
        the round.
        """
        if self._handle is None:
            raise LedgerError(f"ledger {self.path} is not open; call load()")
        for key in keys:
            self._entries.pop((key[0], int(key[1])), None)
        self._handle.flush()
        os.ftruncate(self._handle.fileno(), int(mark))
        self.committed_offset = max(
            (entry.spill_end for entry in self._entries.values()), default=0
        )

    def close(self) -> None:
        if self._handle is None:
            return
        handle, self._handle = self._handle, None
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[str, int]) -> bool:
        return key in self._entries

    def entries(self) -> list[LedgerEntry]:
        """All committed entries, in insertion (= commit) order."""
        return list(self._entries.values())

    def producer_totals(self) -> dict[str, tuple[int, int]]:
        """Committed ``(records, frame_bytes)`` per producer.

        Resume seeds each producer's cross-connection quota meter from
        this, so a restart never forgives budget a producer already
        spent — the quota ledger *is* the idempotency ledger.  Byte
        totals fall out of the entries' ``spill_end`` offsets: entries
        commit in spill order, so each entry's frame size is its
        ``spill_end`` minus the previous entry's.
        """
        totals: dict[str, tuple[int, int]] = {}
        previous_end = 0
        for entry in self._entries.values():
            records, nbytes = totals.get(entry.producer_id, (0, 0))
            totals[entry.producer_id] = (
                records + 1,
                nbytes + entry.spill_end - previous_end,
            )
            previous_end = entry.spill_end
        return totals
