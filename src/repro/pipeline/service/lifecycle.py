"""The round lifecycle state machine.

A scale-out deployment needs "what is round 7 doing right now?" to have
one authoritative answer — across the coordinator that owns the round,
the K shard services hosting slices of it, and the aggregator deciding
whether it may pull final state.  :class:`RoundLifecycle` is that
answer, as an explicit state machine rather than a scatter of booleans:

``open → serving → draining → closed → retired``

* **open** — registered (or recovered); durable state exists but no
  sessions are accepted yet.  A coordinator registers a round in this
  phase, mints its token, and only then tells shards to serve it.
* **serving** — sessions and records flow.
* **draining** — no *new* sessions and no *new* records; batches
  already staged or in the commit pipeline still commit and are acked.
  This is the phase an operator holds a round in while waiting for the
  last in-flight group commits before closing.
* **closed** — durably closed: commit pipeline drained, spill and
  ledger synced, final snapshot written.  State is still on disk and
  pullable by an aggregator; nothing mutates it anymore.
* **retired** — store handles freed and the round forgotten by its
  registry.  The round id may be re-registered later — as a *new
  incarnation* with a fresh registration token, which is exactly why
  session proofs bind the token and not the bare id.

Transitions only move forward.  Skipping intermediate phases *forward*
is legal where it is safe (``open → closed`` aborts a never-served
round; ``serving → closed`` is a hard close that skips the polite
drain), but nothing ever moves backward and nothing leaves ``retired``.
Illegal transitions raise loudly — a caller that tries to serve a
closed round has a real bug that silence would bury.
"""

from __future__ import annotations

from ...exceptions import ValidationError

__all__ = [
    "OPEN",
    "SERVING",
    "DRAINING",
    "CLOSED",
    "RETIRED",
    "PHASES",
    "LEGAL_TRANSITIONS",
    "RoundLifecycle",
]

OPEN = "open"
SERVING = "serving"
DRAINING = "draining"
CLOSED = "closed"
RETIRED = "retired"

#: Phase order; transitions may only move rightward through this tuple.
PHASES = (OPEN, SERVING, DRAINING, CLOSED, RETIRED)

#: The full legal transition relation, spelled out (tests enumerate it).
#: Forward-only, and ``retired`` is terminal; ``retired`` is reachable
#: only from ``closed`` — retiring means freeing handles that only a
#: durable close leaves in a freeable state.
LEGAL_TRANSITIONS = frozenset(
    {
        (OPEN, SERVING),
        (OPEN, DRAINING),
        (OPEN, CLOSED),
        (SERVING, DRAINING),
        (SERVING, CLOSED),
        (DRAINING, CLOSED),
        (CLOSED, RETIRED),
    }
)


class RoundLifecycle:
    """One round's phase, with loud, forward-only transitions."""

    def __init__(self, round_id: int, phase: str = OPEN) -> None:
        if phase not in PHASES:
            raise ValidationError(
                f"unknown lifecycle phase {phase!r}; phases are {PHASES}"
            )
        self.round_id = int(round_id)
        self.phase = phase

    # ------------------------------------------------------------------
    # Queries (the mid-round observability surface)
    # ------------------------------------------------------------------
    @property
    def accepts_sessions(self) -> bool:
        """May a new producer session be opened on this round?"""
        return self.phase == SERVING

    @property
    def accepts_records(self) -> bool:
        """May a new record be staged for commit on this round?"""
        return self.phase == SERVING

    @property
    def is_terminal(self) -> bool:
        return self.phase == RETIRED

    def can_transition(self, to: str) -> bool:
        return (self.phase, to) in LEGAL_TRANSITIONS

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def transition(self, to: str) -> None:
        """Move to phase *to*; raises on any illegal move.

        Self-transitions are illegal too — a double ``drain`` means two
        operators (or a retry loop) are fighting over the round, and
        the second one deserves to find out.  Callers that want
        idempotent operator commands check :attr:`phase` first.
        """
        if to not in PHASES:
            raise ValidationError(
                f"unknown lifecycle phase {to!r}; phases are {PHASES}"
            )
        if (self.phase, to) not in LEGAL_TRANSITIONS:
            raise ValidationError(
                f"round {self.round_id} cannot move {self.phase!r} -> "
                f"{to!r}; legal from {self.phase!r}: "
                f"{sorted(t for f, t in LEGAL_TRANSITIONS if f == self.phase)}"
            )
        self.phase = to

    def require(self, *phases: str) -> None:
        """Assert the round is in one of *phases* (loud otherwise)."""
        if self.phase not in phases:
            raise ValidationError(
                f"round {self.round_id} is {self.phase!r}; this operation "
                f"requires {' or '.join(repr(p) for p in phases)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RoundLifecycle(round_id={self.round_id}, phase={self.phase!r})"
