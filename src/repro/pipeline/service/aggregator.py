"""The aggregator: pull per-shard state and merge it into the round.

A scale-out round ends with K shard accumulators, each holding the
exact counts of the producers routed to it.  Because
:class:`~repro.pipeline.accumulator.CountAccumulator` merge is exact
integer addition — associative, commutative, order-independent — the
fleet-wide counts are *bit-identical* to what one process ingesting the
same report stream would hold, no matter how the merge is shaped.  The
aggregator exploits that:

* :func:`pull_shard_state` fetches one shard's accumulator over the
  authenticated control plane (``pull-state``).  The attachment is a
  core wire snapshot frame (the same bytes PR 3 defined — scale-out
  costs no new serialization), and the shard's **digest claim in the
  MAC'd reply body is verified against the decoded accumulator** before
  anything is merged: a corrupted or tampered attachment is refused
  loudly, never averaged in;
* :func:`merge_tree` folds accumulators pairwise with a configurable
  fan-in — the PrivCount-style aggregation tree.  With exact merges the
  tree buys structure (bounded per-node work, parallelizable tiers),
  not different numbers;
* :func:`aggregate_round` is the whole pipeline: pull every shard,
  verify, tree-merge, and (given a mechanism) produce the round's
  :class:`~repro.estimation.merge.RoundEstimate` via
  :mod:`repro.estimation.merge` — the same estimate object a
  single-process round emits.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from ...estimation.merge import RoundEstimate
from ...exceptions import ControlError, ValidationError
from ..accumulator import CountAccumulator
from ..collect import wire
from .client import control_call
from .routing import ShardInfo

__all__ = [
    "ShardPull",
    "pull_shard_state",
    "merge_tree",
    "aggregate_round",
    "AggregateResult",
]


@dataclass(frozen=True)
class ShardPull:
    """One shard's verified contribution to a round."""

    shard: ShardInfo
    accumulator: CountAccumulator
    records_merged: int
    phase: str


async def pull_shard_state(
    shard: ShardInfo, *, control_key, round_id: int
) -> ShardPull:
    """Pull and digest-verify one shard's accumulator for *round_id*."""
    body, attachment = await control_call(
        shard.host,
        shard.port,
        key=control_key,
        op="pull-state",
        body={"round_id": int(round_id)},
    )
    accumulator = wire.loads(attachment)
    if not isinstance(accumulator, CountAccumulator):
        raise ControlError(
            f"shard {shard.name} sent a {type(accumulator).__name__} "
            f"attachment for pull-state; expected a snapshot frame"
        )
    if accumulator.digest() != body.get("digest"):
        raise ControlError(
            f"shard {shard.name} state digest mismatch for round "
            f"{round_id}: body claims {body.get('digest')!r}, attachment "
            f"decodes to {accumulator.digest()!r}"
        )
    if accumulator.round_id != int(round_id):
        raise ControlError(
            f"shard {shard.name} sent state for round "
            f"{accumulator.round_id}, not {round_id}"
        )
    return ShardPull(
        shard=shard,
        accumulator=accumulator,
        records_merged=int(body.get("records_merged", 0)),
        phase=str(body.get("phase", "")),
    )


def merge_tree(accumulators, *, fan_in: int = 2) -> CountAccumulator:
    """Fold *accumulators* as an aggregation tree of degree *fan_in*.

    Tier by tier, consecutive groups of *fan_in* merge into one node
    until a single root remains.  Exactness makes every shape produce
    identical counts; the tree form is what a geographically tiered
    deployment runs (leaf aggregators near their shards, one root).
    """
    nodes = list(accumulators)
    if not nodes:
        raise ValidationError("merge_tree needs at least one accumulator")
    if int(fan_in) < 2:
        raise ValidationError(f"fan_in must be >= 2, got {fan_in}")
    while len(nodes) > 1:
        nodes = [
            CountAccumulator.merge_all(nodes[i : i + int(fan_in)])
            for i in range(0, len(nodes), int(fan_in))
        ]
    return nodes[0]


@dataclass(frozen=True)
class AggregateResult:
    """A round's fleet-wide aggregate: exact counts plus the estimate."""

    accumulator: CountAccumulator
    estimate: RoundEstimate | None
    pulls: tuple[ShardPull, ...]

    @property
    def records_merged(self) -> int:
        return sum(pull.records_merged for pull in self.pulls)


async def aggregate_round(
    shards,
    *,
    control_key,
    round_id: int,
    mechanism=None,
    fan_in: int = 2,
) -> AggregateResult:
    """Pull every shard of *round_id*, verify, and merge.

    Pulls run concurrently; any shard failure (unreachable, digest
    mismatch, wrong round) fails the whole aggregate — a partial sum
    presented as the round total is the one bug this layer exists to
    make impossible.  With *mechanism* the merged counts become the
    round's :class:`~repro.estimation.merge.RoundEstimate` (the same
    object, bit for bit, a single-process round would produce over the
    same report stream).
    """
    shards = list(shards)
    if not shards:
        raise ValidationError("aggregate_round needs at least one shard")
    pulls = await asyncio.gather(
        *(
            pull_shard_state(shard, control_key=control_key, round_id=round_id)
            for shard in shards
        )
    )
    merged = merge_tree(
        [pull.accumulator for pull in pulls], fan_in=fan_in
    )
    estimate = (
        merged.to_round_estimate(mechanism) if mechanism is not None else None
    )
    return AggregateResult(
        accumulator=merged, estimate=estimate, pulls=tuple(pulls)
    )
