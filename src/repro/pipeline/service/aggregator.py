"""The aggregator: pull per-shard state and merge it into the round.

A scale-out round ends with K shard accumulators, each holding the
exact counts of the producers routed to it.  Because
:class:`~repro.pipeline.accumulator.CountAccumulator` merge is exact
integer addition — associative, commutative, order-independent — the
fleet-wide counts are *bit-identical* to what one process ingesting the
same report stream would hold, no matter how the merge is shaped.  The
aggregator exploits that:

* :func:`pull_shard_state` fetches one shard's accumulator over the
  authenticated control plane (``pull-state``).  The attachment is a
  core wire snapshot frame (the same bytes PR 3 defined — scale-out
  costs no new serialization), and the shard's **digest claim in the
  MAC'd reply body is verified against the decoded accumulator** before
  anything is merged: a corrupted or tampered attachment is refused
  loudly, never averaged in;
* :func:`merge_tree` folds accumulators pairwise with a configurable
  fan-in — the PrivCount-style aggregation tree.  With exact merges the
  tree buys structure (bounded per-node work, parallelizable tiers),
  not different numbers;
* :func:`aggregate_round` is the whole pipeline: pull every shard,
  verify, tree-merge, and (given a mechanism) produce the round's
  :class:`~repro.estimation.merge.RoundEstimate` via
  :mod:`repro.estimation.merge` — the same estimate object a
  single-process round emits.

A **split-trust** round ends differently: the collector fleet holds
only blinded word sums and each share keeper holds only its blinding
stream (:mod:`.shares`).  :func:`combine_round` is the only place the
plain tally ever comes into existence — it pulls every party's state
(:func:`pull_party_state`, role-checked), reconciles the parties'
membership digests so a keeper that lost records fails the round
loudly, and decodes via :func:`~.shares.combine_accumulators`.  The
result is bit-identical to :func:`aggregate_round` over the same
(unblinded) report stream.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

import numpy as np

from ...estimation.merge import RoundEstimate
from ...exceptions import ControlError, ValidationError
from ..accumulator import CountAccumulator
from ..collect import wire
from .client import control_call
from .routing import ShardInfo
from .shares import (
    ROLE_BLINDED,
    ROLE_KEEPER,
    BlindedAccumulator,
    combine_accumulators,
    decode_member_digest,
)

__all__ = [
    "ShardPull",
    "pull_shard_state",
    "merge_tree",
    "aggregate_round",
    "AggregateResult",
    "PartyPull",
    "pull_party_state",
    "combine_round",
    "SplitTrustResult",
]


@dataclass(frozen=True)
class ShardPull:
    """One shard's verified contribution to a round."""

    shard: ShardInfo
    accumulator: CountAccumulator
    records_merged: int
    phase: str


async def pull_shard_state(
    shard: ShardInfo, *, control_key, round_id: int
) -> ShardPull:
    """Pull and digest-verify one shard's accumulator for *round_id*."""
    body, attachment = await control_call(
        shard.host,
        shard.port,
        key=control_key,
        op="pull-state",
        body={"round_id": int(round_id)},
    )
    accumulator = wire.loads(attachment)
    if not isinstance(accumulator, CountAccumulator):
        raise ControlError(
            f"shard {shard.name} sent a {type(accumulator).__name__} "
            f"attachment for pull-state; expected a snapshot frame"
        )
    if accumulator.digest() != body.get("digest"):
        raise ControlError(
            f"shard {shard.name} state digest mismatch for round "
            f"{round_id}: body claims {body.get('digest')!r}, attachment "
            f"decodes to {accumulator.digest()!r}"
        )
    if accumulator.round_id != int(round_id):
        raise ControlError(
            f"shard {shard.name} sent state for round "
            f"{accumulator.round_id}, not {round_id}"
        )
    return ShardPull(
        shard=shard,
        accumulator=accumulator,
        records_merged=int(body.get("records_merged", 0)),
        phase=str(body.get("phase", "")),
    )


def merge_tree(accumulators, *, fan_in: int = 2) -> CountAccumulator:
    """Fold *accumulators* as an aggregation tree of degree *fan_in*.

    Tier by tier, consecutive groups of *fan_in* merge into one node
    until a single root remains.  Exactness makes every shape produce
    identical counts; the tree form is what a geographically tiered
    deployment runs (leaf aggregators near their shards, one root).
    """
    nodes = list(accumulators)
    if not nodes:
        raise ValidationError("merge_tree needs at least one accumulator")
    if int(fan_in) < 2:
        raise ValidationError(f"fan_in must be >= 2, got {fan_in}")
    while len(nodes) > 1:
        nodes = [
            CountAccumulator.merge_all(nodes[i : i + int(fan_in)])
            for i in range(0, len(nodes), int(fan_in))
        ]
    return nodes[0]


@dataclass(frozen=True)
class AggregateResult:
    """A round's fleet-wide aggregate: exact counts plus the estimate."""

    accumulator: CountAccumulator
    estimate: RoundEstimate | None
    pulls: tuple[ShardPull, ...]

    @property
    def records_merged(self) -> int:
        return sum(pull.records_merged for pull in self.pulls)


async def aggregate_round(
    shards,
    *,
    control_key,
    round_id: int,
    mechanism=None,
    fan_in: int = 2,
) -> AggregateResult:
    """Pull every shard of *round_id*, verify, and merge.

    Pulls run concurrently; any shard failure (unreachable, digest
    mismatch, wrong round) fails the whole aggregate — a partial sum
    presented as the round total is the one bug this layer exists to
    make impossible.  With *mechanism* the merged counts become the
    round's :class:`~repro.estimation.merge.RoundEstimate` (the same
    object, bit for bit, a single-process round would produce over the
    same report stream).
    """
    shards = list(shards)
    if not shards:
        raise ValidationError("aggregate_round needs at least one shard")
    pulls = await asyncio.gather(
        *(
            pull_shard_state(shard, control_key=control_key, round_id=round_id)
            for shard in shards
        )
    )
    merged = merge_tree(
        [pull.accumulator for pull in pulls], fan_in=fan_in
    )
    estimate = (
        merged.to_round_estimate(mechanism) if mechanism is not None else None
    )
    return AggregateResult(
        accumulator=merged, estimate=estimate, pulls=tuple(pulls)
    )


# ----------------------------------------------------------------------
# Split-trust combine
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PartyPull:
    """One split-trust party's verified (still blinded) contribution."""

    shard: ShardInfo
    accumulator: BlindedAccumulator
    member_digest: str
    records_merged: int
    phase: str


async def pull_party_state(
    shard: ShardInfo, *, control_key, round_id: int, role: str
) -> PartyPull:
    """Pull one party's blinded state, pinned to its expected *role*.

    The role check is structural trust enforcement: an aggregator that
    mistakes a keeper for the blinded collector (or vice versa) would
    combine nonsense; instead the wrong frame kind in the attachment is
    refused before anything is accumulated.
    """
    if role not in (ROLE_BLINDED, ROLE_KEEPER):
        raise ValidationError(
            f"role must be {ROLE_BLINDED!r} or {ROLE_KEEPER!r}, got {role!r}"
        )
    body, attachment = await control_call(
        shard.host,
        shard.port,
        key=control_key,
        op="pull-state",
        body={"round_id": int(round_id)},
    )
    obj = wire.loads(attachment)
    expected = wire.BlindedCounts if role == ROLE_BLINDED else (
        wire.BlindingShare
    )
    if not isinstance(obj, expected):
        raise ControlError(
            f"party {shard.name} sent a {type(obj).__name__} attachment "
            f"for a {role} pull; expected {expected.__name__} — the "
            "deployment's party roles are misconfigured"
        )
    accumulator = BlindedAccumulator.from_frame(obj)
    if accumulator.digest() != body.get("digest"):
        raise ControlError(
            f"party {shard.name} state digest mismatch for round "
            f"{round_id}: body claims {body.get('digest')!r}, attachment "
            f"decodes to {accumulator.digest()!r}"
        )
    if accumulator.round_id != int(round_id):
        raise ControlError(
            f"party {shard.name} sent state for round "
            f"{accumulator.round_id}, not {round_id}"
        )
    member_digest = body.get("member_digest")
    if not member_digest:
        raise ControlError(
            f"party {shard.name} sent no membership digest for round "
            f"{round_id}; refusing to combine unverifiable share streams"
        )
    decode_member_digest(member_digest)  # loud on malformed hex
    return PartyPull(
        shard=shard,
        accumulator=accumulator,
        member_digest=str(member_digest),
        records_merged=int(body.get("records_merged", 0)),
        phase=str(body.get("phase", "")),
    )


@dataclass(frozen=True)
class SplitTrustResult:
    """A split-trust round's decoded tally and its provenance."""

    accumulator: CountAccumulator
    estimate: RoundEstimate | None
    collector_pulls: tuple[PartyPull, ...]
    keeper_pulls: tuple[PartyPull, ...]

    @property
    def records_merged(self) -> int:
        return sum(pull.records_merged for pull in self.collector_pulls)


async def combine_round(
    shards,
    keepers,
    *,
    control_key,
    round_id: int,
    mechanism=None,
) -> SplitTrustResult:
    """Pull every party of a split-trust *round_id*, reconcile, decode.

    *shards* are the blinded collector's shard(s); *keepers* the share
    keeper services (each a whole keeper — one per blinding stream).
    The decode happens **only after** every party answered and all
    membership digests reconcile: the lane-sum of the collector shards'
    digests must equal every keeper's digest, certifying all parties
    committed exactly the same record set.  Any unreachable party,
    digest mismatch, coverage gap, or non-count residual fails the
    round loudly — a split-trust round never emits a partially decoded
    (i.e. still-random) tally.
    """
    shards = list(shards)
    keepers = list(keepers)
    if not shards:
        raise ValidationError("combine_round needs at least one collector shard")
    if not keepers:
        raise ValidationError(
            "combine_round needs at least one share keeper; a zero-keeper "
            "round is a plain aggregate_round"
        )
    pulls = await asyncio.gather(
        *(
            pull_party_state(
                shard,
                control_key=control_key,
                round_id=round_id,
                role=ROLE_BLINDED,
            )
            for shard in shards
        ),
        *(
            pull_party_state(
                keeper,
                control_key=control_key,
                round_id=round_id,
                role=ROLE_KEEPER,
            )
            for keeper in keepers
        ),
    )
    collector_pulls = tuple(pulls[: len(shards)])
    keeper_pulls = tuple(pulls[len(shards):])

    blinded = collector_pulls[0].accumulator
    for pull in collector_pulls[1:]:
        blinded = blinded.merge(pull.accumulator)
    # Membership is additive across collector shards (each producer's
    # records commit on exactly one shard), so the fleet-wide digest is
    # the mod-2^64 lane sum — which every keeper, covering the whole
    # producer population, must match exactly.
    with np.errstate(over="ignore"):
        fleet_members = sum(
            (decode_member_digest(pull.member_digest)
             for pull in collector_pulls),
            start=np.zeros(4, dtype=np.uint64),
        )
    for pull in keeper_pulls:
        if not np.array_equal(
            decode_member_digest(pull.member_digest), fleet_members
        ):
            raise ControlError(
                f"share keeper {pull.shard.name} membership digest does "
                f"not reconcile with the collector fleet for round "
                f"{round_id}: the keeper's committed record set differs — "
                "refusing to decode"
            )
    plain = combine_accumulators(
        blinded, [pull.accumulator for pull in keeper_pulls]
    )
    estimate = (
        plain.to_round_estimate(mechanism) if mechanism is not None else None
    )
    return SplitTrustResult(
        accumulator=plain,
        estimate=estimate,
        collector_pulls=collector_pulls,
        keeper_pulls=keeper_pulls,
    )
