"""HMAC session authentication for the collection service.

The handshake is a three-frame challenge-response over the version-2
session frames of :mod:`repro.pipeline.collect.wire`:

1. producer → service: :class:`~repro.pipeline.collect.wire.SessionHello`
   with the claimed ``(m, round_id)``, a producer identity, and a fresh
   16-byte client nonce;
2. service → producer: :class:`~repro.pipeline.collect.wire.
   SessionChallenge` with a fresh 16-byte server nonce;
3. producer → service: :class:`~repro.pipeline.collect.wire.SessionProof`
   carrying ``HMAC-SHA256(key, transcript)`` where the transcript binds
   the protocol label, round geometry, producer identity, and both
   nonces.

Because both nonces are inside the MAC, a recorded handshake cannot be
replayed against a fresh challenge, and a proof minted for one round or
producer identity cannot be spent on another.  The key is a shared
*round* secret — whoever holds it is a legitimate producer for that
round; per-producer keys would drop in here as a key-lookup by
``producer_id`` without touching the frame flow.

Record frames after the handshake are not individually MAC'd: the
threat model is an untrusted *network* and unauthorized producers, not
a man-in-the-middle tampering inside an established TCP stream (run TLS
underneath for that).  What exactness requires — resend-safety — comes
from the idempotency ledger, not the MAC.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import struct

from ...exceptions import ValidationError

__all__ = [
    "MIN_KEY_BYTES",
    "derive_round_key",
    "fresh_nonce",
    "session_mac",
    "verify_session_mac",
]

_PROTOCOL_LABEL = b"IDLP-session-v2"
MIN_KEY_BYTES = 8


def derive_round_key(secret) -> bytes:
    """Normalize an operator-supplied secret into a round key.

    Accepts raw ``bytes`` or a string (hex is decoded, anything else is
    taken as a UTF-8 passphrase).  The result must be at least
    ``MIN_KEY_BYTES`` bytes — a round key guards every report of a
    round, and a trivially guessable one is a configuration error worth
    failing loudly on.
    """
    if isinstance(secret, str):
        try:
            key = bytes.fromhex(secret)
        except ValueError:
            key = secret.encode("utf-8")
    else:
        key = bytes(secret)
    if len(key) < MIN_KEY_BYTES:
        raise ValidationError(
            f"round key must be at least {MIN_KEY_BYTES} bytes, got {len(key)}"
        )
    return key


def fresh_nonce() -> bytes:
    """A fresh 16-byte handshake nonce from the OS CSPRNG."""
    return os.urandom(16)


def session_mac(
    key: bytes,
    *,
    m: int,
    round_id: int,
    producer_id: str,
    client_nonce: bytes,
    server_nonce: bytes,
) -> bytes:
    """HMAC-SHA256 over the handshake transcript (32 bytes).

    The producer id is length-prefixed inside the transcript so no two
    distinct ``(producer_id, nonce)`` pairs can collide into the same
    MAC input.
    """
    producer = producer_id.encode("utf-8")
    transcript = b"".join(
        (
            _PROTOCOL_LABEL,
            struct.pack("<QqH", m, round_id, len(producer)),
            producer,
            bytes(client_nonce),
            bytes(server_nonce),
        )
    )
    return hmac.new(key, transcript, hashlib.sha256).digest()


def verify_session_mac(
    key: bytes,
    mac: bytes,
    *,
    m: int,
    round_id: int,
    producer_id: str,
    client_nonce: bytes,
    server_nonce: bytes,
) -> bool:
    """Constant-time check of a producer's session proof."""
    expected = session_mac(
        key,
        m=m,
        round_id=round_id,
        producer_id=producer_id,
        client_nonce=client_nonce,
        server_nonce=server_nonce,
    )
    return hmac.compare_digest(expected, bytes(mac))
