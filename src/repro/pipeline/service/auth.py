"""HMAC session authentication for the collection service.

The handshake is a three-frame challenge-response over the version-2
session frames of :mod:`repro.pipeline.collect.wire`:

1. producer → service: :class:`~repro.pipeline.collect.wire.SessionHello`
   with the claimed ``(m, round_id)``, a producer identity, and a fresh
   16-byte client nonce;
2. service → producer: :class:`~repro.pipeline.collect.wire.
   SessionChallenge` with a fresh 16-byte server nonce;
3. producer → service: :class:`~repro.pipeline.collect.wire.SessionProof`
   carrying ``HMAC-SHA256(key, transcript)`` where the transcript binds
   the protocol label, round geometry, producer identity, and both
   nonces.

Because both nonces are inside the MAC, a recorded handshake cannot be
replayed against a fresh challenge, and a proof minted for one round or
producer identity cannot be spent on another.  A multi-round service
additionally folds the hosted round's *registration token* (carried in
a version-3 challenge) into the transcript, so a proof is scoped to one
exact incarnation of a round — not merely a ``round_id`` number that a
later registration might reuse.

Keys come from a :class:`KeyRegistry`: per-producer secrets looked up
by ``producer_id`` during the handshake (one compromised producer can
therefore never forge records for another), with an optional default
key for producers without an individual entry.  Registries load from a
keyfile (``producer = secret`` lines) and hot-reload when the file
changes on disk, so keys rotate without a service restart.

Record frames after the handshake are not individually MAC'd: the
threat model is an untrusted *network* and unauthorized producers, not
a man-in-the-middle tampering inside an established TCP stream (run TLS
underneath for that).  What exactness requires — resend-safety — comes
from the idempotency ledger, not the MAC.

The split-trust tier adds two things here.  A *party label*
(:func:`keeper_party_label`) folds the serving party's role into the
session transcript: a share keeper's sessions MAC a label naming that
keeper, so a proof minted for the blinded collector can never be spent
at a keeper, nor a proof for keeper A at keeper B — even if an operator
misconfigures two parties with the same producer key.  And
:func:`derive_share_secret` derives the per-(producer, keeper) blinding
secret from the producer's *keeper-side* key over stable round
coordinates only (no session nonces), so a blind resend regenerates
byte-identical share frames — which is what lets the idempotency ledger
dedup them — and a restarted keeper changes nothing.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import struct

from ...exceptions import ValidationError

__all__ = [
    "MIN_KEY_BYTES",
    "KeyRegistry",
    "control_reply_mac",
    "control_request_mac",
    "derive_producer_key",
    "derive_round_key",
    "derive_share_secret",
    "fresh_nonce",
    "keeper_party_label",
    "session_mac",
    "verify_control_reply_mac",
    "verify_control_request_mac",
    "verify_session_mac",
]

_PROTOCOL_LABEL = b"IDLP-session-v2"
_CONTROL_LABEL = b"IDLP-control-v4"
_SHARE_LABEL = b"IDLP-share-v5"
_KEEPER_PARTY_LABEL = b"IDLP-share-keeper"
MIN_KEY_BYTES = 8


def derive_round_key(secret) -> bytes:
    """Normalize an operator-supplied secret into a round key.

    Accepts raw ``bytes`` or a string (hex is decoded, anything else is
    taken as a UTF-8 passphrase).  The result must be at least
    ``MIN_KEY_BYTES`` bytes — a round key guards every report of a
    round, and a trivially guessable one is a configuration error worth
    failing loudly on.
    """
    if isinstance(secret, str):
        try:
            key = bytes.fromhex(secret)
        except ValueError:
            key = secret.encode("utf-8")
    else:
        key = bytes(secret)
    if len(key) < MIN_KEY_BYTES:
        raise ValidationError(
            f"round key must be at least {MIN_KEY_BYTES} bytes, got {len(key)}"
        )
    return key


def derive_producer_key(master, producer_id: str) -> bytes:
    """Derive one producer's key from a deployment master secret.

    ``HMAC-SHA256(master, "IDLP-producer-key" || producer_id)`` — the
    operational convenience for fleets too large to mint independent
    keys: the coordinator keeps the master, hands each node only its
    derived key, and a node's key reveals nothing about any other
    node's.  The result is a valid :class:`KeyRegistry` /
    :func:`derive_round_key` secret (32 raw bytes).
    """
    master = derive_round_key(master)
    if not producer_id:
        raise ValidationError("producer_id must be a non-empty string")
    return hmac.new(
        master,
        b"IDLP-producer-key" + producer_id.encode("utf-8"),
        hashlib.sha256,
    ).digest()


def derive_share_secret(
    key, *, m: int, round_id: int, producer_id: str, keeper_id: str
) -> bytes:
    """One (producer, keeper) pair's blinding secret for one round.

    ``HMAC-SHA256(K_pj, label || m || round_id || len(producer) ||
    producer || len(keeper) || keeper)`` where ``K_pj`` is the
    producer's key *at keeper j's own registry* — a key universe the
    collector never holds, which is the whole split-trust point: a
    party that knows only the collector-side keys can expand none of
    the blinding streams.  The transcript uses stable round coordinates
    only (never session nonces or registration tokens), so a blind
    resend after a lost ack — or after the keeper restarts — derives
    byte-identical blinding words and dedups in the keeper's ledger
    instead of corrupting the share sum.
    """
    key = derive_round_key(key)
    producer = producer_id.encode("utf-8")
    keeper = keeper_id.encode("utf-8")
    if not producer:
        raise ValidationError("producer_id must be a non-empty string")
    if not keeper:
        raise ValidationError("keeper_id must be a non-empty string")
    transcript = b"".join(
        (
            _SHARE_LABEL,
            struct.pack("<QqH", int(m), int(round_id), len(producer)),
            producer,
            struct.pack("<H", len(keeper)),
            keeper,
        )
    )
    return hmac.new(key, transcript, hashlib.sha256).digest()


def keeper_party_label(keeper_id: str) -> bytes:
    """The session-transcript party label of one share keeper.

    Folded into :func:`session_mac` by keeper-mode rounds (and by the
    producers talking to them), scoping a proof to that exact keeper:
    collector sessions use the empty label (transcripts byte-identical
    to every prior wire version), and no two keepers share a label.
    """
    keeper = str(keeper_id).encode("utf-8")
    if not keeper:
        raise ValidationError("keeper_id must be a non-empty string")
    if len(keeper) > 0xFFFF:
        raise ValidationError(
            f"keeper_id is {len(keeper)} UTF-8 bytes; the label caps it "
            "at 65535"
        )
    return _KEEPER_PARTY_LABEL + struct.pack("<H", len(keeper)) + keeper


def fresh_nonce() -> bytes:
    """A fresh 16-byte handshake nonce from the OS CSPRNG."""
    return os.urandom(16)


class KeyRegistry:
    """Per-producer key store with keyfile loading and hot rotation.

    Lookup order: the producer's own entry, else the registry default
    (``None`` when neither exists — the service refuses the session).
    Holding only a *default* key reproduces the single-shared-key
    behavior of the single-round service exactly.

    A registry constructed with :meth:`from_file` (or ``path=``)
    re-stats the keyfile on every lookup and reloads it when the mtime
    or size changed — `kill -HUP`-style rotation without the signal:
    edit the file, and the next handshake sees the new keys.  Sessions
    already authenticated are untouched (the key only guards the
    handshake), which is exactly the rotation semantics PrivCount-style
    deployments want: revoke a node — or the ``*`` fallback — by
    deleting its line, no restart, no disruption to the other
    producers.  (A ``default_key`` passed at construction is a separate
    layer: the file's ``*`` entry shadows it while present, and
    deleting the ``*`` line falls back to it, not to nothing.)

    Keyfile format — one entry per line::

        # comment (blank lines ignored)
        tally-node-1 = 00112233445566778899aabbccddeeff
        tally-node-2 = a longer passphrase works too
        *            = fallback-key-for-unlisted-producers

        [revoked]
        tally-node-9
        compromised-node

    Producer ids may not contain ``=``; secrets go through
    :func:`derive_round_key` (hex or UTF-8 passphrase, >= 8 bytes).
    ``*`` names the default key.

    The optional ``[revoked]`` section lists bare producer ids that are
    **banned outright**: :meth:`lookup` returns ``None`` for them even
    when they have a key line or a default key would apply, so a new
    handshake fails exactly like a wrong key (same refusal, no
    enumeration oracle), and the service reaps their open sessions.
    Revocation beats every key layer — a revoked id with a still-listed
    key stays revoked until its ``[revoked]`` line is deleted.  A
    ``[keys]`` header may optionally open the key section; lines before
    any header are key lines, preserving the PR 4/5 keyfile format
    byte for byte.
    """

    def __init__(
        self,
        keys: dict | None = None,
        *,
        default_key=None,
        path: str | None = None,
    ) -> None:
        self._keys: dict[str, bytes] = {
            str(producer): derive_round_key(secret)
            for producer, secret in (keys or {}).items()
        }
        self._base_default = (
            derive_round_key(default_key) if default_key is not None else None
        )
        self._file_default: bytes | None = None
        self._revoked: set[str] = set()
        self._path = path
        self._stamp: tuple[int, int, int, bytes] | None = None
        if path is not None:
            self.reload()

    @classmethod
    def from_file(cls, path: str, *, default_key=None) -> "KeyRegistry":
        """A registry bound to *path*, hot-reloading on file change."""
        return cls(default_key=default_key, path=path)

    # ------------------------------------------------------------------
    # Keyfile loading / rotation
    # ------------------------------------------------------------------
    @staticmethod
    def _parse(
        text: str, path: str
    ) -> tuple[dict[str, bytes], bytes | None, set[str]]:
        keys: dict[str, bytes] = {}
        default: bytes | None = None
        revoked: set[str] = set()
        section = "keys"
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if line.startswith("[") and line.endswith("]"):
                section = line[1:-1].strip().lower()
                if section not in ("keys", "revoked"):
                    raise ValidationError(
                        f"{path}:{lineno}: unknown keyfile section "
                        f"[{section}]; sections are [keys] and [revoked]"
                    )
                continue
            if section == "revoked":
                if "=" in line:
                    raise ValidationError(
                        f"{path}:{lineno}: [revoked] entries are bare "
                        f"producer ids, got {raw!r}"
                    )
                if line in revoked:
                    raise ValidationError(
                        f"{path}:{lineno}: duplicate [revoked] entry for "
                        f"producer {line!r}"
                    )
                revoked.add(line)
                continue
            producer, sep, secret = line.partition("=")
            producer, secret = producer.strip(), secret.strip()
            if not sep or not producer or not secret:
                raise ValidationError(
                    f"{path}:{lineno}: keyfile lines are "
                    f"'producer = secret', got {raw!r}"
                )
            key = derive_round_key(secret)
            if producer == "*":
                if default is not None:
                    raise ValidationError(
                        f"{path}:{lineno}: duplicate default ('*') entry"
                    )
                default = key
            elif producer in keys:
                raise ValidationError(
                    f"{path}:{lineno}: duplicate entry for producer "
                    f"{producer!r}"
                )
            else:
                keys[producer] = key
        return keys, default, revoked

    def reload(self) -> None:
        """Re-read the keyfile now (lookups do this automatically)."""
        if self._path is None:
            return
        stat = os.stat(self._path)
        with open(self._path, "rb") as handle:
            blob = handle.read()
        text = blob.decode("utf-8")
        keys, default, revoked = self._parse(text, self._path)
        self._keys = keys
        # The file's '*' entry is authoritative for the file layer:
        # deleting the line REVOKES the file default (falling back to
        # any construction-time default, not to the stale key).
        self._file_default = default
        # The revocation list is likewise authoritative per reload:
        # deleting a [revoked] line un-revokes (new handshakes only —
        # reaped sessions stay dead and must re-handshake).
        self._revoked = revoked
        self._stamp = (
            stat.st_mtime_ns,
            stat.st_size,
            stat.st_ino,
            hashlib.sha256(blob).digest(),
        )

    def _maybe_reload(self) -> None:
        """Reload on file change, but never let a broken file take the
        service down: a missing, unreadable, or malformed keyfile (a
        non-atomic editor save mid-rotation, a typo'd line) keeps the
        last good key set serving and retries on the next lookup —
        rotation must not be able to lock every producer out.  Only the
        *explicit* :meth:`reload` (service construction) fails loudly.
        """
        if self._path is None:
            return
        try:
            stat = os.stat(self._path)
        except OSError:
            return  # keep serving the last good key set
        if self._stamp is not None and (
            stat.st_mtime_ns,
            stat.st_size,
            stat.st_ino,
        ) == self._stamp[:3]:
            # The cheap stat triple can miss a rotation entirely: a
            # same-size in-place rewrite on a coarse-mtime filesystem,
            # or an ``os.replace`` whose new file inherits the old
            # timestamps.  A revoked key staying live is the one
            # failure this layer must not have, so confirm against the
            # content digest before trusting the stat.
            try:
                with open(self._path, "rb") as handle:
                    digest = hashlib.sha256(handle.read()).digest()
            except OSError:
                return  # keep serving the last good key set
            if digest == self._stamp[3]:
                return
        try:
            self.reload()
        except (ValidationError, OSError):
            return  # malformed mid-edit; retry at the next lookup

    # ------------------------------------------------------------------
    # Lookup / mutation
    # ------------------------------------------------------------------
    def lookup(self, producer_id: str) -> bytes | None:
        """The producer's key, the default key, or ``None`` (refuse).

        Revoked producers get ``None`` unconditionally — before the key
        layers — so a revoked handshake is indistinguishable from an
        unknown producer's.
        """
        self._maybe_reload()
        if producer_id in self._revoked:
            return None
        default = (
            self._file_default
            if self._file_default is not None
            else self._base_default
        )
        return self._keys.get(producer_id, default)

    def is_revoked(self, producer_id: str) -> bool:
        """Is *producer_id* on the (hot-reloaded) revocation list?"""
        self._maybe_reload()
        return producer_id in self._revoked

    def revoke(self, producer_id: str) -> None:
        """Revoke *producer_id* in place (until the next file reload,
        which replaces the in-memory list with the file's section)."""
        self._revoked.add(str(producer_id))

    def set_key(self, producer_id: str, secret) -> None:
        """Insert or rotate one producer's key in place."""
        self._keys[str(producer_id)] = derive_round_key(secret)

    def remove(self, producer_id: str) -> None:
        """Revoke one producer (its sessions fall back to the default)."""
        self._keys.pop(str(producer_id), None)

    def producers(self) -> list[str]:
        """Sorted producer ids with an individual key entry."""
        self._maybe_reload()
        return sorted(self._keys)

    def __len__(self) -> int:
        return len(self._keys)


def session_mac(
    key: bytes,
    *,
    m: int,
    round_id: int,
    producer_id: str,
    client_nonce: bytes,
    server_nonce: bytes,
    round_token: bytes = b"",
    party: bytes = b"",
) -> bytes:
    """HMAC-SHA256 over the handshake transcript (32 bytes).

    The producer id is length-prefixed inside the transcript so no two
    distinct ``(producer_id, nonce)`` pairs can collide into the same
    MAC input.  *round_token* is the multi-round registration token
    from a version-3 challenge; it is appended after the fixed-size
    nonces (no ambiguity — empty or exactly 16 bytes), and an empty
    token reproduces the single-round transcript bit for bit.  *party*
    is the serving party's role label (:func:`keeper_party_label` for a
    share keeper); empty — every non-keeper session — leaves the
    transcript byte-identical to the pre-split-trust protocol.
    """
    producer = producer_id.encode("utf-8")
    transcript = b"".join(
        (
            _PROTOCOL_LABEL,
            struct.pack("<QqH", m, round_id, len(producer)),
            producer,
            bytes(client_nonce),
            bytes(server_nonce),
            bytes(round_token),
            bytes(party),
        )
    )
    return hmac.new(key, transcript, hashlib.sha256).digest()


def verify_session_mac(
    key: bytes,
    mac: bytes,
    *,
    m: int,
    round_id: int,
    producer_id: str,
    client_nonce: bytes,
    server_nonce: bytes,
    round_token: bytes = b"",
    party: bytes = b"",
) -> bool:
    """Constant-time check of a producer's session proof."""
    expected = session_mac(
        key,
        m=m,
        round_id=round_id,
        producer_id=producer_id,
        client_nonce=client_nonce,
        server_nonce=server_nonce,
        round_token=round_token,
        party=party,
    )
    return hmac.compare_digest(expected, bytes(mac))


def _control_transcript(
    role: bytes, head: bytes, nonce: bytes, body: dict, attachment: bytes = b""
) -> bytes:
    from ..collect.wire import encode_control_body

    body_bytes = encode_control_body(body)
    return b"".join(
        (
            _CONTROL_LABEL,
            role,
            head,
            bytes(nonce),
            struct.pack("<I", len(body_bytes)),
            body_bytes,
            bytes(attachment),
        )
    )


def control_request_mac(
    key: bytes, *, op: str, nonce: bytes, body: dict
) -> bytes:
    """HMAC-SHA256 over a control request (32 bytes).

    Binds the op (length-prefixed), the requester's fresh nonce, and
    the canonical-JSON body, under a label distinct from the session
    handshake's — a session proof can never double as a control MAC or
    vice versa.  The body is canonicalized (sorted keys, compact
    separators) by the same encoder the wire uses, so the MAC'd bytes
    are exactly the transmitted bytes.
    """
    op_bytes = op.encode("utf-8")
    head = struct.pack("<H", len(op_bytes)) + op_bytes
    return hmac.new(
        key, _control_transcript(b"\x01", head, nonce, body), hashlib.sha256
    ).digest()


def verify_control_request_mac(
    key: bytes, mac: bytes, *, op: str, nonce: bytes, body: dict
) -> bool:
    """Constant-time check of a control request's MAC."""
    expected = control_request_mac(key, op=op, nonce=nonce, body=body)
    return hmac.compare_digest(expected, bytes(mac))


def control_reply_mac(
    key: bytes,
    *,
    status: int,
    nonce: bytes,
    body: dict,
    attachment: bytes = b"",
) -> bytes:
    """HMAC-SHA256 over a control reply (32 bytes).

    Echoes the *request's* nonce inside the MAC, so a recorded reply
    cannot be replayed against a different request; binds the status,
    body, and the raw binary attachment (shard state frames), so none
    of them can be swapped in transit.
    """
    head = struct.pack("<H", int(status))
    return hmac.new(
        key,
        _control_transcript(b"\x02", head, nonce, body, attachment),
        hashlib.sha256,
    ).digest()


def verify_control_reply_mac(
    key: bytes,
    mac: bytes,
    *,
    status: int,
    nonce: bytes,
    body: dict,
    attachment: bytes = b"",
) -> bool:
    """Constant-time check of a control reply's MAC."""
    expected = control_reply_mac(
        key, status=status, nonce=nonce, body=body, attachment=attachment
    )
    return hmac.compare_digest(expected, bytes(mac))
