"""Streaming, sharded report aggregation at production scale.

This package runs the paper's *real* per-user protocol — encode, perturb
on the device, aggregate on the collector — at paper scale and beyond,
in bounded memory:

* :mod:`.engine` — chunked perturbation: streams user batches through a
  mechanism's ``perturb_many`` and into an accumulator, never holding
  more than one ``chunk_size x m`` block (optionally ``np.packbits``
  packed, as a transport would ship it).
* :mod:`.accumulator` — :class:`CountAccumulator`, ``O(m)`` mergeable
  counter state (counts + user tally + round tag) whose ``merge`` is
  exact integer addition, PrivCount-style.
* :mod:`.sharded` — :class:`ShardedRunner`, a multi-process driver that
  fans user shards across workers and merges their accumulators.
* :mod:`.collect` — the durable/distributed collection layer: the
  versioned checksummed wire format for snapshots and packed chunks,
  :class:`ShardStore` disk spill with out-of-core replay and digest
  audit, and the asyncio :class:`Collector` ingesting frames from
  concurrent producers (queue or socket feed).
* :mod:`.service` — the deployment-shaped endpoint on top of
  :mod:`.collect`: :class:`CollectionService`, an authenticated
  (HMAC-keyed sessions), exactly-once (fsync'd idempotency ledger),
  bounded (per-connection quotas + session backpressure), and
  crash-resumable (ledger + spill recovery) collection service, with
  :class:`ServiceSession` / :func:`send_records` as the producer side.

All three accept a sampler selection (``"bitexact"`` | ``"fast"`` | a
:class:`repro.kernels.SamplerConfig`): the fast packed-word kernel
produces wire-format chunks directly and the accumulator absorbs them
with a columnwise popcount, so the whole hot loop is free of float64
RNG and unpacked report matrices.

When to use which simulation path
---------------------------------
:mod:`repro.simulation.fast` draws aggregate counts directly from their
binomial law in ``O(n + m)`` — the right tool when only the *counts*
matter (regenerating the paper's figures, sweeping parameters).  Use
this package instead when the per-user reports themselves must exist:
end-to-end protocol validation, transport/wire-format realism, latency
and throughput measurement, multi-collector sharding, or multi-round
collection feeding :func:`repro.estimation.merge.merge_round_estimates`.
Both paths produce identically distributed counts; only their cost
models differ.
"""

from .accumulator import CountAccumulator
from .collect import Collector, PackedChunk, ShardStore, send_frames
from .engine import iter_report_chunks, report_width, stream_counts
from .service import (
    CollectionService,
    IdempotencyLedger,
    KeyRegistry,
    RoundRegistry,
    ServiceLimits,
    ServiceSession,
    send_records,
)
from .sharded import ShardedRunner, shard_bounds

__all__ = [
    "CountAccumulator",
    "iter_report_chunks",
    "report_width",
    "stream_counts",
    "ShardedRunner",
    "shard_bounds",
    "Collector",
    "send_frames",
    "ShardStore",
    "PackedChunk",
    "CollectionService",
    "ServiceSession",
    "ServiceLimits",
    "IdempotencyLedger",
    "KeyRegistry",
    "RoundRegistry",
    "send_records",
]
