"""Multi-dimensional categorical collection (the paper's future work).

Section VIII names "more complex data types (e.g., high-dimensional
data)" as the extension target.  The composition-based construction:

* each user holds a ``d``-tuple of categorical attributes, each
  attribute with its own domain and :class:`BudgetSpec`;
* the per-attribute mechanisms run *sequentially on the same input
  tuple*, so by Theorem 2 the whole release satisfies MinID-LDP with the
  element-wise **sum** of the per-attribute budget specs (over the
  product structure);
* alternatively (``strategy="sample"``), each user reports only one
  uniformly sampled attribute at its full budget — trading cross-user
  sample size for zero composition cost, the standard LDP trade-off.

The server estimates each attribute's marginal with the usual unbiased
calibration (scaled by ``d`` under sampling).
"""

from __future__ import annotations

import numpy as np

from .._validation import as_int_array, check_rng
from ..core.budgets import BudgetSpec
from ..core.composition import CompositionAccountant
from ..core.notions import MIN, RFunction
from ..estimation.frequency import FrequencyEstimator
from ..exceptions import ValidationError
from ..mechanisms.idue import IDUE
from ..simulation.fast import simulate_counts_from_true

__all__ = ["MultiAttributeCollector"]

_STRATEGIES = ("split", "sample")


class MultiAttributeCollector:
    """Collects ``d`` categorical attributes per user under MinID-LDP.

    Parameters
    ----------
    specs:
        One :class:`BudgetSpec` per attribute.  Under ``strategy=
        "split"`` these are the *per-release* budgets and the total
        consumption is their element-wise sum (Theorem 2); under
        ``strategy="sample"`` each user spends only the budget of the
        single attribute she reports.
    strategy:
        ``"split"`` (everyone reports every attribute) or ``"sample"``
        (everyone reports one random attribute).
    model, r:
        IDUE optimization model and pair-budget function per attribute.
    """

    def __init__(
        self,
        specs,
        *,
        strategy: str = "sample",
        model: str = "opt0",
        r: RFunction | str = MIN,
    ) -> None:
        specs = list(specs)
        if not specs:
            raise ValidationError("specs must be non-empty")
        for spec in specs:
            if not isinstance(spec, BudgetSpec):
                raise ValidationError(f"every spec must be a BudgetSpec, got {spec!r}")
        if strategy not in _STRATEGIES:
            raise ValidationError(
                f"strategy must be one of {_STRATEGIES}, got {strategy!r}"
            )
        self.specs = specs
        self.strategy = strategy
        self.mechanisms = [IDUE.optimized(spec, r=r, model=model) for spec in specs]

    # ------------------------------------------------------------------
    @property
    def d(self) -> int:
        """Number of attributes."""
        return len(self.specs)

    def total_budget_specs(self) -> list[BudgetSpec]:
        """Per-attribute budget consumption of one full collection round.

        ``split``: each attribute's spec verbatim (all consumed, summing
        across attributes on the product domain per Theorem 2).
        ``sample``: in expectation a user spends 1/d of the time on each
        attribute, but the *worst-case* per-user consumption — which is
        what MinID-LDP accounting must use — is the budget of whichever
        single attribute she reports, so each attribute's spec is the cap.
        """
        return list(self.specs)

    def verify_budget(self, totals) -> None:
        """Check a ``split`` round against per-attribute total budgets.

        Raises through the :class:`CompositionAccountant` when any
        attribute's release exceeds its allowance.
        """
        totals = list(totals)
        if len(totals) != self.d:
            raise ValidationError(f"expected {self.d} totals, got {len(totals)}")
        for spec, total in zip(self.specs, totals):
            accountant = CompositionAccountant(total)
            accountant.record(spec)

    # ------------------------------------------------------------------
    def simulate_collection(self, columns, rng=None) -> list[np.ndarray]:
        """Simulate one round; returns per-attribute aggregated counts.

        Parameters
        ----------
        columns:
            List of ``d`` length-``n`` arrays, one per attribute.
        """
        rng = check_rng(rng)
        arrays = [as_int_array(col, f"columns[{k}]") for k, col in enumerate(columns)]
        if len(arrays) != self.d:
            raise ValidationError(f"expected {self.d} columns, got {len(arrays)}")
        n = arrays[0].size
        if any(col.size != n for col in arrays):
            raise ValidationError("all columns must have equal length")

        if self.strategy == "split":
            counts = []
            for mech, col in zip(self.mechanisms, arrays):
                truth = np.bincount(col, minlength=mech.m)
                counts.append(
                    simulate_counts_from_true(truth, n, mech.a, mech.b, rng)
                )
            return counts

        # "sample": each user reports one uniformly chosen attribute.
        assignment = rng.integers(self.d, size=n)
        counts = []
        for k, (mech, col) in enumerate(zip(self.mechanisms, arrays)):
            mask = assignment == k
            sub = col[mask]
            truth = np.bincount(sub, minlength=mech.m)
            counts.append(
                simulate_counts_from_true(truth, int(mask.sum()), mech.a, mech.b, rng)
            )
        self._last_group_sizes = [int(np.sum(assignment == k)) for k in range(self.d)]
        return counts

    def estimate_marginals(
        self, counts, n: int, group_sizes=None
    ) -> list[np.ndarray]:
        """Unbiased per-attribute marginal count estimates for ``n`` users.

        Under ``sample`` the per-attribute estimates are rescaled by
        ``n / n_k`` (the sampling inverse), using either the provided
        *group_sizes* or those recorded by the last simulation.
        """
        counts = list(counts)
        if len(counts) != self.d:
            raise ValidationError(f"expected {self.d} count vectors, got {len(counts)}")
        if self.strategy == "sample":
            sizes = group_sizes or getattr(self, "_last_group_sizes", None)
            if sizes is None or len(sizes) != self.d:
                raise ValidationError(
                    "sample strategy needs group_sizes (users per attribute)"
                )
        estimates = []
        for k, (mech, c) in enumerate(zip(self.mechanisms, counts)):
            if self.strategy == "split":
                estimator = FrequencyEstimator.for_mechanism(mech, n)
                estimates.append(estimator.estimate(c))
            else:
                n_k = int(sizes[k])
                if n_k == 0:
                    estimates.append(np.zeros(mech.m))
                    continue
                estimator = FrequencyEstimator.for_mechanism(mech, n_k)
                estimates.append(estimator.estimate(c) * (n / n_k))
        return estimates
