"""ID-LDP combined with Personalized LDP (Section IV-A remark).

The paper notes that ID-LDP "can be easily combined with personalized
LDP (PLDP) to reflect different privacy preferences of different users,
in which case the privacy levels of all inputs can be set by users
themselves."  The natural construction:

* the service provider fixes the *relative* level structure (which items
  are sensitive, by how much);
* each user picks a personal scale factor ``theta_u > 0`` and perturbs
  with the IDUE mechanism optimized for ``theta_u * E``;
* the server groups users by scale factor, calibrates each group with
  its own estimator, and combines the per-group unbiased estimates by
  inverse-variance weighting (the minimum-variance unbiased combination
  of independent unbiased estimators).

Each user's report satisfies ``theta_u * E``-MinID-LDP, i.e. exactly the
protection that user asked for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_int_array, check_positive_float, check_rng
from ..core.budgets import BudgetSpec
from ..core.notions import MIN, RFunction
from ..estimation.frequency import FrequencyEstimator
from ..exceptions import EstimationError, ValidationError
from ..mechanisms.idue import IDUE
from ..simulation.fast import simulate_single_item_counts

__all__ = ["PersonalizedGroup", "PLDPCollector"]


@dataclass
class PersonalizedGroup:
    """One privacy-preference group: a scale factor and its mechanism."""

    theta: float
    spec: BudgetSpec
    mechanism: IDUE

    @property
    def noise_weight(self) -> np.ndarray:
        """Per-item inverse of the data-independent variance term.

        ``(a − b)^2 / (b (1 − b))`` — the reciprocal of Eq. 9's noise
        coefficient, used for inverse-variance combination (the
        data-dependent term needs the unknown truth, so the standard
        worst-case-free weighting uses the noise term alone).
        """
        a, b = self.mechanism.a, self.mechanism.b
        return (a - b) ** 2 / (b * (1.0 - b))


class PLDPCollector:
    """Collects single-item data from users with personal scale factors.

    Parameters
    ----------
    base_spec:
        The universal budget specification (``theta = 1`` reference).
    thetas:
        The allowed personal scale factors (one mechanism is optimized
        per distinct value).
    model, r:
        Optimization model / pair-budget function for each group's IDUE.
    """

    def __init__(
        self,
        base_spec: BudgetSpec,
        thetas,
        *,
        model: str = "opt0",
        r: RFunction | str = MIN,
    ) -> None:
        if not isinstance(base_spec, BudgetSpec):
            raise ValidationError(f"base_spec must be a BudgetSpec, got {base_spec!r}")
        theta_values = sorted({check_positive_float(t, "theta") for t in thetas})
        if not theta_values:
            raise ValidationError("thetas must be non-empty")
        self.base_spec = base_spec
        self.groups: dict[float, PersonalizedGroup] = {}
        for theta in theta_values:
            spec = base_spec.scaled(theta)
            mechanism = IDUE.optimized(spec, r=r, model=model)
            self.groups[theta] = PersonalizedGroup(theta, spec, mechanism)

    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Item-domain size."""
        return self.base_spec.m

    @property
    def thetas(self) -> list[float]:
        """Sorted list of supported personal scale factors."""
        return sorted(self.groups)

    def mechanism_for(self, theta: float) -> IDUE:
        """The IDUE mechanism a user with factor *theta* should run."""
        if theta not in self.groups:
            raise ValidationError(
                f"theta={theta} is not a configured group; choose from "
                f"{self.thetas}"
            )
        return self.groups[theta].mechanism

    # ------------------------------------------------------------------
    def simulate_collection(
        self, items, user_thetas, rng=None
    ) -> dict[float, np.ndarray]:
        """Simulate one collection round, grouped by preference.

        Parameters
        ----------
        items:
            Length-``n`` true item per user.
        user_thetas:
            Length-``n`` personal factor per user (values must be
            configured groups).

        Returns
        -------
        ``{theta: aggregated bit counts}`` per group.
        """
        rng = check_rng(rng)
        item_arr = as_int_array(items, "items")
        theta_arr = np.asarray(user_thetas, dtype=float)
        if theta_arr.shape != item_arr.shape:
            raise ValidationError("items and user_thetas must have equal length")
        counts: dict[float, np.ndarray] = {}
        for theta, group in self.groups.items():
            mask = theta_arr == theta
            group_items = item_arr[mask]
            if group_items.size == 0:
                continue
            truth = np.bincount(group_items, minlength=self.m)
            counts[theta] = simulate_single_item_counts(
                group.mechanism, truth, group_items.size, rng
            )
        unknown = set(np.unique(theta_arr)) - set(self.groups)
        if unknown:
            raise ValidationError(f"users carry unconfigured thetas: {sorted(unknown)}")
        if not counts:
            raise EstimationError("no users to collect from")
        return counts

    def estimate(
        self, group_counts: dict[float, np.ndarray], group_sizes: dict[float, int]
    ) -> np.ndarray:
        """Combine per-group calibrated estimates (inverse-variance).

        Each group's estimator is unbiased for that group's *own* item
        counts; summing unbiased per-group estimates gives an unbiased
        population estimate, and weighting is unnecessary for the sum —
        so the combination is the plain sum of group estimates.  (The
        inverse-variance weights of :class:`PersonalizedGroup` matter
        when estimating a shared *distribution* instead; see
        :meth:`estimate_distribution`.)
        """
        total = np.zeros(self.m)
        for theta, counts in group_counts.items():
            if theta not in self.groups:
                raise ValidationError(f"unknown group theta={theta}")
            n_group = group_sizes[theta]
            estimator = FrequencyEstimator.for_mechanism(
                self.groups[theta].mechanism, n_group
            )
            total += estimator.estimate(counts)
        return total

    def estimate_distribution(
        self, group_counts: dict[float, np.ndarray], group_sizes: dict[float, int]
    ) -> np.ndarray:
        """Estimate a *shared* item distribution across groups.

        Assumes every group draws items i.i.d. from one common
        distribution; each group then yields an independent unbiased
        frequency estimate whose per-item variance scales with the
        group's noise coefficient over its size, and the minimum-variance
        combination is the inverse-variance weighted mean.
        """
        weighted = np.zeros(self.m)
        weight_sum = np.zeros(self.m)
        for theta, counts in group_counts.items():
            if theta not in self.groups:
                raise ValidationError(f"unknown group theta={theta}")
            group = self.groups[theta]
            n_group = group_sizes[theta]
            estimator = FrequencyEstimator.for_mechanism(group.mechanism, n_group)
            frequencies = estimator.estimate(counts) / n_group
            weight = group.noise_weight * n_group  # 1 / Var of the frequency
            weighted += weight * frequencies
            weight_sum += weight
        if np.any(weight_sum <= 0.0):
            raise EstimationError("no group contributed to some item")
        return weighted / weight_sum
