"""Extensions beyond the paper's headline pipeline.

Each module implements a direction the paper explicitly points at:

* :mod:`.pldp` — combining ID-LDP with *personalized* LDP (Section IV-A
  remark): users scale the universal budget levels by a personal factor
  and the server combines the per-group estimates.
* :mod:`.heavy_hitters` — heavy-hitter identification (Section VIII
  future work): a two-phase identify-then-refine protocol on top of
  IDUE-PS with user partitioning.
* :mod:`.multidim` — multi-dimensional categorical data (Section VIII
  future work): per-attribute budget splitting via sequential
  composition (Theorem 2) with joint collection.
"""

from .heavy_hitters import TwoPhaseHeavyHitter
from .multidim import MultiAttributeCollector
from .pldp import PersonalizedGroup, PLDPCollector

__all__ = [
    "PersonalizedGroup",
    "PLDPCollector",
    "TwoPhaseHeavyHitter",
    "MultiAttributeCollector",
]
