"""Two-phase heavy-hitter identification (the paper's future work).

Section VIII names heavy-hitter estimation as the next task for ID-LDP.
The standard LDP recipe (SVIM [7], the paper's Padding-and-Sampling
source) splits *users* instead of budget:

* **Phase 1 (identify)** — a random fraction of users report through
  IDUE-PS; the server keeps the ``candidate_factor * k`` items with the
  largest calibrated estimates as candidates.
* **Phase 2 (refine)** — the remaining users report (same mechanism
  family, fresh instance); the server re-estimates *only the candidates*
  and returns the top ``k``.

Because each user participates in exactly one phase, every user's report
satisfies the full ``E``-MinID-LDP guarantee — no budget splitting, by
parallel composition over disjoint user sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import check_positive_int, check_rng
from ..core.budgets import BudgetSpec
from ..core.notions import MIN, RFunction
from ..datasets.base import ItemsetDataset
from ..estimation.frequency import FrequencyEstimator
from ..estimation.topk import top_k_items
from ..exceptions import ValidationError
from ..mechanisms.idue_ps import IDUEPS
from ..simulation.fast import simulate_itemset_counts

__all__ = ["HeavyHitterResult", "TwoPhaseHeavyHitter"]


@dataclass
class HeavyHitterResult:
    """Outcome of a two-phase heavy-hitter run.

    Attributes
    ----------
    top_items:
        The identified top-``k`` item ids, best first.
    estimates:
        Phase-2 calibrated count estimates for the candidate items,
        scaled to the full population (both phases combined).
    candidates:
        The phase-1 candidate set (``candidate_factor * k`` ids).
    phase1_estimates:
        Phase-1 calibrated estimates over the whole domain (diagnostics).
    """

    top_items: np.ndarray
    estimates: dict = field(repr=False)
    candidates: np.ndarray = field(repr=False)
    phase1_estimates: np.ndarray = field(repr=False)


class TwoPhaseHeavyHitter:
    """Identify-then-refine top-k protocol over item-set data.

    Parameters
    ----------
    spec:
        Budget specification of the item domain.
    ell:
        Padding length for the PS protocol.
    k:
        Number of heavy hitters to return.
    candidate_factor:
        Phase 1 keeps ``candidate_factor * k`` candidates (>= 1).
    phase1_fraction:
        Fraction of users assigned to phase 1 (the rest refine).
    model, r:
        IDUE optimization model and pair-budget function.
    """

    def __init__(
        self,
        spec: BudgetSpec,
        ell: int,
        k: int,
        *,
        candidate_factor: int = 2,
        phase1_fraction: float = 0.5,
        model: str = "opt0",
        r: RFunction | str = MIN,
    ) -> None:
        if not isinstance(spec, BudgetSpec):
            raise ValidationError(f"spec must be a BudgetSpec, got {spec!r}")
        self.spec = spec
        self.ell = check_positive_int(ell, "ell")
        self.k = check_positive_int(k, "k")
        self.candidate_factor = check_positive_int(candidate_factor, "candidate_factor")
        if not 0.0 < phase1_fraction < 1.0:
            raise ValidationError(
                f"phase1_fraction must lie in (0, 1), got {phase1_fraction}"
            )
        if self.k > spec.m:
            raise ValidationError(f"k={k} exceeds the domain size {spec.m}")
        self.phase1_fraction = float(phase1_fraction)
        self.mechanism = IDUEPS.optimized(spec, ell, r=r, model=model)

    # ------------------------------------------------------------------
    def split_users(self, n: int, rng=None) -> tuple[np.ndarray, np.ndarray]:
        """Random disjoint user split for the two phases."""
        rng = check_rng(rng)
        n = check_positive_int(n, "n")
        permutation = rng.permutation(n)
        cut = max(1, min(n - 1, int(round(n * self.phase1_fraction))))
        return permutation[:cut], permutation[cut:]

    def run(self, dataset: ItemsetDataset, rng=None) -> HeavyHitterResult:
        """Execute both phases on a dataset (simulation harness).

        In a deployment the two phases are separate collection rounds;
        here the fast simulator stands in for the device fleet.
        """
        if not isinstance(dataset, ItemsetDataset):
            raise ValidationError(f"dataset must be an ItemsetDataset, got {dataset!r}")
        if dataset.m != self.spec.m:
            raise ValidationError(
                f"dataset domain {dataset.m} != spec domain {self.spec.m}"
            )
        rng = check_rng(rng)
        phase1_users, phase2_users = self.split_users(dataset.n, rng)

        # Phase 1: identify candidates from a user subsample.
        phase1_data = dataset.subset_users(phase1_users)
        counts1 = simulate_itemset_counts(self.mechanism, phase1_data, rng)
        est1 = FrequencyEstimator.for_mechanism(self.mechanism, phase1_data.n)
        phase1_estimates = est1.estimate(counts1)
        n_candidates = min(self.candidate_factor * self.k, self.spec.m)
        candidates = top_k_items(phase1_estimates, n_candidates)

        # Phase 2: refine on the remaining users, restricted to candidates.
        phase2_data = dataset.subset_users(phase2_users)
        counts2 = simulate_itemset_counts(self.mechanism, phase2_data, rng)
        est2 = FrequencyEstimator.for_mechanism(self.mechanism, phase2_data.n)
        phase2_estimates = est2.estimate(counts2)

        candidate_scores = {
            int(item): float(phase2_estimates[item]) * dataset.n / phase2_data.n
            for item in candidates
        }
        ranked = sorted(candidate_scores, key=lambda i: (-candidate_scores[i], i))
        top = np.asarray(ranked[: self.k], dtype=np.int64)
        return HeavyHitterResult(
            top_items=top,
            estimates=candidate_scores,
            candidates=candidates,
            phase1_estimates=phase1_estimates,
        )

    def __repr__(self) -> str:
        return (
            f"TwoPhaseHeavyHitter(m={self.spec.m}, ell={self.ell}, k={self.k}, "
            f"candidates={self.candidate_factor * self.k})"
        )
