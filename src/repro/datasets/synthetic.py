"""Synthetic single-item datasets (Section VII, "Datasets" (1)-(2)).

The paper's two synthetic workloads:

* **Power-law**: ``n = 100,000`` users, ``m = 100`` items; each raw value
  drawn from a power-law with exponent ``alpha = 2`` then scaled and
  rounded into ``{1..m}`` (here ``{0..m-1}``).
* **Uniform**: ``n = 100,000`` users, ``m = 1,000`` items, uniform draws.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_int_array, check_positive_float, check_positive_int, check_rng

__all__ = ["power_law_items", "uniform_items", "zipf_items", "true_counts_from_items"]


def power_law_items(
    n: int = 100_000, m: int = 100, alpha: float = 2.0, rng=None
) -> np.ndarray:
    """Single-item inputs with a power-law item distribution.

    Draws a Pareto-type variate ``v >= 1`` with density ``~ v^-alpha``,
    then maps it onto ``{0..m-1}`` by scaling and rounding, mirroring the
    paper's "generate, scale, round" recipe.  Values beyond the domain
    are clamped onto the last item, preserving the heavy tail's mass.
    """
    n = check_positive_int(n, "n")
    m = check_positive_int(m, "m")
    alpha = check_positive_float(alpha, "alpha")
    if alpha <= 1.0:
        # Density v^-alpha is not normalizable on [1, inf) for alpha <= 1.
        raise ValueError(f"alpha must exceed 1 for a proper power law, got {alpha}")
    rng = check_rng(rng)
    # Inverse-CDF sampling: v = (1 - u)^(-1/(alpha-1)) has P(V > v) = v^-(alpha-1).
    u = rng.random(n)
    v = (1.0 - u) ** (-1.0 / (alpha - 1.0))
    items = np.floor(v - 1.0).astype(np.int64)  # v >= 1 -> item 0 is the mode
    return np.minimum(items, m - 1)


def uniform_items(n: int = 100_000, m: int = 1_000, rng=None) -> np.ndarray:
    """Single-item inputs drawn uniformly from ``{0..m-1}``."""
    n = check_positive_int(n, "n")
    m = check_positive_int(m, "m")
    rng = check_rng(rng)
    return rng.integers(m, size=n, dtype=np.int64)


def zipf_items(n: int, m: int, s: float = 1.2, rng=None) -> np.ndarray:
    """Single-item inputs with Zipf-distributed popularity over a finite domain.

    Item ``k`` (0-based) has probability proportional to ``(k+1)^-s``.
    Used by the real-data surrogates where a bounded-support skewed
    distribution is needed.
    """
    n = check_positive_int(n, "n")
    m = check_positive_int(m, "m")
    s = check_positive_float(s, "s")
    rng = check_rng(rng)
    weights = (np.arange(1, m + 1, dtype=float)) ** (-s)
    probabilities = weights / weights.sum()
    return rng.choice(m, size=n, p=probabilities).astype(np.int64)


def true_counts_from_items(items, m: int) -> np.ndarray:
    """Histogram single-item inputs into length-``m`` true counts ``c*``."""
    m = check_positive_int(m, "m")
    arr = as_int_array(items, "items")
    if arr.size and (arr.min() < 0 or arr.max() >= m):
        raise ValueError(f"items fall outside [0, {m - 1}]")
    return np.bincount(arr, minlength=m).astype(np.int64)
