"""File loaders for the original evaluation datasets.

* :func:`load_fimi_transactions` — the FIMI repository format used by
  Kosarak and Retail: one transaction per line, space-separated positive
  integer item ids.
* :func:`load_sequences` — the MSNBC format: one visit sequence per
  line, space-separated category ids (repeats allowed; deduplicated into
  sets, matching the paper's treatment).

Both remap the 1-based ids in the files to the library's 0-based dense
domain.
"""

from __future__ import annotations

import os


from ..exceptions import DatasetError
from .base import ItemsetDataset

__all__ = ["load_fimi_transactions", "load_sequences"]


def _parse_lines(path: str) -> list[list[int]]:
    if not os.path.exists(path):
        raise DatasetError(f"dataset file not found: {path}")
    records: list[list[int]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                records.append([int(token) for token in stripped.split()])
            except ValueError as exc:
                raise DatasetError(
                    f"{path}:{line_number}: non-integer token in {stripped!r}"
                ) from exc
    if not records:
        raise DatasetError(f"dataset file is empty: {path}")
    return records


def _remap_dense(records: list[list[int]]) -> tuple[list[list[int]], int]:
    """Remap arbitrary positive ids to a dense 0-based domain."""
    vocabulary: dict[int, int] = {}
    remapped: list[list[int]] = []
    for record in records:
        row = []
        for item in record:
            if item not in vocabulary:
                vocabulary[item] = len(vocabulary)
            row.append(vocabulary[item])
        remapped.append(row)
    return remapped, len(vocabulary)


def load_fimi_transactions(
    path: str, *, max_users: int | None = None, dedupe: bool = True
) -> ItemsetDataset:
    """Load a FIMI-format transaction file (Kosarak / Retail).

    Parameters
    ----------
    path:
        Path to the ``.dat`` file.
    max_users:
        Optional cap on the number of transactions read (for quick runs).
    dedupe:
        Collapse repeated items inside one transaction (FIMI files are
        normally duplicate-free, but be safe).
    """
    records = _parse_lines(path)
    if max_users is not None:
        records = records[: int(max_users)]
    remapped, m = _remap_dense(records)
    return ItemsetDataset.from_sets(remapped, m, dedupe=dedupe)


def load_sequences(path: str, *, max_users: int | None = None) -> ItemsetDataset:
    """Load an MSNBC-style sequence file, deduplicating into item-sets.

    Each line is one user's category-visit sequence; repeats are
    collapsed so the result is a proper item-set dataset (the per-user
    visit *lengths* before deduplication are discarded, as in the
    paper's set-valued treatment).
    """
    records = _parse_lines(path)
    if max_users is not None:
        records = records[: int(max_users)]
    remapped, m = _remap_dense(records)
    return ItemsetDataset.from_sets(remapped, m, dedupe=True)
