"""Privacy-budget assignment strategies (Section VII, "Setting").

The paper's default: four privacy levels with budgets
``{eps, 1.2 eps, 2 eps, 4 eps}`` assigned to items at random with
proportions ``{5%, 5%, 5%, 85%}``.  Figure 4 varies the proportions and
(for Retail) uses ``t = 20`` levels uniformly spaced in ``[eps, 4 eps]``
with an exponential distribution over levels (``P(level i) ∝ e^{eps_i}``).
"""

from __future__ import annotations

import numpy as np

from .._validation import (
    check_budget,
    check_budget_vector,
    check_positive_int,
    check_probability_vector,
    check_rng,
)
from ..core.budgets import BudgetSpec
from ..exceptions import BudgetError

__all__ = [
    "DEFAULT_LEVEL_MULTIPLIERS",
    "DEFAULT_LEVEL_PROPORTIONS",
    "assign_budgets",
    "exponential_level_distribution",
    "paper_default_spec",
]

#: The paper's default level multipliers: budgets {eps, 1.2eps, 2eps, 4eps}.
DEFAULT_LEVEL_MULTIPLIERS = (1.0, 1.2, 2.0, 4.0)

#: The paper's default level proportions: {5%, 5%, 5%, 85%}.
DEFAULT_LEVEL_PROPORTIONS = (0.05, 0.05, 0.05, 0.85)


def assign_budgets(
    m: int,
    epsilons,
    proportions,
    rng=None,
    *,
    ensure_all_levels: bool = True,
) -> BudgetSpec:
    """Randomly assign each of ``m`` items to a level by proportion.

    Parameters
    ----------
    m:
        Item-domain size.
    epsilons:
        Level budgets (length ``t``).
    proportions:
        Sampling probabilities for each level (sum to 1).
    ensure_all_levels:
        Guarantee every level is non-empty by seeding one item per level
        before the random assignment (requires ``m >= t``).  The paper's
        experiments always have every level populated.
    """
    m = check_positive_int(m, "m")
    eps = check_budget_vector(epsilons, "epsilons")
    props = check_probability_vector(proportions, "proportions")
    if eps.size != props.size:
        raise BudgetError(
            f"epsilons and proportions must have equal length, got "
            f"{eps.size} and {props.size}"
        )
    if not np.isclose(props.sum(), 1.0, atol=1e-9):
        raise BudgetError(f"proportions must sum to 1, got {props.sum():g}")
    rng = check_rng(rng)
    t = eps.size
    if ensure_all_levels and m < t:
        raise BudgetError(f"need m >= t to populate every level (m={m}, t={t})")

    level_of_item = rng.choice(t, size=m, p=props)
    if ensure_all_levels:
        seeded = rng.permutation(m)[:t]
        level_of_item[seeded] = np.arange(t)
    return BudgetSpec(eps[level_of_item])


def exponential_level_distribution(
    epsilon: float,
    t: int = 20,
    *,
    low_multiplier: float = 1.0,
    high_multiplier: float = 4.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Level budgets and proportions for the paper's ``t = 20`` setting.

    Budgets are uniformly spaced in ``[low_mult * eps, high_mult * eps]``
    and the proportion of items at level ``i`` is proportional to
    ``e^{eps_i}`` — most items are lightly protected, few are highly
    sensitive, the skew the paper calls "approximately exponential".

    Returns ``(epsilons, proportions)`` ready for :func:`assign_budgets`.
    """
    epsilon = check_budget(epsilon)
    t = check_positive_int(t, "t")
    if high_multiplier <= low_multiplier:
        raise BudgetError(
            f"high_multiplier must exceed low_multiplier, got "
            f"{high_multiplier} <= {low_multiplier}"
        )
    if t == 1:
        return np.array([epsilon * low_multiplier]), np.array([1.0])
    epsilons = epsilon * np.linspace(low_multiplier, high_multiplier, t)
    weights = np.exp(epsilons - epsilons.max())  # stable softmax weights
    return epsilons, weights / weights.sum()


def paper_default_spec(epsilon: float, m: int, rng=None) -> BudgetSpec:
    """The paper's default specification for a given system budget *eps*.

    Four levels ``{eps, 1.2 eps, 2 eps, 4 eps}`` with proportions
    ``{5%, 5%, 5%, 85%}``, randomly assigned over ``m`` items.
    """
    epsilon = check_budget(epsilon)
    epsilons = epsilon * np.asarray(DEFAULT_LEVEL_MULTIPLIERS)
    return assign_budgets(m, epsilons, DEFAULT_LEVEL_PROPORTIONS, rng)
