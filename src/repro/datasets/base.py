"""Item-set dataset container (ragged sets in CSR layout).

A dataset of ``n`` users, each holding a subset of the item domain
``{0..m-1}``, is stored as two flat arrays — the concatenated item ids
and a length ``n+1`` offset array — so that paper-scale data (a million
users) fits comfortably in memory and all per-user operations vectorize.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from .._validation import as_int_array, check_positive_int
from ..exceptions import DatasetError

__all__ = ["ItemsetDataset"]


class ItemsetDataset:
    """Ragged collection of per-user item-sets.

    Parameters
    ----------
    flat_items:
        Concatenation of every user's items.
    offsets:
        Length-``n+1`` prefix array: user ``u`` owns
        ``flat_items[offsets[u]:offsets[u+1]]``.
    m:
        Item-domain size; all ids must lie in ``[0, m)``.

    Users' sets are expected to be duplicate-free (use
    :meth:`from_sets` with ``dedupe=True`` — the default — when building
    from raw sequences such as MSNBC browsing records).
    """

    def __init__(self, flat_items, offsets, m: int) -> None:
        self.m = check_positive_int(m, "m")
        flat = as_int_array(flat_items, "flat_items")
        offs = as_int_array(offsets, "offsets")
        if offs.size < 1 or offs[0] != 0 or offs[-1] != flat.size:
            raise DatasetError("offsets must start at 0 and end at len(flat_items)")
        if np.any(np.diff(offs) < 0):
            raise DatasetError("offsets must be non-decreasing")
        if flat.size and (flat.min() < 0 or flat.max() >= self.m):
            raise DatasetError(f"item ids must lie in [0, {self.m - 1}]")
        self.flat_items = flat
        self.offsets = offs
        self.flat_items.flags.writeable = False
        self.offsets.flags.writeable = False

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_sets(
        cls, sets: Iterable[Sequence[int]], m: int, *, dedupe: bool = True
    ) -> "ItemsetDataset":
        """Build from an iterable of per-user item collections.

        With ``dedupe=True`` repeated items within one user's record are
        collapsed (the paper treats MSNBC page-visit *sequences* this
        way so they become proper sets).
        """
        flat: list[int] = []
        offsets = [0]
        for record in sets:
            items = list(dict.fromkeys(record)) if dedupe else list(record)
            flat.extend(int(i) for i in items)
            offsets.append(len(flat))
        return cls(np.asarray(flat, dtype=np.int64), np.asarray(offsets, np.int64), m)

    @classmethod
    def from_single_items(cls, items, m: int) -> "ItemsetDataset":
        """Build a size-1-per-user dataset from a single-item array."""
        arr = as_int_array(items, "items")
        offsets = np.arange(arr.size + 1, dtype=np.int64)
        return cls(arr, offsets, m)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of users."""
        return int(self.offsets.size - 1)

    @property
    def set_sizes(self) -> np.ndarray:
        """Length-``n`` array of per-user set sizes ``|x_u|``."""
        return np.diff(self.offsets)

    def user_items(self, u: int) -> np.ndarray:
        """The item-set of user *u* (read-only view)."""
        if not 0 <= u < self.n:
            raise DatasetError(f"user {u} outside [0, {self.n - 1}]")
        return self.flat_items[self.offsets[u] : self.offsets[u + 1]]

    def iter_sets(self):
        """Iterate per-user item arrays (views, no copies)."""
        for u in range(self.n):
            yield self.flat_items[self.offsets[u] : self.offsets[u + 1]]

    def true_counts(self) -> np.ndarray:
        """Length-``m`` array ``c*_i`` = number of users possessing item i.

        Eq. (1) of the paper.  Assumes duplicate-free sets (enforced by
        the default constructors).
        """
        if self.flat_items.size == 0:
            return np.zeros(self.m, dtype=np.int64)
        return np.bincount(self.flat_items, minlength=self.m).astype(np.int64)

    def first_items(self, *, skip_empty: bool = True) -> np.ndarray:
        """Each user's first item — the paper's single-item Kosarak view.

        Users with empty sets are dropped when ``skip_empty`` (the
        paper's extraction necessarily skips empty click-streams).
        """
        sizes = self.set_sizes
        has_items = sizes > 0
        if not skip_empty and not np.all(has_items):
            raise DatasetError("dataset contains empty sets; pass skip_empty=True")
        starts = self.offsets[:-1][has_items]
        return self.flat_items[starts]

    def mean_set_size(self) -> float:
        """Average ``|x_u|`` over users."""
        return float(self.set_sizes.mean()) if self.n else 0.0

    def slice_users(self, start: int, stop: int) -> "ItemsetDataset":
        """Contiguous user range ``start:stop`` as a new dataset.

        The CSR offsets are re-based to zero.  This is the vectorized
        fast path used by chunked streaming and sharding;
        :meth:`subset_users` handles arbitrary id lists.
        """
        start, stop = int(start), int(stop)
        if not 0 <= start <= stop <= self.n:
            raise DatasetError(f"invalid user range [{start}, {stop}) for n={self.n}")
        lo, hi = self.offsets[start], self.offsets[stop]
        return ItemsetDataset(
            self.flat_items[lo:hi].copy(),
            self.offsets[start : stop + 1] - lo,  # subtraction owns its result
            self.m,
        )

    def subset_users(self, user_ids) -> "ItemsetDataset":
        """Dataset restricted to the given users (copies the data)."""
        ids = as_int_array(user_ids, "user_ids")
        if ids.size and (ids.min() < 0 or ids.max() >= self.n):
            raise DatasetError(f"user ids must lie in [0, {self.n - 1}]")
        pieces = [self.user_items(int(u)) for u in ids]
        flat = np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)
        sizes = np.array([p.size for p in pieces], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        return ItemsetDataset(flat, offsets, self.m)

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return (
            f"ItemsetDataset(n={self.n}, m={self.m}, "
            f"mean_size={self.mean_set_size():.2f})"
        )
