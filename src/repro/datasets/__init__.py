"""Datasets: synthetic generators, real-data surrogates, loaders, budgets.

The paper evaluates on two synthetic single-item datasets (power-law and
uniform) and three real item-set datasets (Kosarak, Retail, MSNBC).  The
real datasets are not redistributable here, so :mod:`.surrogates`
generates statistically comparable synthetic stand-ins (documented in
DESIGN.md), while :mod:`.loaders` can read the original FIMI-format
files if the user supplies them.
"""

from .base import ItemsetDataset
from .budgets import (
    DEFAULT_LEVEL_MULTIPLIERS,
    DEFAULT_LEVEL_PROPORTIONS,
    assign_budgets,
    exponential_level_distribution,
    paper_default_spec,
)
from .loaders import load_fimi_transactions, load_sequences
from .surrogates import kosarak_like, msnbc_like, retail_like
from .synthetic import power_law_items, true_counts_from_items, uniform_items, zipf_items

__all__ = [
    "ItemsetDataset",
    "power_law_items",
    "uniform_items",
    "zipf_items",
    "true_counts_from_items",
    "kosarak_like",
    "retail_like",
    "msnbc_like",
    "load_fimi_transactions",
    "load_sequences",
    "assign_budgets",
    "exponential_level_distribution",
    "paper_default_spec",
    "DEFAULT_LEVEL_MULTIPLIERS",
    "DEFAULT_LEVEL_PROPORTIONS",
]
