"""Surrogate generators for the paper's real-world datasets.

The evaluation uses Kosarak, Retail and MSNBC, none of which can be
bundled here.  Each surrogate below matches the statistics that drive
frequency-estimation behaviour — domain size, user count, item-popularity
skew, and set-size distribution — so the *shape* of every figure is
preserved (see DESIGN.md, "Substitutions").  Pass a smaller ``n``/``m``
to run quickly; the defaults mirror the original datasets' scale.

If you have the original files, :mod:`repro.datasets.loaders` reads them
and every experiment accepts the loaded dataset in place of a surrogate.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int, check_rng
from .base import ItemsetDataset

__all__ = ["kosarak_like", "retail_like", "msnbc_like"]


def _zipf_probabilities(m: int, s: float) -> np.ndarray:
    weights = np.arange(1, m + 1, dtype=float) ** (-s)
    return weights / weights.sum()


def _sets_from_sizes(sizes: np.ndarray, m: int, popularity: np.ndarray, rng) -> ItemsetDataset:
    """Draw each user's set: ``sizes[u]`` distinct items by popularity.

    Sampling distinct items per user without replacement is done by
    drawing with replacement and deduplicating — for heavy-tailed
    popularity this under-fills very large sets slightly, which matches
    how real transaction data saturates on popular items.
    """
    n = sizes.size
    total = int(sizes.sum())
    draws = rng.choice(m, size=total, p=popularity)
    flat: list[np.ndarray] = []
    offsets = np.zeros(n + 1, dtype=np.int64)
    cursor = 0
    for u in range(n):
        chunk = draws[cursor : cursor + sizes[u]]
        cursor += sizes[u]
        unique = np.unique(chunk)
        flat.append(unique)
        offsets[u + 1] = offsets[u] + unique.size
    flat_items = np.concatenate(flat) if flat else np.empty(0, dtype=np.int64)
    return ItemsetDataset(flat_items, offsets, m)


def kosarak_like(
    n: int = 100_000, m: int = 41_270, *, mean_size: float = 8.0, rng=None
) -> ItemsetDataset:
    """Surrogate for the Kosarak click-stream dataset.

    Kosarak: ~990k users, 8M click events over 41,270 pages (mean ~8
    clicks/user), with strongly skewed page popularity.  We model page
    popularity as Zipf(1.3) and per-user set sizes as 1 + Geometric so a
    few users have very long click histories.

    The paper's default scale (``n = 990_000``) works but is slow in CI;
    the default here is 100k users, which preserves all comparisons
    because every mechanism sees the same data.
    """
    n = check_positive_int(n, "n")
    m = check_positive_int(m, "m")
    rng = check_rng(rng)
    p_geom = min(1.0 / mean_size, 1.0)
    sizes = 1 + rng.geometric(p_geom, size=n) - 1  # support {1, 2, ...}
    sizes = np.maximum(sizes, 1).astype(np.int64)
    popularity = _zipf_probabilities(m, 1.3)
    return _sets_from_sizes(sizes, m, popularity, rng)


def retail_like(
    n: int = 88_162, m: int = 16_470, *, mean_size: float = 10.3, rng=None
) -> ItemsetDataset:
    """Surrogate for the Belgian Retail market-basket dataset.

    Retail: 88,162 baskets over 16,470 items, mean basket ~10.3 items,
    item popularity roughly Zipf.  Basket sizes follow a log-normal-like
    heavy tail; we use ``round(exp(N(mu, 0.8)))`` clipped to >= 1 with
    ``mu`` chosen to hit the requested mean.
    """
    n = check_positive_int(n, "n")
    m = check_positive_int(m, "m")
    rng = check_rng(rng)
    sigma = 0.8
    mu = float(np.log(mean_size) - sigma**2 / 2.0)
    sizes = np.maximum(np.round(rng.lognormal(mu, sigma, size=n)), 1.0).astype(np.int64)
    sizes = np.minimum(sizes, m)
    popularity = _zipf_probabilities(m, 1.1)
    return _sets_from_sizes(sizes, m, popularity, rng)


def msnbc_like(
    n: int = 200_000, m: int = 14, *, mean_visits: float = 5.7, rng=None
) -> ItemsetDataset:
    """Surrogate for the MSNBC page-category dataset.

    MSNBC: ~1M users, 14 page categories, mean 5.7 page views per user
    with an *extremely* uneven sequence-length distribution (the paper
    highlights this).  We draw visit counts from a geometric with the
    matching mean, generate category visits (with repeats) from a skewed
    categorical distribution, then deduplicate into sets — mirroring how
    the paper turns visit sequences into item-set input.
    """
    n = check_positive_int(n, "n")
    m = check_positive_int(m, "m")
    rng = check_rng(rng)
    visits = rng.geometric(min(1.0 / mean_visits, 1.0), size=n).astype(np.int64)
    popularity = _zipf_probabilities(m, 0.9)

    total = int(visits.sum())
    draws = rng.choice(m, size=total, p=popularity)
    flat: list[np.ndarray] = []
    offsets = np.zeros(n + 1, dtype=np.int64)
    cursor = 0
    for u in range(n):
        sequence = draws[cursor : cursor + visits[u]]
        cursor += visits[u]
        unique = np.unique(sequence)  # dedupe the visit sequence into a set
        flat.append(unique)
        offsets[u + 1] = offsets[u] + unique.size
    flat_items = np.concatenate(flat) if flat else np.empty(0, dtype=np.int64)
    return ItemsetDataset(flat_items, offsets, m)
